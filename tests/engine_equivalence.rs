//! Determinism regression across event-engine implementations.
//!
//! The calendar-queue engine replaced the original `BinaryHeap` engine on
//! the promise that `(time, insertion-seq)` delivery order — and hence
//! every simulation statistic — is preserved bit-for-bit. That promise
//! now covers four engines: the heap oracle, the fixed-width calendar
//! queue, the density-adaptive calendar queue, and the domain-sharded
//! engine at 1/2/4 threads. These tests hold it under the full system
//! model: the same seed must produce identical `SystemReport`s
//! run-to-run on each engine, *and* across the whole engine × design ×
//! organisation matrix.

use dca::{Design, EngineSel, System, SystemConfig, SystemReport};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

/// Every engine variant under test. The heap engine is the oracle the
/// others are compared against.
const ENGINES: [EngineSel; 6] = [
    EngineSel::Heap,
    EngineSel::Calendar,
    EngineSel::CalendarAdaptive,
    EngineSel::Sharded { threads: 1 },
    EngineSel::Sharded { threads: 2 },
    EngineSel::Sharded { threads: 4 },
];

fn engine_label(e: EngineSel) -> String {
    e.token()
}

fn run(design: Design, org: OrgKind, engine: EngineSel, seed: u64) -> SystemReport {
    let mut cfg = SystemConfig::paper(design, org);
    cfg.target_insts = 40_000;
    cfg.warmup_ops = 150_000;
    cfg.seed = seed;
    cfg.engine = engine;
    System::new(cfg, &mix(3).benches).run()
}

/// Every integer statistic the report carries (floats are derived from
/// these; comparing the integers is the bit-level check).
fn fingerprint(r: &SystemReport) -> Vec<u64> {
    let mut v = vec![
        r.end_time.ps(),
        r.events_processed,
        r.mem_reads,
        r.mem_writes,
        r.writeback_requests,
        r.refill_requests,
        r.cache_read_hits,
        r.cache_read_misses,
        r.l2_miss_latency.count(),
    ];
    for c in &r.cores {
        v.push(c.insts);
        v.push(c.cycles);
    }
    for ch in &r.channels {
        v.push(ch.reads);
        v.push(ch.writes);
        v.push(ch.turnarounds);
        v.push(ch.read_row_conflicts);
        v.push(ch.ctrl.pr_served.get());
        v.push(ch.ctrl.lr_served.get());
        v.push(ch.ctrl.writes_served.get());
        v.push(ch.ctrl.forced_drain_slots.get());
        v.push(ch.ctrl.pr_wait_ps);
        v.push(ch.ctrl.lr_wait_ps);
        v.push(ch.ctrl.write_wait_ps);
    }
    v
}

#[test]
fn same_engine_same_seed_identical() {
    for engine in ENGINES {
        let a = run(Design::Dca, OrgKind::DirectMapped, engine, 11);
        let b = run(Design::Dca, OrgKind::DirectMapped, engine, 11);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} engine is not reproducible",
            engine_label(engine)
        );
    }
}

#[test]
fn all_engines_agree_bit_for_bit_all_designs() {
    for design in Design::ALL {
        let oracle = run(design, OrgKind::DirectMapped, EngineSel::Heap, 11);
        let oracle_fp = fingerprint(&oracle);
        for engine in ENGINES {
            if engine == EngineSel::Heap {
                continue;
            }
            let r = run(design, OrgKind::DirectMapped, engine, 11);
            assert_eq!(
                fingerprint(&r),
                oracle_fp,
                "{} diverges from the heap oracle on {}",
                engine_label(engine),
                design.label()
            );
        }
    }
}

#[test]
fn all_engines_agree_set_assoc_and_other_seed() {
    let oracle = run(Design::Dca, OrgKind::paper_set_assoc(), EngineSel::Heap, 99);
    let oracle_fp = fingerprint(&oracle);
    for engine in ENGINES {
        let r = run(Design::Dca, OrgKind::paper_set_assoc(), engine, 99);
        assert_eq!(
            fingerprint(&r),
            oracle_fp,
            "{} diverges on the set-associative organisation",
            engine_label(engine)
        );
    }
}

#[test]
fn calendar_slot_width_is_a_pure_perf_knob() {
    // The configurable bucket width must never leak into results: runs
    // at extreme widths (16 ps and 64 ns slots) match the default and
    // the heap engine bit-for-bit — on the fixed, adaptive (initial
    // width), and sharded (per-shard width) engines alike.
    let reference = run(Design::Dca, OrgKind::DirectMapped, EngineSel::Heap, 23);
    let reference_fp = fingerprint(&reference);
    for engine in [
        EngineSel::Calendar,
        EngineSel::CalendarAdaptive,
        EngineSel::Sharded { threads: 2 },
    ] {
        for shift in [4u32, 10, 16] {
            let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
            cfg.target_insts = 40_000;
            cfg.warmup_ops = 150_000;
            cfg.seed = 23;
            cfg.engine = engine;
            cfg.event_slot_shift = shift;
            let r = System::new(cfg, &mix(3).benches).run();
            assert_eq!(
                fingerprint(&r),
                reference_fp,
                "slot shift {shift} changed results on {}",
                engine_label(engine)
            );
        }
    }
}
