//! Determinism regression across event-engine implementations.
//!
//! The calendar-queue engine replaced the original `BinaryHeap` engine on
//! the promise that `(time, insertion-seq)` delivery order — and hence
//! every simulation statistic — is preserved bit-for-bit. These tests
//! hold that promise under the full system model: the same seed must
//! produce identical `SystemReport`s run-to-run on each engine, *and*
//! across the two engines.

use dca::{Design, System, SystemConfig, SystemReport};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

fn run(design: Design, org: OrgKind, baseline_engine: bool, seed: u64) -> SystemReport {
    let mut cfg = SystemConfig::paper(design, org);
    cfg.target_insts = 40_000;
    cfg.warmup_ops = 150_000;
    cfg.seed = seed;
    cfg.baseline_engine = baseline_engine;
    System::new(cfg, &mix(3).benches).run()
}

/// Every integer statistic the report carries (floats are derived from
/// these; comparing the integers is the bit-level check).
fn fingerprint(r: &SystemReport) -> Vec<u64> {
    let mut v = vec![
        r.end_time.ps(),
        r.events_processed,
        r.mem_reads,
        r.mem_writes,
        r.writeback_requests,
        r.refill_requests,
        r.cache_read_hits,
        r.cache_read_misses,
        r.l2_miss_latency.count(),
    ];
    for c in &r.cores {
        v.push(c.insts);
        v.push(c.cycles);
    }
    for ch in &r.channels {
        v.push(ch.reads);
        v.push(ch.writes);
        v.push(ch.turnarounds);
        v.push(ch.read_row_conflicts);
        v.push(ch.ctrl.pr_served.get());
        v.push(ch.ctrl.lr_served.get());
        v.push(ch.ctrl.writes_served.get());
        v.push(ch.ctrl.forced_drain_slots.get());
        v.push(ch.ctrl.pr_wait_ps);
        v.push(ch.ctrl.lr_wait_ps);
        v.push(ch.ctrl.write_wait_ps);
    }
    v
}

#[test]
fn same_engine_same_seed_identical() {
    for (label, baseline) in [("calendar", false), ("heap", true)] {
        let a = run(Design::Dca, OrgKind::DirectMapped, baseline, 11);
        let b = run(Design::Dca, OrgKind::DirectMapped, baseline, 11);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{label} engine is not reproducible"
        );
    }
}

#[test]
fn engines_agree_bit_for_bit_all_designs() {
    for design in Design::ALL {
        let cal = run(design, OrgKind::DirectMapped, false, 11);
        let heap = run(design, OrgKind::DirectMapped, true, 11);
        assert_eq!(
            fingerprint(&cal),
            fingerprint(&heap),
            "{} diverges between engines",
            design.label()
        );
    }
}

#[test]
fn engines_agree_set_assoc_and_other_seed() {
    let cal = run(Design::Dca, OrgKind::paper_set_assoc(), false, 99);
    let heap = run(Design::Dca, OrgKind::paper_set_assoc(), true, 99);
    assert_eq!(fingerprint(&cal), fingerprint(&heap));
}

#[test]
fn calendar_slot_width_is_a_pure_perf_knob() {
    // The configurable bucket width must never leak into results: runs
    // at extreme widths (16 ps and 64 ns slots) match the default and
    // the heap engine bit-for-bit.
    let reference = run(Design::Dca, OrgKind::DirectMapped, true, 23);
    for shift in [4u32, 10, 16] {
        let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        cfg.target_insts = 40_000;
        cfg.warmup_ops = 150_000;
        cfg.seed = 23;
        cfg.event_slot_shift = shift;
        let r = System::new(cfg, &mix(3).benches).run();
        assert_eq!(
            fingerprint(&r),
            fingerprint(&reference),
            "slot shift {shift} changed results"
        );
    }
}
