//! End-to-end integration tests: every design × organisation combination
//! runs a multiprogrammed mix to completion with sane statistics.

use dca::{Design, System, SystemConfig, SystemReport};
use dca_cpu::{mix, Benchmark};
use dca_dram_cache::OrgKind;

fn run(design: Design, org: OrgKind, remap: bool, lee: bool) -> SystemReport {
    let mut cfg = if remap {
        SystemConfig::paper_remap(design, org)
    } else {
        SystemConfig::paper(design, org)
    };
    cfg.lee_writeback = lee;
    cfg.target_insts = 50_000;
    cfg.warmup_ops = 200_000;
    System::new(cfg, &mix(1).benches).run()
}

#[test]
fn all_design_org_combinations_complete() {
    for design in Design::ALL {
        for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
            let r = run(design, org, false, false);
            assert!(
                r.cores.iter().all(|c| c.insts >= 50_000),
                "{} {} did not finish",
                design.label(),
                org.label()
            );
            assert!(r.cores.iter().all(|c| c.ipc > 0.0 && c.ipc < 8.0));
        }
    }
}

#[test]
fn remap_variants_complete() {
    for design in Design::ALL {
        let r = run(design, OrgKind::DirectMapped, true, false);
        assert!(r.cores.iter().all(|c| c.insts >= 50_000));
    }
}

#[test]
fn lee_writeback_variants_complete() {
    for design in Design::ALL {
        let r = run(design, OrgKind::DirectMapped, false, true);
        assert!(r.cores.iter().all(|c| c.insts >= 50_000));
        assert!(
            r.writeback_requests > 0,
            "Lee policy must produce writebacks"
        );
    }
}

#[test]
fn request_traffic_is_consistent() {
    let r = run(Design::Cd, OrgKind::paper_set_assoc(), false, false);
    // Every demand miss eventually refills: refills <= misses (some may
    // be in flight at the end of simulation) and in the same ballpark.
    assert!(r.refill_requests <= r.cache_read_misses);
    assert!(
        r.refill_requests * 10 >= r.cache_read_misses * 8,
        "most misses refill: {} of {}",
        r.refill_requests,
        r.cache_read_misses
    );
    // Miss path reads main memory (plus MAP-I mispredicted prefetches).
    assert!(r.mem_reads >= r.cache_read_misses);
    // Channel read/write traffic exists on every channel.
    for (i, ch) in r.channels.iter().enumerate() {
        assert!(ch.reads > 0, "channel {i} saw no reads");
        assert!(ch.writes > 0, "channel {i} saw no writes");
    }
}

#[test]
fn set_assoc_does_more_accesses_per_request_than_direct_mapped() {
    // Fig 2: an SA read is up to 3 accesses, a DM read is one fused TAD.
    let sa = run(Design::Cd, OrgKind::paper_set_assoc(), false, false);
    let dm = run(Design::Cd, OrgKind::DirectMapped, false, false);
    let sa_accesses: u64 = sa.channels.iter().map(|c| c.reads + c.writes).sum();
    let dm_accesses: u64 = dm.channels.iter().map(|c| c.reads + c.writes).sum();
    let sa_reqs =
        sa.cache_read_hits + sa.cache_read_misses + sa.writeback_requests + sa.refill_requests;
    let dm_reqs =
        dm.cache_read_hits + dm.cache_read_misses + dm.writeback_requests + dm.refill_requests;
    let sa_ratio = sa_accesses as f64 / sa_reqs as f64;
    let dm_ratio = dm_accesses as f64 / dm_reqs as f64;
    assert!(
        sa_ratio > dm_ratio + 0.3,
        "SA must average more accesses per request: SA {sa_ratio:.2} vs DM {dm_ratio:.2}"
    );
}

#[test]
fn single_benchmark_runs_for_every_benchmark() {
    for bench in Benchmark::ALL {
        let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        cfg.target_insts = 20_000;
        cfg.warmup_ops = 50_000;
        let r = System::new(cfg, &[bench]).run();
        assert!(r.cores[0].insts >= 20_000, "{} stalled", bench.name());
    }
}

#[test]
fn predictor_learns_the_workload() {
    let r = run(Design::Dca, OrgKind::DirectMapped, false, false);
    assert!(
        r.predictor_accuracy > 0.6,
        "MAP-I should beat coin flips, got {:.2}",
        r.predictor_accuracy
    );
}
