//! The paper's headline shapes, asserted at reduced scale. These are the
//! acceptance tests of the reproduction: who wins, in which order, and
//! roughly by how much (see EXPERIMENTS.md for the measured factors).
//!
//! These run 4-core simulations and are the slowest tests in the suite;
//! they use throughput (sum-of-IPC) speedups at a fixed mix set, which
//! tracks the weighted-speedup ordering at this scale.

use dca::{Design, System, SystemConfig};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

/// Sum-of-IPC over a couple of representative mixes.
fn throughput(design: Design, org: OrgKind) -> f64 {
    let mut total = 1.0;
    for mid in [1u32, 13] {
        let mut cfg = SystemConfig::paper(design, org);
        cfg.target_insts = 120_000;
        cfg.warmup_ops = 400_000;
        let r = System::new(cfg, &mix(mid).benches).run();
        total *= r.cores.iter().map(|c| c.ipc).sum::<f64>();
    }
    total.sqrt()
}

#[test]
fn dca_beats_cd_and_rod_direct_mapped() {
    let cd = throughput(Design::Cd, OrgKind::DirectMapped);
    let rod = throughput(Design::Rod, OrgKind::DirectMapped);
    let dca = throughput(Design::Dca, OrgKind::DirectMapped);
    // Fig 8 (DM): DCA ~ +20.8% over CD, ROD in between.
    assert!(
        dca > cd * 1.08,
        "DCA must clearly beat CD (DM): {dca:.3} vs {cd:.3}"
    );
    assert!(
        dca > rod * 1.05,
        "DCA must clearly beat ROD (DM): {dca:.3} vs {rod:.3}"
    );
    assert!(
        rod > cd * 0.95,
        "ROD must not collapse vs CD (DM): {rod:.3} vs {cd:.3}"
    );
}

#[test]
fn dca_beats_cd_and_rod_set_assoc() {
    let cd = throughput(Design::Cd, OrgKind::paper_set_assoc());
    let rod = throughput(Design::Rod, OrgKind::paper_set_assoc());
    let dca = throughput(Design::Dca, OrgKind::paper_set_assoc());
    // Fig 8 (SA): DCA ~ +16.4% over CD.
    assert!(
        dca > cd * 1.05,
        "DCA must beat CD (SA): {dca:.3} vs {cd:.3}"
    );
    assert!(
        dca > rod * 1.05,
        "DCA must beat ROD (SA): {dca:.3} vs {rod:.3}"
    );
}

#[test]
fn dca_gains_more_on_direct_mapped_than_set_assoc() {
    // §VI-A: "DCA provides more speedup in the direct-mapped design"
    // (the SA read queue holds 2 entries per read, pressuring the LR
    // buffering).
    let dm_gain = throughput(Design::Dca, OrgKind::DirectMapped)
        / throughput(Design::Cd, OrgKind::DirectMapped);
    let sa_gain = throughput(Design::Dca, OrgKind::paper_set_assoc())
        / throughput(Design::Cd, OrgKind::paper_set_assoc());
    assert!(
        dm_gain > sa_gain * 0.98,
        "DM gain {dm_gain:.3} should meet or exceed SA gain {sa_gain:.3}"
    );
}

#[test]
fn dca_keeps_its_lead_with_remapping() {
    // Fig 9: remapping mitigates RRC but not priority inversion, so DCA
    // still beats CD when both use the XOR remap.
    let run = |design: Design| {
        let mut cfg = SystemConfig::paper_remap(design, OrgKind::DirectMapped);
        cfg.target_insts = 120_000;
        cfg.warmup_ops = 400_000;
        let r = System::new(cfg, &mix(17).benches).run();
        r.cores.iter().map(|c| c.ipc).sum::<f64>()
    };
    let cd = run(Design::Cd);
    let dca = run(Design::Dca);
    assert!(
        dca > cd * 1.03,
        "DCA+remap must beat CD+remap: {dca:.3} vs {cd:.3}"
    );
}

#[test]
fn dca_keeps_its_lead_under_lee_writeback() {
    // Fig 19: DRAM-aware LLC writeback does not remove the tag-read
    // problem; DCA still wins (paper: ~7% DM).
    let run = |design: Design| {
        let mut cfg = SystemConfig::paper(design, OrgKind::DirectMapped);
        cfg.lee_writeback = true;
        cfg.target_insts = 120_000;
        cfg.warmup_ops = 400_000;
        let r = System::new(cfg, &mix(6).benches).run();
        r.cores.iter().map(|c| c.ipc).sum::<f64>()
    };
    let cd = run(Design::Cd);
    let dca = run(Design::Dca);
    assert!(
        dca > cd * 1.02,
        "LEE+DCA must beat LEE+CD: {dca:.3} vs {cd:.3}"
    );
}

#[test]
fn miss_latency_ordering_matches_fig12_13() {
    for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
        let lat = |design: Design| {
            let mut cfg = SystemConfig::paper(design, org);
            cfg.target_insts = 120_000;
            cfg.warmup_ops = 400_000;
            System::new(cfg, &mix(13).benches)
                .run()
                .l2_miss_latency
                .mean_ns()
        };
        let cd = lat(Design::Cd);
        let dca = lat(Design::Dca);
        assert!(
            dca < cd,
            "{}: DCA miss latency {dca:.1} must beat CD {cd:.1}",
            org.label()
        );
    }
}

#[test]
fn flushing_factor_is_insensitive_below_five() {
    // §IV-C: FF-1..FF-4 within ~1% of each other (allow 5% at this scale).
    let ws = |ff: u8| {
        let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::paper_set_assoc());
        cfg.dca.flushing_factor = ff;
        cfg.target_insts = 100_000;
        cfg.warmup_ops = 400_000;
        let r = System::new(cfg, &mix(1).benches).run();
        r.cores.iter().map(|c| c.ipc).sum::<f64>()
    };
    let ff4 = ws(4);
    for ff in [1u8, 2, 3] {
        let v = ws(ff);
        assert!(
            (v / ff4 - 1.0).abs() < 0.05,
            "FF-{ff} deviates from FF-4: {v:.3} vs {ff4:.3}"
        );
    }
}
