//! Bit-level reproducibility: identical configurations must produce
//! identical statistics, and different seeds must actually differ.

use dca::{Design, System, SystemConfig, SystemReport};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

fn run(seed: u64, design: Design) -> SystemReport {
    let mut cfg = SystemConfig::paper(design, OrgKind::paper_set_assoc());
    cfg.target_insts = 40_000;
    cfg.warmup_ops = 150_000;
    cfg.seed = seed;
    System::new(cfg, &mix(5).benches).run()
}

fn fingerprint(r: &SystemReport) -> Vec<u64> {
    let mut v = vec![
        r.end_time.ps(),
        r.mem_reads,
        r.mem_writes,
        r.writeback_requests,
        r.refill_requests,
        r.cache_read_hits,
        r.cache_read_misses,
    ];
    for c in &r.cores {
        v.push(c.insts);
        v.push(c.cycles);
    }
    for ch in &r.channels {
        v.push(ch.reads);
        v.push(ch.writes);
        v.push(ch.turnarounds);
        v.push(ch.read_row_conflicts);
    }
    v
}

#[test]
fn identical_seeds_identical_results() {
    for design in Design::ALL {
        let a = run(7, design);
        let b = run(7, design);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{} non-deterministic",
            design.label()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(7, Design::Dca);
    let b = run(8, Design::Dca);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn designs_share_functional_workload() {
    // Same seed ⇒ same instruction streams ⇒ closely matching request
    // *counts* across designs (scheduling changes timing, and timing
    // feeds back into eviction order, so allow small drift).
    let a = run(7, Design::Cd);
    let b = run(7, Design::Dca);
    let reads_a = a.cache_read_hits + a.cache_read_misses;
    let reads_b = b.cache_read_hits + b.cache_read_misses;
    let drift = (reads_a as f64 - reads_b as f64).abs() / reads_a as f64;
    assert!(
        drift < 0.05,
        "demand-read counts should track closely: {} vs {}",
        reads_a,
        reads_b
    );
}
