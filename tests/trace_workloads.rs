//! End-to-end coverage of the trace-file workload front-end: the
//! checked-in fixture must round-trip bit-for-bit and reproduce from
//! its generator recipe, a trace-driven mix must run through the real
//! harness path (`RunSpec::run_mix` + warm-cache reuse) with results
//! identical to a cold run, and malformed inputs must surface as typed
//! errors, never panics.

use std::sync::Arc;

use dca::Design;
use dca_bench::{RunSpec, WarmCache};
use dca_cpu::{
    decode_trace, dump_synthetic, encode_trace, mix, register_mix, register_trace_bytes,
    register_trace_file, Benchmark, TraceEncoding, TraceError,
};
use dca_dram_cache::OrgKind;

/// The checked-in fixture (resolved relative to the suite crate, so
/// the tests pass from any working directory).
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/libquantum_2800.dcat"
);

/// The exact `tracegen-dump` invocation that produced the fixture.
const FIXTURE_BENCH: Benchmark = Benchmark::Libquantum;
const FIXTURE_OPS: u64 = 2_800;
const FIXTURE_SEED: u64 = 7;

fn harness_spec() -> RunSpec {
    // Explicit small scale: these tests must not depend on DCA_INSTS /
    // DCA_FULL in the environment.
    RunSpec {
        design: Design::Dca,
        org: OrgKind::DirectMapped,
        remap: false,
        lee: false,
        flushing_factor: 4,
        policy: dca_dram_cache::ReplacementPolicy::Srrip,
        main_mem: dca_bench::MainMemKind::Flat,
        engine: dca::EngineSel::Calendar,
        insts: 20_000,
        warmup: 60_000,
        seed: 0xDCA_2016,
    }
}

#[test]
fn fixture_round_trips_bit_for_bit_and_reproduces_from_its_recipe() {
    let bytes = std::fs::read(FIXTURE).expect("fixture present");
    assert!(bytes.len() < 10 * 1024, "fixture must stay tiny");
    let records = decode_trace(&bytes).expect("fixture decodes");
    assert_eq!(records.len() as u64, FIXTURE_OPS);
    // decode → encode reproduces the exact file bytes.
    assert_eq!(encode_trace(&records, TraceEncoding::Delta), bytes);
    // The fixture is exactly `tracegen-dump libquantum 2800 --seed 7`:
    // anyone can regenerate it, and generator drift is caught here
    // rather than silently shipping a stale fixture.
    let regenerated = dump_synthetic(FIXTURE_BENCH, FIXTURE_OPS, FIXTURE_SEED);
    assert_eq!(regenerated, records, "fixture no longer matches its recipe");
    assert_eq!(encode_trace(&regenerated, TraceEncoding::Delta), bytes);
}

#[test]
fn trace_mix_runs_through_run_mix_with_warm_reuse() {
    let trace = register_trace_file(FIXTURE).expect("register fixture");
    let m = register_mix([trace, Benchmark::Mcf, Benchmark::Gcc, trace]);
    assert!(mix(m.id).benches[0].is_trace());
    let spec = harness_spec();

    // The real harness path: run_mix resolves the registered mix and
    // (by default) shares the functional warm-up through the global
    // WarmCache. Warm-cached and cold runs must be indistinguishable.
    let warm = spec.run_mix(m.id);
    let cold = spec.run_mix_cold(m.id);
    assert_eq!(
        format!("{warm:?}"),
        format!("{cold:?}"),
        "trace-driven warm-cached run must be bit-for-bit identical to cold"
    );
    assert!(warm.cores.iter().all(|c| c.insts >= spec.insts));
    assert_eq!(warm.cores[0].bench, trace.name());

    // Repeating the run hits the cache and stays deterministic.
    let again = spec.run_mix(m.id);
    assert_eq!(format!("{warm:?}"), format!("{again:?}"));
}

#[test]
fn trace_workloads_share_one_warmup_across_designs() {
    // The sweep-reuse property the warm cache exists for, now with a
    // trace workload in the mix: every design variant of the same
    // (benches, org, warmup, seed) tuple pays for one warm-up.
    let trace = register_trace_file(FIXTURE).expect("register fixture");
    let benches = [trace, Benchmark::Mcf];
    let cache = WarmCache::with_policy(4, None, true);
    let mut states = Vec::new();
    for design in Design::ALL {
        let mut spec = harness_spec();
        spec.design = design;
        states.push(cache.get_or_build(&spec.config(), &benches));
    }
    assert_eq!(cache.stats().builds, 1, "one warm-up for three designs");
    assert!(Arc::ptr_eq(&states[0], &states[1]));
    assert!(Arc::ptr_eq(&states[0], &states[2]));
}

#[test]
fn edited_trace_content_gets_a_fresh_warm_fingerprint() {
    // Warm-state keys hash the trace *content digest*: editing one
    // record re-keys every checkpoint, so a stale blob can never
    // satisfy the edited workload.
    let bytes = std::fs::read(FIXTURE).expect("fixture present");
    let original = register_trace_bytes("fp-edit-a", &bytes).expect("register");
    let mut records = decode_trace(&bytes).expect("decode");
    records[1000].is_store = !records[1000].is_store;
    let edited = register_trace_bytes("fp-edit-b", &encode_trace(&records, TraceEncoding::Delta))
        .expect("register");
    let cfg = harness_spec().config();
    let fp_a = dca::WarmState::fingerprint_for(&cfg, &[original, Benchmark::Mcf]);
    let fp_b = dca::WarmState::fingerprint_for(&cfg, &[edited, Benchmark::Mcf]);
    assert_ne!(fp_a, fp_b);
}

#[test]
fn malformed_traces_are_typed_errors_not_panics() {
    let bytes = std::fs::read(FIXTURE).expect("fixture present");

    // Truncations at every depth: header, record area, last byte.
    for cut in [0, 4, 12, 20, bytes.len() / 2, bytes.len() - 1] {
        let err = decode_trace(&bytes[..cut]).expect_err("truncation must fail");
        let _ = err.to_string(); // Display is total
    }

    // Registering garbage surfaces the typed error, not a panic.
    assert!(matches!(
        register_trace_bytes("garbage", b"garbage-bytes-here"),
        Err(TraceError::BadMagic)
    ));

    // A version from the future is refused by version, not misparsed.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        decode_trace(&future),
        Err(TraceError::UnsupportedVersion(99))
    ));

    // Registering a missing file is an Io error.
    assert!(matches!(
        register_trace_file("/nonexistent/definitely/missing.dcat"),
        Err(TraceError::Io(_))
    ));
}
