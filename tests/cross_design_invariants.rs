//! Invariants that distinguish the three controller designs, checked on
//! live simulations (not unit fixtures): queue-placement consequences,
//! the PR/LR machinery, and turnaround behaviour.

use dca::{Design, System, SystemConfig, SystemReport};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

fn run(design: Design, org: OrgKind) -> SystemReport {
    let mut cfg = SystemConfig::paper(design, org);
    cfg.target_insts = 80_000;
    cfg.warmup_ops = 400_000;
    System::new(cfg, &mix(13).benches).run()
}

#[test]
fn rod_turns_the_bus_around_far_more_than_cd() {
    // Figs 14/15: ROD processes roughly a third of CD's accesses per
    // turnaround, because its write queue mixes directions.
    for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
        let cd = run(Design::Cd, org);
        let rod = run(Design::Rod, org);
        assert!(
            cd.accesses_per_turnaround() > rod.accesses_per_turnaround() * 1.5,
            "{}: CD apt {:.2} vs ROD {:.2}",
            org.label(),
            cd.accesses_per_turnaround(),
            rod.accesses_per_turnaround()
        );
    }
}

#[test]
fn dca_batches_turnarounds_much_better_than_rod() {
    // Figs 14/15: DCA processes close to CD's accesses per turnaround.
    for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
        let dca = run(Design::Dca, org);
        let rod = run(Design::Rod, org);
        assert!(
            dca.accesses_per_turnaround() > rod.accesses_per_turnaround() * 1.2,
            "{}: DCA apt {:.2} vs ROD {:.2}",
            org.label(),
            dca.accesses_per_turnaround(),
            rod.accesses_per_turnaround()
        );
    }
}

#[test]
fn dca_uses_ofs_and_serves_both_classes() {
    let r = run(Design::Dca, OrgKind::paper_set_assoc());
    let ofs: u64 = r
        .channels
        .iter()
        .map(|c| c.ctrl.ofs_row_friendly.get() + c.ctrl.ofs_rrpc_cold.get())
        .sum();
    let lr: u64 = r.channels.iter().map(|c| c.ctrl.lr_served.get()).sum();
    assert!(ofs > 0, "OFS must fire");
    assert!(ofs <= lr, "OFS issues are a subset of LR services");
    // Most LRs should leave through OFS, not through ScheduleAll pressure.
    assert!(
        ofs * 2 > lr,
        "OFS should carry the bulk of LR flushing: {ofs} of {lr}"
    );
}

#[test]
fn dca_lrs_wait_longer_than_prs() {
    // The design's point: LRs are deferred, PRs go first.
    let r = run(Design::Dca, OrgKind::paper_set_assoc());
    let pr_wait: f64 = r.channels.iter().map(|c| c.ctrl.pr_wait_ns()).sum::<f64>() / 4.0;
    let lr_wait: f64 = r.channels.iter().map(|c| c.ctrl.lr_wait_ns()).sum::<f64>() / 4.0;
    assert!(
        lr_wait > pr_wait * 1.5,
        "LRs must be held back: pr {pr_wait:.0}ns lr {lr_wait:.0}ns"
    );
}

#[test]
fn cd_does_not_defer_lrs() {
    // Under CD the same accesses share one queue with no class bias, so
    // LR wait is comparable to PR wait (inversion, not deferral).
    let r = run(Design::Cd, OrgKind::paper_set_assoc());
    let pr_wait: f64 = r.channels.iter().map(|c| c.ctrl.pr_wait_ns()).sum::<f64>() / 4.0;
    let lr_wait: f64 = r.channels.iter().map(|c| c.ctrl.lr_wait_ns()).sum::<f64>() / 4.0;
    assert!(
        lr_wait < pr_wait * 3.0,
        "CD serves LRs in-line: pr {pr_wait:.0}ns lr {lr_wait:.0}ns"
    );
}

#[test]
fn dca_improves_pr_latency_over_cd() {
    // The mechanism behind Figs 12/13: priority reads wait less under DCA.
    for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
        let cd = run(Design::Cd, org);
        let dca = run(Design::Dca, org);
        let cd_pr: f64 = cd.channels.iter().map(|c| c.ctrl.pr_wait_ns()).sum::<f64>();
        let dca_pr: f64 = dca
            .channels
            .iter()
            .map(|c| c.ctrl.pr_wait_ns())
            .sum::<f64>();
        assert!(
            dca_pr < cd_pr,
            "{}: DCA PR wait {:.0} must beat CD {:.0}",
            org.label(),
            dca_pr / 4.0,
            cd_pr / 4.0
        );
    }
}

#[test]
fn forced_drains_happen_under_write_pressure() {
    for design in Design::ALL {
        let r = run(design, OrgKind::DirectMapped);
        let drains: u64 = r
            .channels
            .iter()
            .map(|c| c.ctrl.forced_drain_slots.get())
            .sum();
        assert!(drains > 0, "{} never force-drained", design.label());
    }
}
