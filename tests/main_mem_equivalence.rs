//! The tier-generic main-memory refactor must be invisible when the
//! `FlatLatency` backend is selected: every run is **bit-identical to
//! the pre-refactor seed model**, locked here against fingerprints
//! captured from the seed simulator immediately before the refactor
//! (commit 8caf634, `SystemConfig::paper(..).scaled(25_000, 120_000)`
//! on Table I mix 3). With the cycle-level backend the same machinery
//! must run every design to completion, deterministically, under both
//! event engines.

use dca::{Design, System, SystemConfig, SystemReport};
use dca_cpu::mix;
use dca_dram_cache::{OrgKind, ReplacementPolicy};
use dca_mem_hier::MainMemConfig;

/// Seed-model fingerprints: (design, org, end_time_ps, events,
/// mem_reads, mem_writes, cache_read_hits, cache_read_misses,
/// writeback_requests, per-core (insts, cycles)).
#[allow(clippy::type_complexity)]
const SEED_GOLDEN: &[(&str, &str, u64, u64, u64, u64, u64, u64, u64, &[(u64, u64)])] = &[
    (
        "CD",
        "DM",
        48201078,
        41402,
        5892,
        4,
        206,
        5875,
        411,
        &[
            (25000, 192809),
            (25001, 129060),
            (25002, 173177),
            (25000, 174664),
        ],
    ),
    (
        "ROD",
        "DM",
        48583372,
        42760,
        5890,
        4,
        210,
        5875,
        413,
        &[
            (25000, 194338),
            (25001, 118551),
            (25002, 187583),
            (25000, 147642),
        ],
    ),
    (
        "DCA",
        "DM",
        41206800,
        40709,
        5891,
        5,
        209,
        5875,
        411,
        &[
            (25000, 164832),
            (25001, 106944),
            (25002, 152852),
            (25000, 148419),
        ],
    ),
    (
        "CD",
        "SA",
        38348120,
        47394,
        5883,
        0,
        214,
        5869,
        410,
        &[
            (25000, 153397),
            (25001, 99482),
            (25002, 141706),
            (25000, 99710),
        ],
    ),
    (
        "ROD",
        "SA",
        41981150,
        48541,
        5883,
        0,
        217,
        5869,
        413,
        &[
            (25000, 167929),
            (25001, 98015),
            (25002, 156746),
            (25000, 103720),
        ],
    ),
    (
        "DCA",
        "SA",
        35521240,
        47270,
        5883,
        0,
        215,
        5869,
        411,
        &[
            (25000, 142089),
            (25001, 84300),
            (25002, 132414),
            (25000, 89396),
        ],
    ),
];

fn design_of(label: &str) -> Design {
    match label {
        "CD" => Design::Cd,
        "ROD" => Design::Rod,
        "DCA" => Design::Dca,
        other => panic!("unknown design {other}"),
    }
}

fn org_of(label: &str) -> OrgKind {
    match label {
        "DM" => OrgKind::DirectMapped,
        "SA" => OrgKind::paper_set_assoc(),
        other => panic!("unknown org {other}"),
    }
}

#[test]
fn flat_backend_is_bit_identical_to_the_seed_model() {
    for &(design, org, end_ps, events, mr, mw, hits, misses, wbs, cores) in SEED_GOLDEN {
        let cfg = SystemConfig::paper(design_of(design), org_of(org)).scaled(25_000, 120_000);
        assert!(
            !cfg.main_mem.is_cycle(),
            "paper() must default to the flat seed backend"
        );
        let r = System::new(cfg, &mix(3).benches).run();
        let got_cores: Vec<(u64, u64)> = r.cores.iter().map(|c| (c.insts, c.cycles)).collect();
        assert_eq!(
            (
                r.end_time.ps(),
                r.events_processed,
                r.mem_reads,
                r.mem_writes,
                r.cache_read_hits,
                r.cache_read_misses,
                r.writeback_requests,
                got_cores.as_slice(),
            ),
            (end_ps, events, mr, mw, hits, misses, wbs, cores),
            "{design}/{org}: FlatLatency diverged from the seed model"
        );
        assert_eq!(r.main_mem.backend, "flat");
        assert_eq!(r.main_mem.reads, mr);
        assert_eq!(r.main_mem.writes, mw);
    }
}

#[test]
fn explicit_srrip_policy_is_bit_identical_to_the_seed_model() {
    // The replacement-policy layer must be a pure refactor for SRRIP:
    // spelling out the seed's hard-wired policy explicitly reproduces
    // the pre-refactor fingerprints bit for bit, for every existing
    // design on both organisations.
    for &(design, org, end_ps, events, mr, mw, hits, misses, wbs, cores) in SEED_GOLDEN {
        let mut cfg = SystemConfig::paper(design_of(design), org_of(org)).scaled(25_000, 120_000);
        assert_eq!(
            cfg.replacement,
            ReplacementPolicy::Srrip,
            "SRRIP must stay the default policy"
        );
        cfg.replacement = ReplacementPolicy::Srrip;
        let r = System::new(cfg, &mix(3).benches).run();
        let got_cores: Vec<(u64, u64)> = r.cores.iter().map(|c| (c.insts, c.cycles)).collect();
        assert_eq!(
            (
                r.end_time.ps(),
                r.events_processed,
                r.mem_reads,
                r.mem_writes,
                r.cache_read_hits,
                r.cache_read_misses,
                r.writeback_requests,
                got_cores.as_slice(),
            ),
            (end_ps, events, mr, mw, hits, misses, wbs, cores),
            "{design}/{org}: explicit SRRIP diverged from the seed model"
        );
    }
}

fn fingerprint(r: &SystemReport) -> Vec<u64> {
    let mut v = vec![
        r.end_time.ps(),
        r.events_processed,
        r.mem_reads,
        r.mem_writes,
        r.cache_read_hits,
        r.cache_read_misses,
        r.writeback_requests,
        r.refill_requests,
        r.main_mem.row_hits,
        r.main_mem.row_conflicts,
        r.main_mem.turnarounds,
        r.main_mem.peak_queue,
        r.main_mem.queue_wait_ps,
        r.main_mem.busy_ps,
    ];
    for c in &r.cores {
        v.push(c.insts);
        v.push(c.cycles);
    }
    v
}

#[test]
fn cycle_backend_is_engine_independent() {
    // The cycle-level device's MemPump/MemArrive events must behave
    // identically under every engine: calendar (default), heap,
    // adaptive calendar, and the domain-sharded merge.
    let mut cfg =
        SystemConfig::paper_cycle_mem(Design::Dca, OrgKind::DirectMapped).scaled(20_000, 80_000);
    let calendar = System::new(cfg, &mix(3).benches).run();
    assert_eq!(calendar.main_mem.backend, "cycle");
    for engine in [
        dca::EngineSel::Heap,
        dca::EngineSel::CalendarAdaptive,
        dca::EngineSel::Sharded { threads: 2 },
    ] {
        cfg.engine = engine;
        let r = System::new(cfg, &mix(3).benches).run();
        assert_eq!(
            fingerprint(&calendar),
            fingerprint(&r),
            "cycle backend diverges under {:?}",
            engine
        );
    }
}

#[test]
fn bandwidth_divisor_monotonically_hurts() {
    // Dividing main-memory bandwidth can only slow a fixed workload
    // down (or leave it unchanged) — the sensitivity sweep's sanity
    // anchor.
    let run = |div: u32| {
        let mut cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(20_000, 80_000);
        cfg.main_mem = MainMemConfig::ddr4_bandwidth_div(div);
        System::new(cfg, &mix(3).benches).run()
    };
    let full = run(1);
    let quarter = run(4);
    assert!(
        quarter.end_time >= full.end_time,
        "quarter-bandwidth run finished earlier ({:?} < {:?})",
        quarter.end_time,
        full.end_time
    );
    assert!(full.mem_reads > 0);
}

#[test]
fn cycle_backend_reports_device_behaviour() {
    let cfg =
        SystemConfig::paper_cycle_mem(Design::Cd, OrgKind::DirectMapped).scaled(25_000, 120_000);
    let r = System::new(cfg, &mix(3).benches).run();
    let s = &r.main_mem;
    assert_eq!(s.backend, "cycle");
    assert_eq!(s.reads, r.mem_reads);
    assert_eq!(s.writes, r.mem_writes);
    assert!(s.reads > 1_000, "mix 3 misses heavily at this scale");
    assert!(
        s.row_hits + s.row_conflicts <= s.reads + s.writes,
        "row outcomes partition issued accesses"
    );
    assert!(s.row_hit_rate() >= 0.0 && s.row_hit_rate() <= 1.0);
    assert!(s.busy_ps > 0, "bursts occupy the data bus");
    assert!(s.peak_queue > 0, "bursty misses must queue");
    assert!(s.mean_queue_wait_ns() >= 0.0);
}
