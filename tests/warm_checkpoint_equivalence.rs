//! Warm-state checkpointing must be invisible in the results: a run
//! restored from a [`WarmState`] has to produce a byte-identical report
//! to a cold run of the same configuration — for every controller
//! design, both organisations, and across the on-disk codec — and
//! component `snapshot → restore` must round-trip exactly.

use dca::{Design, System, SystemConfig, SystemReport, WarmState};
use dca_cpu::{mix, Benchmark};
use dca_dram_cache::{OrgKind, TagArray};
use dca_mem_hier::SramCache;
use dca_sim_core::{ByteReader, ByteWriter};
use proptest::prelude::*;

fn cfg(design: Design, org: OrgKind) -> SystemConfig {
    // Small but non-trivial: long enough that every request kind flows.
    SystemConfig::paper(design, org).scaled(25_000, 120_000)
}

/// Render every field of the report — integers and floats alike — so
/// "byte-identical" means exactly that. The timeline is `None` for all
/// runs here, so the Debug form is total.
fn report_bytes(r: &SystemReport) -> String {
    format!("{r:?}")
}

#[test]
fn restored_runs_match_cold_runs_for_all_designs_and_orgs() {
    let benches = mix(3).benches;
    for org in [OrgKind::DirectMapped, OrgKind::paper_set_assoc()] {
        // One capture per organisation, shared by all three designs —
        // the exact reuse pattern the figure sweeps rely on.
        let warm = System::capture_warm(cfg(Design::Cd, org), &benches);
        for design in Design::ALL {
            let c = cfg(design, org);
            let cold = System::new(c, &benches).run();
            let restored = System::from_warm(c, &benches, &warm).run();
            assert_eq!(
                report_bytes(&cold),
                report_bytes(&restored),
                "{} {} restored run diverged from cold",
                design.label(),
                org.label()
            );
        }
    }
}

#[test]
fn cycle_main_memory_restored_runs_match_cold_runs() {
    // The cycle-level main-memory backend is a pure timing-phase device:
    // a warm state captured under the *flat* backend must drive a
    // cycle-backend run to a byte-identical report vs a cold run — in
    // memory and through the on-disk codec — for every design.
    let benches = mix(3).benches;
    let flat_cfg = cfg(Design::Cd, OrgKind::DirectMapped);
    let warm = System::capture_warm(flat_cfg, &benches);
    let decoded = WarmState::decode(&warm.encode()).expect("decode");
    for design in Design::ALL {
        let mut c = cfg(design, OrgKind::DirectMapped);
        c.main_mem = dca_mem_hier::MainMemConfig::ddr4();
        let cold = System::new(c, &benches).run();
        assert_eq!(cold.main_mem.backend, "cycle");
        let restored = System::from_warm(c, &benches, &warm).run();
        assert_eq!(
            report_bytes(&cold),
            report_bytes(&restored),
            "{} cycle-mem restored run diverged from cold",
            design.label()
        );
        let redecoded = System::from_warm(c, &benches, &decoded).run();
        assert_eq!(
            report_bytes(&cold),
            report_bytes(&redecoded),
            "{} cycle-mem codec-restored run diverged from cold",
            design.label()
        );
    }
}

#[test]
fn remapped_run_restores_from_unmapped_capture() {
    // The bank remap permutes banks only; (set, tag) placement — all
    // warm-up touches — is mapping-independent, so one capture must
    // serve both mappings bit-for-bit.
    let benches = [Benchmark::Libquantum, Benchmark::Lbm];
    let base = cfg(Design::Dca, OrgKind::DirectMapped);
    let warm = System::capture_warm(base, &benches);
    let mut remapped = base;
    remapped.mapping = dca_dram::MappingScheme::XorRemap;
    let cold = System::new(remapped, &benches).run();
    let restored = System::from_warm(remapped, &benches, &warm).run();
    assert_eq!(report_bytes(&cold), report_bytes(&restored));
}

#[test]
fn trace_driven_restored_runs_match_cold_runs() {
    // The trace front-end must be a full citizen of warm-state
    // checkpointing: a mix containing trace-replay cores restores from
    // a capture — in memory *and* through the on-disk codec — to a
    // byte-identical report, for every design.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/libquantum_2800.dcat"
    );
    let trace = dca_cpu::register_trace_file(fixture).expect("register fixture");
    let benches = [trace, Benchmark::Mcf];
    let warm = System::capture_warm(cfg(Design::Cd, OrgKind::DirectMapped), &benches);
    let decoded = WarmState::decode(&warm.encode()).expect("decode");
    assert_eq!(decoded.fingerprint(), warm.fingerprint());
    for design in Design::ALL {
        let c = cfg(design, OrgKind::DirectMapped);
        let cold = System::new(c, &benches).run();
        let restored = System::from_warm(c, &benches, &warm).run();
        assert_eq!(
            report_bytes(&cold),
            report_bytes(&restored),
            "{} trace-driven restored run diverged from cold",
            design.label()
        );
        let redecoded = System::from_warm(c, &benches, &decoded).run();
        assert_eq!(
            report_bytes(&cold),
            report_bytes(&redecoded),
            "{} trace-driven codec-restored run diverged from cold",
            design.label()
        );
    }
}

#[test]
fn codec_round_trip_preserves_run_equivalence() {
    // Cold run vs a run restored from a decode(encode(state)) blob —
    // the full on-disk path, not just the in-memory clone.
    let benches = [Benchmark::Gcc, Benchmark::Mcf];
    let c = cfg(Design::Rod, OrgKind::DirectMapped);
    let warm = System::capture_warm(c, &benches);
    let decoded = WarmState::decode(&warm.encode()).expect("decode");
    let cold = System::new(c, &benches).run();
    let restored = System::from_warm(c, &benches, &decoded).run();
    assert_eq!(report_bytes(&cold), report_bytes(&restored));
}

proptest! {
    /// `snapshot → restore` rewinds an `SramCache` exactly: replaying
    /// the same op suffix from the snapshot yields identical hits,
    /// evictions and statistics, no matter what happened in between.
    #[test]
    fn sram_snapshot_restore_round_trips(
        prefix in prop::collection::vec((0u64..512, any::<bool>()), 0..300),
        suffix in prop::collection::vec((0u64..512, any::<bool>()), 1..300),
        noise in prop::collection::vec((0u64..512, any::<bool>()), 0..100)
    ) {
        let mut cache = SramCache::new(64 * 64, 4);
        for &(block, w) in &prefix {
            if !cache.probe(block, w) {
                cache.allocate(block, w);
            }
        }
        let snap = cache.snapshot();
        let replay = |c: &mut SramCache| -> Vec<(bool, Option<(u64, bool)>)> {
            suffix
                .iter()
                .map(|&(block, w)| {
                    let hit = c.probe(block, w);
                    let evicted = (!hit).then(|| c.allocate(block, w)).flatten();
                    (hit, evicted)
                })
                .collect()
        };
        let reference = replay(&mut cache);
        // Diverge arbitrarily, then rewind.
        for &(block, w) in &noise {
            cache.probe(block, w);
            cache.allocate(block, w);
        }
        cache.restore(&snap);
        prop_assert_eq!(&replay(&mut cache), &reference);
        prop_assert_eq!(
            cache.stats().accesses.get(),
            snap.stats().accesses.get() + suffix.len() as u64
        );
    }

    /// Same property for the DRAM-cache `TagArray`, additionally through
    /// the binary codec: decode(encode(snapshot)) behaves identically.
    #[test]
    fn tag_array_snapshot_restore_round_trips(
        prefix in prop::collection::vec((0u64..64, 0u32..128, any::<bool>()), 0..300),
        suffix in prop::collection::vec((0u64..64, 0u32..128, any::<bool>()), 1..300)
    ) {
        let mut tags = TagArray::new(64, 4);
        for &(set, tag, dirty) in &prefix {
            match tags.lookup(set, tag) {
                Some(w) => tags.touch(set, w),
                None => {
                    tags.insert(set, tag, dirty);
                }
            }
        }
        let snap = tags.snapshot();
        let mut w = ByteWriter::new();
        snap.encode(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        let mut decoded = TagArray::decode(&mut r).expect("decode");
        r.finish().expect("fully consumed");

        // Per-op observation: (lookup outcome, predicted victim way).
        type TagStep = (Option<u16>, (u16, Option<(u32, bool)>));
        let replay = |t: &mut TagArray| -> Vec<TagStep> {
            suffix
                .iter()
                .map(|&(set, tag, dirty)| {
                    let found = t.lookup(set, tag);
                    let victim = t.victim_way(set);
                    match found {
                        Some(way) => t.set_dirty(set, way, dirty),
                        None => {
                            t.insert(set, tag, dirty);
                        }
                    }
                    (found, victim)
                })
                .collect()
        };
        let reference = replay(&mut tags);
        // Wreck the live array, rewind, and also replay the decoded twin.
        for set in 0..64 {
            tags.insert(set, 9999, true);
        }
        tags.restore(&snap);
        prop_assert_eq!(&replay(&mut tags), &reference);
        prop_assert_eq!(&replay(&mut decoded), &reference);
    }
}
