//! `dca-lint` — a workspace-wide determinism & robustness linter.
//!
//! Everything this reproduction promises — paper figures byte-identical
//! across engines, warm restores, serial vs pool vs TCP fabric — rests on
//! invariants that runtime bit-identity tests only catch *after* a
//! violation slips in. This crate enforces them statically, at the source
//! level, with zero dependencies (a hand-rolled line/token scanner; no
//! `syn`, consistent with the offline shim policy).
//!
//! # Rules
//!
//! | Rule | Scope | What it guards |
//! |------|-------|----------------|
//! | D01  | sim crates, non-test | no `std::collections::HashMap`/`HashSet` — SipHash's per-process random keys make hash order (and anything derived from it) differ run to run. Use `FastHashMap`/`FastHashSet` from `dca-sim-core::hash`, or `BTreeMap`. |
//! | D02  | all crates, non-test | no `Instant::now`/`SystemTime` outside the bench-timing allowlist ([`D02_ALLOW`]) — wall-clock reads in sim code leak host timing into results. |
//! | D03  | sim crates, non-test | no unsorted iteration (`.iter()`, `.keys()`, `for .. in &map`, …) over hash maps — order leaks into event order and reports. Collect & sort, or use `BTreeMap`. |
//! | C01  | all crates, non-test | codec coverage: a struct with `fn encode` must mention every named field somewhere in its `encode`/`decode` bodies — catches the "added a field, forgot the codec" class that forced the `WarmState` v2→v3→v4 bumps. |
//! | R01  | `shard::{net,server,agent,supervisor,journal}` + `sim-core::shardloop`, non-test | no `unwrap`/`expect`/`panic!` — the crash-recoverable fabric paths must degrade (retry, quarantine, reconnect), and a panicking worker thread in the parallel engine would poison its peers' rings; both surface typed errors instead. |
//! | T01  | `sim-core/src/shardloop*`, non-test | no `std::sync::mpsc` — the parallel engine's determinism proof rests on its own bounded SPSC rings with explicit acquire/release pairing; mutex-backed channels add blocking and wakeup nondeterminism the safe-time protocol does not account for. (Hash order and wall-clock reads in the same files are already covered by D01/D03/D02: `sim-core` is a sim crate and `shardloop` is not in the D02 allowlist.) |
//! | P01  | everywhere | a `dca-lint:` pragma that names an unknown rule or carries no reason is itself a finding. |
//!
//! "Non-test" means: not under a `tests/` or `benches/` directory, and not
//! inside a `#[cfg(test)]` item. Comments and string literals are blanked
//! before matching, so prose never trips a rule.
//!
//! # Escape hatch
//!
//! Any finding can be suppressed with an inline pragma naming the rule and
//! giving a reason:
//!
//! ```text
//! use std::collections::HashMap; // dca-lint: allow(D01) this module defines FastHashMap
//! ```
//!
//! Pragmas live in plain `//` comments (doc comments and string literals
//! are never parsed as pragmas). A pragma on a line of code suppresses
//! that line; a pragma on a line of its own suppresses the next line.
//! Every pragma is reported in the
//! `--json` output (`allow_pragmas`), and the self-test in
//! `tests/lint.rs` pins the set of pragmas in this tree to the documented
//! ones — adding a pragma means documenting it there.
//!
//! # Usage
//!
//! ```text
//! cargo run -p dca-lint            # human-readable findings
//! cargo run -p dca-lint -- --json  # machine-readable (schema 1), used by CI
//! dca-lint --root <dir>            # scan a different workspace-shaped tree
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/IO error.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Rule identifiers with one-line descriptions (stable order).
pub const RULES: &[(&str, &str)] = &[
    (
        "D01",
        "std HashMap/HashSet in non-test sim-crate code (SipHash nondeterminism)",
    ),
    (
        "D02",
        "wall-clock read (Instant::now/SystemTime) outside the bench-timing allowlist",
    ),
    (
        "D03",
        "unsorted iteration over a hash map in sim-crate code",
    ),
    (
        "C01",
        "struct with fn encode whose encode/decode bodies do not mention every field",
    ),
    (
        "R01",
        "unwrap/expect/panic! in crash-recoverable shard code",
    ),
    (
        "T01",
        "std::sync::mpsc in the parallel engine (shardloop uses its own SPSC rings)",
    ),
    ("P01", "malformed dca-lint allow pragma"),
];

/// Crates whose non-test code must be bit-deterministic: everything that
/// runs inside a simulation or renders its reports.
pub const SIM_CRATES: &[&str] = &[
    "sim-core",
    "dram",
    "dram-cache",
    "mem-hier",
    "sched",
    "cpu",
    "core",
    "metrics",
];

/// Files allowed to read the wall clock, with the reason why (D02).
pub const D02_ALLOW: &[(&str, &str)] = &[
    (
        "crates/criterion-shim/src/lib.rs",
        "bench harness shim measures wall time by design",
    ),
    (
        "crates/bench/src/bin/perf_smoke.rs",
        "perf smoke exists to measure wall clock",
    ),
    (
        "crates/bench/src/bin/figures.rs",
        "CLI reports sweep wall-clock timings",
    ),
    (
        "crates/bench/src/warm.rs",
        "stale warm-dir lock reclaim keys off wall-clock age",
    ),
    (
        "crates/bench/src/shard/supervisor.rs",
        "job deadlines and heartbeat liveness need a clock",
    ),
    (
        "crates/bench/src/shard/server.rs",
        "lease expiry and agent liveness need a clock",
    ),
    (
        "crates/bench/src/shard/agent.rs",
        "reconnect backoff and idle draining need a clock",
    ),
];

/// Modules where panicking is forbidden (R01): the crash-recoverable
/// fabric paths, plus the parallel engine — a worker-thread panic there
/// would strand its peers spinning on rings that will never drain.
pub const R01_FILES: &[&str] = &[
    "crates/bench/src/shard/net.rs",
    "crates/bench/src/shard/server.rs",
    "crates/bench/src/shard/agent.rs",
    "crates/bench/src/shard/supervisor.rs",
    "crates/bench/src/shard/journal.rs",
    "crates/sim-core/src/shardloop.rs",
];

/// Path prefix of the parallel engine, where `std::sync::mpsc` is
/// forbidden (T01) — its determinism proof rests on the module's own
/// bounded SPSC rings.
pub const T01_PREFIX: &str = "crates/sim-core/src/shardloop";

/// A single lint violation at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

/// An inline `// dca-lint: allow(<rule>) <reason>` pragma found in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowPragma {
    pub rule: String,
    pub path: String,
    pub line: usize,
    pub reason: String,
}

/// The result of scanning a workspace-shaped tree.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub pragmas: Vec<AllowPragma>,
    pub files_scanned: usize,
}

fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == rule && *r != "P01")
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whole-identifier occurrences of `needle` in `hay` (byte offsets).
fn ident_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = hay[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let after_ok = hay[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

fn has_ident(hay: &str, needle: &str) -> bool {
    !ident_positions(hay, needle).is_empty()
}

/// Blank comments, string/char literals (line structure preserved) so the
/// rule matchers only ever see code.
pub fn mask_source(src: &str) -> String {
    mask(src, false)
}

/// Like [`mask_source`] but plain `//` comments are kept verbatim — the
/// haystack for pragma parsing. Doc comments (`///`, `//!`), block
/// comments and string literals are still blanked, so prose and message
/// strings that mention the pragma syntax never parse as pragmas.
pub fn pragma_source(src: &str) -> String {
    mask(src, true)
}

fn mask(src: &str, keep_plain_comments: bool) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let doc = matches!(b.get(i + 2), Some(&'/') | Some(&'!'));
            let keep = keep_plain_comments && !doc;
            while i < b.len() && b[i] != '\n' {
                out.push(if keep { b[i] } else { ' ' });
                i += 1;
            }
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            out.extend([' ', ' ']);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.extend([' ', ' ']);
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.extend([' ', ' ']);
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if (c == 'r' || c == 'b')
            && !out.last().is_some_and(|&p| is_ident_char(p))
            && raw_string_open(&b, i).is_some()
        {
            let (quote_at, hashes) = raw_string_open(&b, i).unwrap();
            out.extend(std::iter::repeat_n(' ', quote_at - i + 1));
            i = quote_at + 1;
            while i < b.len() {
                if b[i] == '"' && (0..hashes).all(|m| b.get(i + 1 + m) == Some(&'#')) {
                    out.extend(std::iter::repeat_n(' ', hashes + 1));
                    i += 1 + hashes;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
        } else if c == '"'
            || (c == 'b'
                && b.get(i + 1) == Some(&'"')
                && !out.last().is_some_and(|&p| is_ident_char(p)))
        {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    // `\<newline>` line continuation: keep the newline so
                    // line numbering stays aligned.
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Distinguish a lifetime (`'a`, `'static`) from a char literal.
            let next = b.get(i + 1).copied();
            let is_lifetime = next.is_some_and(is_ident_char) && b.get(i + 2) != Some(&'\'');
            if is_lifetime {
                out.push(c);
                i += 1;
            } else {
                out.push(' ');
                i += 1;
                if b.get(i) == Some(&'\\') {
                    out.extend([' ', ' ']);
                    i += 2;
                } else if i < b.len() {
                    out.push(' ');
                    i += 1;
                }
                if b.get(i) == Some(&'\'') {
                    out.push(' ');
                    i += 1;
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out.into_iter().collect()
}

/// If `b[i..]` opens a raw string (`r"`, `r#"`, `br"`, …), return the index
/// of the opening quote and the hash count.
fn raw_string_open(b: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    let mut k = j + 1;
    let mut hashes = 0usize;
    while b.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    (b.get(k) == Some(&'"')).then_some((k, hashes))
}

/// Per-line flags: `true` when the line belongs to a `#[cfg(test)]` item
/// (attribute line through closing brace), tracked by brace depth over the
/// masked source.
pub fn test_line_flags(masked: &str) -> Vec<bool> {
    let nlines = masked.lines().count();
    let mut flags = vec![false; nlines.max(1)];
    let b: Vec<char> = masked.chars().collect();
    let mut line = 0usize;
    let mut depth = 0i64;
    let mut region_depth: Option<i64> = None;
    let mut pending_from: Option<usize> = None;
    let mut i = 0;
    let mark = |flags: &mut Vec<bool>, l: usize| {
        if l < flags.len() {
            flags[l] = true;
        }
    };
    while i < b.len() {
        let c = b[i];
        if region_depth.is_some() {
            mark(&mut flags, line);
        }
        match c {
            '\n' => line += 1,
            '#' if region_depth.is_none()
                && pending_from.is_none()
                && b[i..].starts_with(&"#[cfg(test)]".chars().collect::<Vec<_>>()[..]) =>
            {
                pending_from = Some(line);
            }
            '{' => {
                if let Some(from) = pending_from.take() {
                    region_depth = Some(depth);
                    for l in from..=line {
                        mark(&mut flags, l);
                    }
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if region_depth == Some(depth) {
                    region_depth = None;
                    mark(&mut flags, line);
                }
            }
            ';' => {
                // `#[cfg(test)] use …;` / `mod tests;`: item with no body.
                if let Some(from) = pending_from.take() {
                    for l in from..=line {
                        mark(&mut flags, l);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    flags
}

/// Parsed pragmas for one file plus malformed-pragma findings. The map is
/// suppressed-line → rules suppressed on it.
struct Pragmas {
    allows: Vec<AllowPragma>,
    malformed: Vec<Finding>,
    suppress: BTreeMap<usize, Vec<String>>,
}

fn collect_pragmas(path: &str, pragma_lines: &[&str], masked_lines: &[&str]) -> Pragmas {
    let mut p = Pragmas {
        allows: Vec::new(),
        malformed: Vec::new(),
        suppress: BTreeMap::new(),
    };
    for (idx, raw) in pragma_lines.iter().enumerate() {
        let Some(at) = raw.find("dca-lint:") else {
            continue;
        };
        let rest = raw[at + "dca-lint:".len()..].trim_start();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            let close = r.find(')')?;
            let rule = r[..close].trim().to_string();
            let reason = r[close + 1..].trim().to_string();
            Some((rule, reason))
        });
        let (rule, reason) = match parsed {
            Some(ok) => ok,
            None => {
                p.malformed.push(Finding {
                    rule: "P01",
                    path: path.to_string(),
                    line: idx + 1,
                    message: "malformed pragma: expected `dca-lint: allow(<rule>) <reason>`".into(),
                });
                continue;
            }
        };
        if !is_known_rule(&rule) {
            p.malformed.push(Finding {
                rule: "P01",
                path: path.to_string(),
                line: idx + 1,
                message: format!("pragma names unknown rule `{rule}`"),
            });
            continue;
        }
        if reason.is_empty() {
            p.malformed.push(Finding {
                rule: "P01",
                path: path.to_string(),
                line: idx + 1,
                message: format!("allow({rule}) pragma carries no reason"),
            });
            continue;
        }
        // A pragma on a code line covers that line; on a comment-only line
        // it covers the next line.
        let has_code = masked_lines.get(idx).is_some_and(|m| !m.trim().is_empty());
        let target = if has_code { idx } else { idx + 1 };
        p.suppress.entry(target).or_default().push(rule.clone());
        p.allows.push(AllowPragma {
            rule,
            path: path.to_string(),
            line: idx + 1,
            reason,
        });
    }
    p
}

/// Classification of one file, derived from its root-relative path.
struct FileCtx {
    sim_crate: bool,
    r01: bool,
    t01: bool,
    d02_allowed: bool,
}

impl FileCtx {
    fn new(rel: &str) -> Self {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next());
        FileCtx {
            sim_crate: crate_name.is_some_and(|c| SIM_CRATES.contains(&c)),
            r01: R01_FILES.contains(&rel),
            t01: rel.starts_with(T01_PREFIX),
            d02_allowed: D02_ALLOW.iter().any(|(p, _)| *p == rel),
        }
    }
}

/// Scan one file's source, returning findings and pragmas.
pub fn scan_file(rel: &str, src: &str) -> (Vec<Finding>, Vec<AllowPragma>) {
    let ctx = FileCtx::new(rel);
    let masked = mask_source(src);
    let for_pragmas = pragma_source(src);
    let pragma_lines: Vec<&str> = for_pragmas.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let test = test_line_flags(&masked);
    let pragmas = collect_pragmas(rel, &pragma_lines, &masked_lines);

    let mut findings = pragmas.malformed.clone();
    let mut push = |f: Finding, suppress: &BTreeMap<usize, Vec<String>>| {
        let line_idx = f.line - 1;
        let allowed = suppress
            .get(&line_idx)
            .is_some_and(|rules| rules.iter().any(|r| r == f.rule));
        if !allowed {
            findings.push(f);
        }
    };

    let d03_names = if ctx.sim_crate {
        d03_map_names(&masked_lines, &test)
    } else {
        Vec::new()
    };

    for (idx, ml) in masked_lines.iter().enumerate() {
        if test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let line = idx + 1;
        if ctx.sim_crate {
            for ty in ["HashMap", "HashSet"] {
                if has_ident(ml, ty) {
                    push(
                        Finding {
                            rule: "D01",
                            path: rel.into(),
                            line,
                            message: format!(
                                "std {ty} in sim-crate code: SipHash keys differ per process; use Fast{ty} or BTreeMap"
                            ),
                        },
                        &pragmas.suppress,
                    );
                }
            }
            for name in &d03_names {
                if let Some(what) = d03_iteration(ml, name) {
                    push(
                        Finding {
                            rule: "D03",
                            path: rel.into(),
                            line,
                            message: format!(
                                "unsorted iteration ({what}) over hash map `{name}`: order leaks into results; collect & sort, or use BTreeMap"
                            ),
                        },
                        &pragmas.suppress,
                    );
                }
            }
        }
        if !ctx.d02_allowed {
            let hit = if ml.contains("Instant::now") {
                Some("Instant::now")
            } else if has_ident(ml, "SystemTime") {
                Some("SystemTime")
            } else {
                None
            };
            if let Some(what) = hit {
                push(
                    Finding {
                        rule: "D02",
                        path: rel.into(),
                        line,
                        message: format!(
                            "wall-clock read ({what}) outside the bench-timing allowlist: host timing must not reach sim code"
                        ),
                    },
                    &pragmas.suppress,
                );
            }
        }
        if ctx.r01 {
            let mut hits: Vec<&str> = Vec::new();
            for m in ["unwrap", "expect"] {
                for at in ident_positions(ml, m) {
                    if ml[..at].trim_end().ends_with('.') {
                        hits.push(m);
                    }
                }
            }
            for at in ident_positions(ml, "panic") {
                if ml[at + "panic".len()..].starts_with('!') {
                    hits.push("panic!");
                }
            }
            for what in hits {
                push(
                    Finding {
                        rule: "R01",
                        path: rel.into(),
                        line,
                        message: format!(
                            "{what} in crash-recoverable shard code: degrade via retry/quarantine, do not abort"
                        ),
                    },
                    &pragmas.suppress,
                );
            }
        }
        if ctx.t01 && has_ident(ml, "mpsc") {
            push(
                Finding {
                    rule: "T01",
                    path: rel.into(),
                    line,
                    message:
                        "std::sync::mpsc in the parallel engine: the safe-time protocol's determinism proof assumes the module's own bounded SPSC rings, not mutex-backed channels"
                            .into(),
                },
                &pragmas.suppress,
            );
        }
    }

    for f in c01_check(&masked, &test) {
        push(
            Finding {
                rule: "C01",
                path: rel.into(),
                line: f.0,
                message: f.1,
            },
            &pragmas.suppress,
        );
    }

    (findings, pragmas.allows)
}

/// Names of variables/fields declared with a hash-map type (D03 universe).
fn d03_map_names(masked_lines: &[&str], test: &[bool]) -> Vec<String> {
    const MAP_TYPES: &[&str] = &["HashMap", "HashSet", "FastHashMap", "FastHashSet"];
    let mut names: Vec<String> = Vec::new();
    for (idx, ml) in masked_lines.iter().enumerate() {
        if test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for ty in MAP_TYPES {
            for at in ident_positions(ml, ty) {
                if let Some(name) = declared_name(ml, at) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Given `…name: path::Type<…>` with the type at byte `at`, recover `name`;
/// also handles `let [mut] name = Type::new()`.
fn declared_name(line: &str, at: usize) -> Option<String> {
    let before = &line[..at];
    // Annotation form: strip the path prefix back to a single `:`.
    let mut s = before.trim_end();
    while s.ends_with("::") || s.chars().next_back().is_some_and(is_ident_char) {
        if let Some(stripped) = s.strip_suffix("::") {
            s = stripped;
        } else {
            let cut = s
                .rfind(|c: char| !is_ident_char(c))
                .map_or(0, |p| p + c_len(s, p));
            s = &s[..cut];
        }
        s = s.trim_end();
    }
    if s.ends_with(':') && !s.ends_with("::") {
        let name = trailing_ident(s[..s.len() - 1].trim_end());
        if name.is_some() {
            return name;
        }
    }
    // Binding form: `let [mut] name = … Type …`.
    for lat in ident_positions(line, "let") {
        if lat < at {
            let mut rest = line[lat + 3..].trim_start();
            if let Some(r) = rest.strip_prefix("mut ") {
                rest = r.trim_start();
            }
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() && line[lat..at].contains('=') {
                return Some(name);
            }
        }
    }
    None
}

fn c_len(s: &str, at: usize) -> usize {
    s[at..].chars().next().map_or(1, |c| c.len_utf8())
}

fn trailing_ident(s: &str) -> Option<String> {
    let start = s
        .rfind(|c: char| !is_ident_char(c))
        .map_or(0, |p| p + c_len(s, p));
    let id = &s[start..];
    (!id.is_empty() && !id.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| id.to_string())
}

/// Does this masked line iterate over `name` in hash order?
fn d03_iteration(ml: &str, name: &str) -> Option<&'static str> {
    const METHODS: &[&str] = &[
        "iter()",
        "iter_mut()",
        "keys()",
        "values()",
        "values_mut()",
        "drain(",
        "into_iter()",
    ];
    for at in ident_positions(ml, name) {
        let after = &ml[at + name.len()..];
        if let Some(rest) = after.strip_prefix('.') {
            for m in METHODS {
                if rest.starts_with(m) {
                    return Some(match *m {
                        "drain(" => "drain",
                        other => {
                            // strip the parens for the message
                            &other[..other.len() - 2]
                        }
                    });
                }
            }
        }
        // `for x in &name` / `for x in name`
        let before = ml[..at].trim_end();
        let b = before
            .strip_suffix('&')
            .map(str::trim_end)
            .unwrap_or(before);
        let b = b.strip_suffix("mut").map(str::trim_end).unwrap_or(b);
        let b = b.strip_suffix('&').map(str::trim_end).unwrap_or(b);
        if b.ends_with(" in") && has_ident(ml, "for") {
            return Some("for-in");
        }
    }
    None
}

/// C01: structs with `fn encode` must mention every named field in their
/// encode/decode bodies. Returns `(line, message)` pairs.
fn c01_check(masked: &str, test: &[bool]) -> Vec<(usize, String)> {
    let structs = parse_structs(masked, test);
    let codecs = parse_codec_bodies(masked, test);
    let mut out = Vec::new();
    for s in structs {
        let Some((encode, decode)) = codecs.get(&s.name) else {
            continue;
        };
        if encode.is_empty() {
            continue;
        }
        let union = format!("{encode}\n{decode}");
        let missing: Vec<&str> = s
            .fields
            .iter()
            .map(String::as_str)
            .filter(|f| !has_ident(&union, f))
            .collect();
        if !missing.is_empty() {
            out.push((
                s.line,
                format!(
                    "struct {} has fn encode but field{} {} never mentioned in its encode/decode bodies",
                    s.name,
                    if missing.len() == 1 { "" } else { "s" },
                    missing
                        .iter()
                        .map(|f| format!("`{f}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
    out
}

struct StructDef {
    name: String,
    line: usize,
    fields: Vec<String>,
}

fn line_of(masked: &str, at: usize) -> usize {
    masked[..at].matches('\n').count() + 1
}

fn parse_structs(masked: &str, test: &[bool]) -> Vec<StructDef> {
    let mut out = Vec::new();
    for at in ident_positions(masked, "struct") {
        let line = line_of(masked, at);
        if test.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        let rest = masked[at + "struct".len()..].trim_start();
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if name.is_empty() {
            continue;
        }
        // Find the body opener at angle-depth 0; `(` or `;` first ⇒ tuple
        // or unit struct, which C01 skips.
        let after = &rest[name.len()..];
        let mut angle = 0i32;
        let mut body_at = None;
        for (pos, c) in after.char_indices() {
            match c {
                '<' => angle += 1,
                '>' => angle -= 1,
                '{' if angle <= 0 => {
                    body_at = Some(pos);
                    break;
                }
                '(' | ';' if angle <= 0 => break,
                _ => {}
            }
        }
        let Some(bat) = body_at else { continue };
        let body = balanced_block(&after[bat..]);
        out.push(StructDef {
            name,
            line,
            fields: field_names(body),
        });
    }
    out
}

/// Given text starting at `{`, return the slice inside the matching `}`.
fn balanced_block(s: &str) -> &str {
    let mut depth = 0i32;
    for (pos, c) in s.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return &s[1..pos];
                }
            }
            _ => {}
        }
    }
    &s[1.min(s.len())..]
}

/// Named fields of a struct body: split on depth-0 commas, take the ident
/// before the first depth-0 `:` of each chunk.
fn field_names(body: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut chunk = String::new();
    let flush = |chunk: &mut String, fields: &mut Vec<String>| {
        let c = chunk.trim();
        if let Some(colon) = find_depth0_colon(c) {
            if let Some(name) = trailing_ident(c[..colon].trim_end()) {
                fields.push(name);
            }
        }
        chunk.clear();
    };
    for c in body.chars() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ',' if depth == 0 => {
                flush(&mut chunk, &mut fields);
                continue;
            }
            _ => {}
        }
        chunk.push(c);
    }
    flush(&mut chunk, &mut fields);
    fields
}

/// First single-`:` at bracket-depth 0 (skips `::`).
fn find_depth0_colon(s: &str) -> Option<usize> {
    let b: Vec<char> = s.chars().collect();
    let mut depth = 0i32;
    let mut i = 0;
    let mut byte = 0;
    while i < b.len() {
        match b[i] {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ':' if depth == 0 => {
                if b.get(i + 1) == Some(&':') {
                    byte += 2;
                    i += 2;
                    continue;
                }
                return Some(byte);
            }
            _ => {}
        }
        byte += b[i].len_utf8();
        i += 1;
    }
    None
}

/// For each type with an inherent/trait impl in this file, the concatenated
/// bodies of its `fn encode` and `fn decode` (empty string when absent).
fn parse_codec_bodies(masked: &str, test: &[bool]) -> BTreeMap<String, (String, String)> {
    let mut map: BTreeMap<String, (String, String)> = BTreeMap::new();
    for at in ident_positions(masked, "impl") {
        let line = line_of(masked, at);
        if test.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        let rest = &masked[at + "impl".len()..];
        // Walk tokens to the body `{`, tracking the last depth-0 ident as
        // the type name; `for` restarts it (trait impls), `where` ends it.
        let mut angle = 0i32;
        let mut name = String::new();
        let mut cur = String::new();
        let mut frozen = false;
        let mut body_at = None;
        for (pos, c) in rest.char_indices() {
            if is_ident_char(c) {
                cur.push(c);
                continue;
            }
            if !cur.is_empty() {
                match (cur.as_str(), angle, frozen) {
                    ("for", 0, _) => name.clear(),
                    ("where", 0, _) => frozen = true,
                    ("dyn", _, _) => {}
                    (id, 0, false) if !id.chars().next().is_some_and(|f| f.is_ascii_digit()) => {
                        name = id.to_string();
                    }
                    _ => {}
                }
                cur.clear();
            }
            match c {
                '<' => angle += 1,
                '>' => angle -= 1,
                '{' if angle <= 0 => {
                    body_at = Some(pos);
                    break;
                }
                ';' if angle <= 0 => break,
                _ => {}
            }
        }
        let (Some(bat), false) = (body_at, name.is_empty()) else {
            continue;
        };
        let body = balanced_block(&rest[bat..]);
        let entry = map.entry(name).or_default();
        for (fn_name, slot) in [("encode", 0usize), ("decode", 1usize)] {
            for fat in ident_positions(body, "fn") {
                let sig = body[fat + 2..].trim_start();
                if !sig.starts_with(fn_name)
                    || sig[fn_name.len()..]
                        .chars()
                        .next()
                        .is_some_and(is_ident_char)
                {
                    continue;
                }
                if let Some(open) = body[fat..].find('{') {
                    let fbody = balanced_block(&body[fat + open..]);
                    let dst = if slot == 0 {
                        &mut entry.0
                    } else {
                        &mut entry.1
                    };
                    dst.push_str(fbody);
                    dst.push('\n');
                }
            }
        }
    }
    map
}

// ---------------------------------------------------------------------------
// Workspace walking & reporting
// ---------------------------------------------------------------------------

fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "fixtures" || c == "target")
}

/// Collect all non-test `.rs` files under `<root>/crates/*`, sorted.
fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(format!("{} has no crates/ directory", root.display()));
    }
    let mut files = Vec::new();
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "tests" && name != "benches" && name != "fixtures" && name != "target" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scan the workspace-shaped tree rooted at `root`.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        if is_test_path(&rel) {
            continue;
        }
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let (findings, pragmas) = scan_file(&rel, &src);
        report.findings.extend(findings);
        report.pragmas.extend(pragmas);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    report
        .pragmas
        .sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(report)
}

/// Walk up from `start` to the first directory holding a `[workspace]`
/// manifest.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the report as a stable machine-readable JSON document (schema 1).
pub fn render_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", report.files_scanned);
    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.rule,
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        );
    }
    s.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    s.push_str("  \"allow_pragmas\": [");
    for (i, p) in report.pragmas.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            json_escape(&p.rule),
            json_escape(&p.path),
            p.line,
            json_escape(&p.reason)
        );
    }
    s.push_str(if report.pragmas.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    s.push_str("}\n");
    s
}

/// Render the report for humans: one `path:line: RULE message` per finding.
pub fn render_text(report: &Report) -> String {
    let mut s = String::new();
    for f in &report.findings {
        let _ = writeln!(s, "{}:{}: {} {}", f.path, f.line, f.rule, f.message);
    }
    let _ = writeln!(
        s,
        "dca-lint: {} finding{} in {} files ({} allow pragma{})",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.files_scanned,
        report.pragmas.len(),
        if report.pragmas.len() == 1 { "" } else { "s" },
    );
    s
}
