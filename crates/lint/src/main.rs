//! CLI for `dca-lint`. See the library docs for the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: dca-lint [--json] [--root <dir>]\n\
     \n\
     Scans <root>/crates/*/**.rs (skipping tests/ and benches/) for\n\
     determinism and robustness violations. Exit 0 clean, 1 findings,\n\
     2 usage/IO error."
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("dca-lint: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dca-lint: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("dca-lint: current_dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match dca_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("dca-lint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match dca_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dca-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", dca_lint::render_json(&report));
    } else {
        print!("{}", dca_lint::render_text(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
