//! Linter test suite: per-rule fixtures with seeded violations, pragma
//! suppression, the `--json` schema golden, CLI exit codes, and the
//! "tree is clean" self-test over the real workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

use dca_lint::{mask_source, scan_file, scan_workspace, test_line_flags};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

// ---------------------------------------------------------------------------
// Scanner internals
// ---------------------------------------------------------------------------

#[test]
fn masking_preserves_line_structure() {
    let src = "let a = \"multi \\\n line \\\" str\";\nlet b = r#\"raw } { \"quote\" \"#;\n/* block\ncomment */ let c = 'x';\nlet d: &'static str = \"s\"; // trailing\n";
    let masked = mask_source(src);
    assert_eq!(src.lines().count(), masked.lines().count());
    // No string/comment content survives…
    for word in [
        "multi", "line", "raw", "quote", "block", "comment", "trailing",
    ] {
        assert!(!masked.contains(word), "{word} leaked into masked source");
    }
    // …but code does, including the lifetime.
    for code in ["let a =", "let b =", "let c =", "let d: &'static str"] {
        assert!(masked.contains(code), "{code} missing from masked source");
    }
}

#[test]
fn cfg_test_items_are_flagged_to_their_closing_brace() {
    let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn also_live() {}\n";
    let flags = test_line_flags(&mask_source(src));
    assert_eq!(flags, vec![false, true, true, true, true, false]);
}

#[test]
fn fast_hash_map_does_not_trip_d01() {
    let (findings, _) = scan_file(
        "crates/sim-core/src/x.rs",
        "use crate::hash::FastHashMap;\npub fn f() -> FastHashMap<u64, u64> {\n    FastHashMap::default()\n}\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hash_map_in_non_sim_crate_is_fine() {
    let (findings, _) = scan_file(
        "crates/bench/src/x.rs",
        "use std::collections::HashMap;\npub fn f() -> HashMap<u64, u64> {\n    HashMap::new()\n}\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

#[test]
fn violations_fixture_trips_every_rule() {
    let report = scan_workspace(&fixture("violations")).expect("scan");
    let got: Vec<(&str, &str, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    let expected: Vec<(&str, &str, usize)> = vec![
        ("R01", "crates/bench/src/shard/server.rs", 5),
        ("R01", "crates/bench/src/shard/server.rs", 7),
        ("R01", "crates/bench/src/shard/server.rs", 15),
        ("C01", "crates/core/src/codec.rs", 4),
        ("P01", "crates/core/src/codec.rs", 57),
        ("P01", "crates/core/src/codec.rs", 58),
        ("P01", "crates/core/src/codec.rs", 59),
        ("D01", "crates/sim-core/src/maps.rs", 4),
        ("D03", "crates/sim-core/src/maps.rs", 13),
        ("D02", "crates/sim-core/src/maps.rs", 20),
        ("D01", "crates/sim-core/src/maps.rs", 24),
        ("D01", "crates/sim-core/src/maps.rs", 26),
        ("T01", "crates/sim-core/src/shardloop.rs", 3),
        ("T01", "crates/sim-core/src/shardloop.rs", 6),
        ("R01", "crates/sim-core/src/shardloop.rs", 7),
    ];
    assert_eq!(got, expected);
    assert!(report.pragmas.is_empty());
    // One finding per seeded violation and nothing from the #[cfg(test)]
    // blocks, comments, or strings that repeat the same patterns.
    let c01 = report
        .findings
        .iter()
        .find(|f| f.rule == "C01")
        .expect("C01 finding");
    assert!(c01.message.contains("`generation`"), "{}", c01.message);
}

#[test]
fn allow_pragmas_suppress_and_are_reported() {
    let report = scan_workspace(&fixture("allowed")).expect("scan");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let got: Vec<(&str, &str, usize)> = report
        .pragmas
        .iter()
        .map(|p| (p.rule.as_str(), p.path.as_str(), p.line))
        .collect();
    let expected: Vec<(&str, &str, usize)> = vec![
        ("R01", "crates/bench/src/shard/agent.rs", 4),
        ("D01", "crates/sim-core/src/maps.rs", 4),
        ("D01", "crates/sim-core/src/maps.rs", 7),
        ("D03", "crates/sim-core/src/maps.rs", 13),
        ("D02", "crates/sim-core/src/maps.rs", 21),
    ];
    assert_eq!(got, expected);
    assert!(report.pragmas.iter().all(|p| !p.reason.is_empty()));
}

#[test]
fn clean_fixture_is_clean() {
    let report = scan_workspace(&fixture("clean")).expect("scan");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.pragmas.is_empty());
    assert_eq!(report.files_scanned, 1);
}

// ---------------------------------------------------------------------------
// Self-test: the real tree lints clean, with only the documented pragmas
// ---------------------------------------------------------------------------

#[test]
fn real_workspace_is_clean() {
    let report = scan_workspace(&workspace_root()).expect("scan");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: {} {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "tree has lint findings:\n{}",
        rendered.join("\n")
    );
    // The only sanctioned pragmas are the FastHashMap definition site in
    // sim-core::hash. Adding a pragma anywhere else must be a conscious
    // decision: document it here.
    for p in &report.pragmas {
        assert_eq!(
            (p.rule.as_str(), p.path.as_str()),
            ("D01", "crates/sim-core/src/hash.rs"),
            "undocumented pragma at {}:{} ({})",
            p.path,
            p.line,
            p.reason,
        );
    }
    assert_eq!(
        report.pragmas.len(),
        3,
        "pragma count drifted: {:?}",
        report.pragmas
    );
}

// ---------------------------------------------------------------------------
// CLI: exit codes and the JSON schema golden
// ---------------------------------------------------------------------------

fn run_lint(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dca-lint"))
        .args(args)
        .output()
        .expect("run");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_exit_codes() {
    let violations = fixture("violations");
    let clean = fixture("clean");
    let (code, _, _) = run_lint(&["--root", violations.to_str().expect("utf8 path")]);
    assert_eq!(code, 1, "violations must exit 1");
    let (code, _, _) = run_lint(&["--root", clean.to_str().expect("utf8 path")]);
    assert_eq!(code, 0, "clean tree must exit 0");
    let (code, _, err) = run_lint(&["--frobnicate"]);
    assert_eq!(code, 2, "unknown flag must exit 2");
    assert!(err.contains("usage"), "{err}");
    let (code, _, _) = run_lint(&["--root", "/nonexistent/dca-lint-root"]);
    assert_eq!(code, 2, "missing root must exit 2");
}

#[test]
fn json_output_matches_schema_golden() {
    let violations = fixture("violations");
    let (code, stdout, _) =
        run_lint(&["--json", "--root", violations.to_str().expect("utf8 path")]);
    assert_eq!(code, 1);
    let golden = r#"{
  "schema": 1,
  "files_scanned": 4,
  "findings": [
    {"rule": "R01", "path": "crates/bench/src/shard/server.rs", "line": 5, "message": "expect in crash-recoverable shard code: degrade via retry/quarantine, do not abort"},
    {"rule": "R01", "path": "crates/bench/src/shard/server.rs", "line": 7, "message": "panic! in crash-recoverable shard code: degrade via retry/quarantine, do not abort"},
    {"rule": "R01", "path": "crates/bench/src/shard/server.rs", "line": 15, "message": "unwrap in crash-recoverable shard code: degrade via retry/quarantine, do not abort"},
    {"rule": "C01", "path": "crates/core/src/codec.rs", "line": 4, "message": "struct Snapshot has fn encode but field `generation` never mentioned in its encode/decode bodies"},
    {"rule": "P01", "path": "crates/core/src/codec.rs", "line": 57, "message": "pragma names unknown rule `Z99`"},
    {"rule": "P01", "path": "crates/core/src/codec.rs", "line": 58, "message": "allow(C01) pragma carries no reason"},
    {"rule": "P01", "path": "crates/core/src/codec.rs", "line": 59, "message": "malformed pragma: expected `dca-lint: allow(<rule>) <reason>`"},
    {"rule": "D01", "path": "crates/sim-core/src/maps.rs", "line": 4, "message": "std HashMap in sim-crate code: SipHash keys differ per process; use FastHashMap or BTreeMap"},
    {"rule": "D03", "path": "crates/sim-core/src/maps.rs", "line": 13, "message": "unsorted iteration (iter) over hash map `counts`: order leaks into results; collect & sort, or use BTreeMap"},
    {"rule": "D02", "path": "crates/sim-core/src/maps.rs", "line": 20, "message": "wall-clock read (Instant::now) outside the bench-timing allowlist: host timing must not reach sim code"},
    {"rule": "D01", "path": "crates/sim-core/src/maps.rs", "line": 24, "message": "std HashMap in sim-crate code: SipHash keys differ per process; use FastHashMap or BTreeMap"},
    {"rule": "D01", "path": "crates/sim-core/src/maps.rs", "line": 26, "message": "std HashMap in sim-crate code: SipHash keys differ per process; use FastHashMap or BTreeMap"},
    {"rule": "T01", "path": "crates/sim-core/src/shardloop.rs", "line": 3, "message": "std::sync::mpsc in the parallel engine: the safe-time protocol's determinism proof assumes the module's own bounded SPSC rings, not mutex-backed channels"},
    {"rule": "T01", "path": "crates/sim-core/src/shardloop.rs", "line": 6, "message": "std::sync::mpsc in the parallel engine: the safe-time protocol's determinism proof assumes the module's own bounded SPSC rings, not mutex-backed channels"},
    {"rule": "R01", "path": "crates/sim-core/src/shardloop.rs", "line": 7, "message": "unwrap in crash-recoverable shard code: degrade via retry/quarantine, do not abort"}
  ],
  "allow_pragmas": []
}
"#;
    assert_eq!(stdout, golden);
}

#[test]
fn cli_json_on_real_workspace_is_clean() {
    let root = workspace_root();
    let (code, stdout, stderr) = run_lint(&["--json", "--root", root.to_str().expect("utf8 path")]);
    assert_eq!(
        code, 0,
        "real tree must lint clean\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("\"findings\": []"), "{stdout}");
}
