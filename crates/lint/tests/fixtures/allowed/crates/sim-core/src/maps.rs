//! Every seeded violation carries an allow pragma: the scan must come
//! back clean and report each pragma.

use std::collections::HashMap; // dca-lint: allow(D01) fixture exercises same-line suppression

pub struct Table {
    counts: HashMap<u64, u64>, // dca-lint: allow(D01) fixture keeps the std map on purpose
}

impl Table {
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        // dca-lint: allow(D03) summation is order-independent
        for (_, v) in self.counts.iter() {
            sum += v;
        }
        sum
    }

    pub fn stamp() -> u64 {
        // dca-lint: allow(D02) fixture exercises next-line suppression
        let _ = std::time::Instant::now();
        0
    }
}

pub fn risky(queue: &mut Vec<u64>) -> u64 {
    queue.pop().unwrap_or_default()
}
