//! R01 suppression: the pragma must name the rule it silences.

pub fn drain(queue: &mut Vec<u64>) -> u64 {
    queue.pop().expect("fixture") // dca-lint: allow(R01) fixture exercises R01 suppression
}
