//! A well-behaved sim-crate source: deterministic maps, no wall clock,
//! codec covers every field. The scan must find nothing.

pub struct State {
    clock: u64,
    blocks: Vec<u64>,
}

impl State {
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.clock.to_le_bytes());
        for b in &self.blocks {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let clock = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
        let blocks = Vec::new();
        Some(State { clock, blocks })
    }

    pub fn tick(&mut self) {
        self.clock += 1;
    }
}
