//! Seeded C01 violation: `generation` is snapshotted state but never
//! touched by the codec. Scanned, never compiled.

pub struct Snapshot {
    clock: u64,
    lines: Vec<u64>,
    generation: u64,
}

impl Snapshot {
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.clock.to_le_bytes());
        out.extend_from_slice(&(self.lines.len() as u64).to_le_bytes());
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let clock = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
        let mut snap = Self::empty();
        snap.clock = clock;
        Some(snap)
    }

    fn empty() -> Self {
        Snapshot {
            clock: 0,
            lines: Vec::new(),
            generation: 0,
        }
    }
}

/// Full coverage: every field named in encode/decode. Must NOT trip C01.
pub struct Covered {
    a: u64,
    b: u64,
}

impl Covered {
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.a.to_le_bytes());
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let a = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
        let b = a ^ 1;
        Some(Covered { a, b })
    }
}

/// No encode at all: C01 does not apply.
pub struct Plain {
    hidden: u64,
}

/// Malformed pragmas are themselves findings (P01).
pub fn misuse() -> u64 {
    // dca-lint: allow(Z99) no such rule
    // dca-lint: allow(C01)
    let x = 1; // dca-lint: oops
    x
}
