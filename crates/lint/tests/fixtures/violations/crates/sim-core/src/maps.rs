//! Seeded D01/D02/D03 violations for the linter's own tests. This file is
//! never compiled; it only exists to be scanned.

use std::collections::HashMap;

pub struct Table {
    counts: FastHashMap<u64, u64>,
}

impl Table {
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for (_, v) in self.counts.iter() {
            sum += v;
        }
        sum
    }

    pub fn stamp(&self) -> std::time::Instant {
        std::time::Instant::now()
    }
}

pub fn build() -> HashMap<u64, u64> {
    // A mention inside a string or comment must NOT trip D01: "HashMap".
    let m: HashMap<u64, u64> = HashMap::new();
    m
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn in_tests_anything_goes() {
        let s: HashSet<u64> = HashSet::new();
        for v in s.iter() {
            let _ = v;
        }
        let _ = std::time::Instant::now();
    }
}
