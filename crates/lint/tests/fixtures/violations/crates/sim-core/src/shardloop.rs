//! Seeded T01 + R01 violations in the parallel engine.

use std::sync::mpsc;

pub fn bad_channel() {
    let (tx, rx) = mpsc::channel::<u64>();
    tx.send(1).unwrap();
    let _ = rx.recv();
}

#[cfg(test)]
mod tests {
    // mpsc and unwrap in tests are fine:
    use std::sync::mpsc;

    #[test]
    fn t() {
        let (tx, rx) = mpsc::channel::<u64>();
        tx.send(1).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
