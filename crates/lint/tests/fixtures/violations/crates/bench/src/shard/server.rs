//! Seeded R01 violations: the crash-recoverable coordinator must not
//! panic. Scanned, never compiled.

pub fn dispatch(queue: &mut Vec<u64>) -> u64 {
    let head = queue.pop().expect("non-empty queue");
    if head == 0 {
        panic!("zero job id");
    }
    head
}

pub fn lease(map: &std::collections::BTreeMap<u64, u64>) -> u64 {
    // unwrap_or_else is a degrade path, not an abort: must NOT trip R01.
    let soft = map.get(&1).copied().unwrap_or_else(|| 0);
    soft + map.get(&2).copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Vec<u64> = vec![1];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
