//! Offline stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real criterion cannot be vendored. This shim implements exactly the
//! API subset the `dca-bench` benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, `black_box`, `criterion_group!`, `criterion_main!` —
//! with plain wall-clock timing and criterion-style one-line output:
//!
//! ```text
//! group/name              time: [12.345 ms 12.500 ms 12.655 ms]
//! ```
//!
//! Semantics intentionally kept: `iter` times the closure over a batch,
//! samples are repeated `sample_size` times (default 10), and the
//! reported triple is (min, mean, max) over samples. A positional CLI
//! argument filters benchmarks by substring, like criterion's.

use std::hint;
use std::time::Instant;

/// Prevent the optimiser from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver (shim).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First positional (non-flag) CLI argument filters by substring;
        // flags like `--bench` that cargo passes are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            filter: self.filter.clone(),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Run `f` as a single unnamed-group benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        let mut g = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
            filter,
            _criterion: std::marker::PhantomData,
        };
        g.bench_function(id, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default is 100;
    /// this workspace's benches set 10 for the heavy simulations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filt) = &self.filter {
            if !full.contains(filt.as_str()) {
                return self;
            }
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample, then `sample_size` timed ones.
        let mut b = Bencher { elapsed_ns: 0.0 };
        f(&mut b);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed_ns: 0.0 };
            f(&mut b);
            samples.push(b.elapsed_ns);
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0_f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:<40} time: [{} {} {}]",
            full,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        self
    }

    /// End the group (output is already flushed per-benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `f` once per iteration over an auto-sized batch and record
    /// the mean per-iteration cost for this sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Size the batch so one sample takes ≥ ~5 ms (cheap closures) but
        // never more than one iteration for expensive ones.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().as_nanos().max(1) as u64;
        let iters = (5_000_000 / one).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Human-format a nanosecond count like criterion does.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{:.3} ns", ns)
    }
}

/// Build a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Build `main` from one or more `criterion_group!` outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_something() {
        let mut b = Bencher { elapsed_ns: 0.0 };
        b.iter(|| black_box(41 + 1));
        assert!(b.elapsed_ns >= 0.0);
    }

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(2);
            g.bench_function("match-me", |b| {
                ran += 1;
                b.iter(|| black_box(1))
            });
        }
        assert!(ran > 0, "matching benchmark must run");
        let mut skipped_ran = false;
        {
            let mut g = c.benchmark_group("shim");
            g.bench_function("other", |b| {
                skipped_ran = true;
                b.iter(|| black_box(1))
            });
        }
        assert!(!skipped_ran, "non-matching benchmark must be skipped");
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
