//! Robustness matrix for the sweep fabric (`figures --serve <addr>` +
//! `figures --agent <addr>`), driven through the real binary over
//! loopback TCP:
//!
//! - an agent killed -9 while holding hung leases → leases forfeited,
//!   jobs retried on the surviving agent, byte-identical to serial;
//! - the coordinator killed -9 mid-sweep and restarted on the same
//!   directory and address → journal replay resumes exactly, the agent
//!   reconnects, byte-identical, journal removed on the clean finish;
//! - network faults (`drop` / `torn` / `garbage-frame` in
//!   `DCA_FAULT_PLAN`) at partial-upload time → frames rejected by the
//!   digest-verified transport, jobs retried, byte-identical;
//! - zero agents → the coordinator falls back to local workers after
//!   `DCA_FABRIC_GRACE_MS`; an agent with a mismatched scale is
//!   rejected at HELLO and exits 1.
//!
//! The worker-pool faults (crash/hang/garbage) have their own matrix in
//! `tests/pool.rs`; this file only adds what the network changes.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const FIGURES: &str = env!("CARGO_BIN_EXE_figures");

const INSTS: &str = "2000";
const WARMUP: &str = "5000";
const MIXES: &str = "1,2";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dca-fabric-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn figures_cmd(dir: &Path) -> Command {
    let mut cmd = Command::new(FIGURES);
    cmd.current_dir(dir)
        .env("DCA_INSTS", INSTS)
        .env("DCA_WARMUP", WARMUP)
        .env("DCA_MIXES", MIXES)
        .env_remove("DCA_FULL")
        .env_remove("DCA_WARM")
        .env_remove("DCA_WARM_CAP")
        .env_remove("DCA_WARM_PERSIST")
        .env_remove("DCA_WARM_DIR")
        .env_remove("DCA_FAULT_PLAN")
        .env_remove("DCA_JOB_TIMEOUT_MS")
        .env_remove("DCA_JOB_ATTEMPTS")
        .env_remove("DCA_RETRY_BACKOFF_MS")
        .env_remove("DCA_HEARTBEAT_MS")
        .env_remove("DCA_HEARTBEAT_TIMEOUT_MS")
        .env_remove("DCA_POOL_INFLIGHT")
        .env_remove("DCA_FABRIC_GRACE_MS")
        .env_remove("DCA_AGENT_RETRY_MS");
    cmd
}

/// An address no other process is currently listening on. Binding an
/// ephemeral port and releasing it races other tests in principle; the
/// coordinator's `SO_REUSEADDR` + retry bind absorbs the common case.
fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = l.local_addr().expect("local addr").to_string();
    drop(l);
    addr
}

fn spawn(cmd: &mut Command) -> Child {
    cmd.stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn figures")
}

/// Wait for `child` with a hard deadline (kill + panic past it).
fn wait_within(mut child: Child, what: &str, secs: u64) -> Output {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return child.wait_with_output().expect("collect output"),
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let out = child.wait_with_output().expect("collect output");
                panic!(
                    "{what} still running after {secs}s:\n--- stderr ---\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({}):\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

fn read_outputs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    ["fig14.md", "fig14.csv", "fig14.json"]
        .iter()
        .map(|f| {
            let bytes = std::fs::read(dir.join("results").join(f))
                .unwrap_or_else(|e| panic!("{f} missing in {}: {e}", dir.display()));
            (f.to_string(), bytes)
        })
        .collect()
}

fn serial_reference(tag: &str) -> Vec<(String, Vec<u8>)> {
    let dir = scratch(&format!("{tag}-serial"));
    let out = figures_cmd(&dir)
        .arg("--fig14")
        .output()
        .expect("spawn figures");
    assert_ok(&out, "serial reference");
    let outs = read_outputs(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    outs
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join("results").join("partials").join("fabric.journal")
}

/// An agent killed -9 while its workers sit hung on leased jobs: the
/// coordinator forfeits the dead agent's leases, retries the jobs on
/// the surviving agent, and finishes byte-identical to serial.
#[cfg(unix)]
#[test]
fn agent_killed_mid_job_forfeits_leases_and_stays_bit_identical() {
    let serial = serial_reference("agentkill");
    let dir = scratch("agentkill");
    let hang_dir = scratch("agentkill-hang");
    let live_dir = scratch("agentkill-live");
    let addr = free_addr();

    let coord = spawn(
        figures_cmd(&dir)
            .args(["--fig14", "--serve", &addr, "--jobs", "1"])
            // The fallback must never race the agents in this test.
            .env("DCA_FABRIC_GRACE_MS", "60000"),
    );
    // The doomed agent connects first so it certainly holds leases; its
    // workers hang every job, so those leases can only be freed by the
    // kill below.
    let mut doomed = spawn(
        figures_cmd(&hang_dir)
            .args(["--agent", &addr, "--jobs", "2"])
            .env("DCA_FAULT_PLAN", "hang:*@*"),
    );
    std::thread::sleep(Duration::from_millis(800));
    let live = spawn(figures_cmd(&live_dir).args(["--agent", &addr, "--jobs", "2"]));
    std::thread::sleep(Duration::from_millis(700));
    doomed.kill().expect("kill -9 the hung agent");
    let _ = doomed.wait();

    let out = wait_within(coord, "coordinator", 120);
    assert_ok(&out, "coordinator");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("retrying job"),
        "the dead agent's leases must be forfeited into retries:\n{stderr}"
    );
    let out = wait_within(live, "surviving agent", 30);
    assert_ok(&out, "surviving agent");
    assert_eq!(serial, read_outputs(&dir), "output must match serial");
    assert!(
        !journal_path(&dir).exists(),
        "a clean finish must remove the journal"
    );
    for d in [dir, hang_dir, live_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// The coordinator killed -9 mid-sweep resumes exactly when restarted
/// on the same directory and address: journal replay restores attempt
/// counts and completions, the agent reconnects and answers
/// re-dispatches (from its local partials where it already finished),
/// and the final outputs are byte-identical to serial.
#[cfg(unix)]
#[test]
fn coordinator_killed_and_restarted_resumes_from_the_journal() {
    let serial = serial_reference("coordkill");
    let dir = scratch("coordkill");
    let agent_dir = scratch("coordkill-agent");
    let addr = free_addr();

    let mut coord = spawn(
        figures_cmd(&dir)
            .args(["--fig14", "--serve", &addr, "--jobs", "1"])
            .env("DCA_FABRIC_GRACE_MS", "60000"),
    );
    let agent = spawn(
        figures_cmd(&agent_dir)
            .args(["--agent", &addr, "--jobs", "1"])
            // The agent must outlive the coordinator gap below.
            .env("DCA_AGENT_RETRY_MS", "60000"),
    );

    // Kill the moment the journal records the first completion, so the
    // sweep is provably mid-flight (if the tiny sweep wins the race and
    // finishes first, the restart degenerates to a full-reuse resume,
    // which the assertions below still cover).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let text = std::fs::read_to_string(journal_path(&dir)).unwrap_or_default();
        if text.contains("\"ev\": \"complete\"") {
            break;
        }
        if coord.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no journal activity within 60s");
        std::thread::sleep(Duration::from_millis(2));
    }
    coord.kill().expect("kill -9 the coordinator");
    let _ = coord.wait();

    let restarted = spawn(
        figures_cmd(&dir)
            .args(["--fig14", "--serve", &addr, "--jobs", "1"])
            .env("DCA_FABRIC_GRACE_MS", "60000"),
    );
    let out = wait_within(restarted, "restarted coordinator", 120);
    assert_ok(&out, "restarted coordinator");
    let out = wait_within(agent, "agent", 30);
    assert_ok(&out, "agent across the restart");
    assert_eq!(
        serial,
        read_outputs(&dir),
        "resumed output must match serial"
    );
    assert!(
        !journal_path(&dir).exists(),
        "a clean finish must remove the journal"
    );
    for d in [dir, agent_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Network faults at upload time — a dropped connection, a torn frame,
/// and a frame whose digest trailer lies — are all rejected by the
/// verified transport, charged as ordinary attempts, and retried to a
/// byte-identical result. One rule per run: a connection kill from one
/// rule bumps other jobs' attempt indices (their forfeited leases
/// retry at attempt ≥ 1), so stacking first-attempt rules would let
/// one fault starve another's trigger window.
#[test]
fn network_faults_are_rejected_and_retried_to_identity() {
    let serial = serial_reference("netfault");
    for (mode, plan, expect) in [
        ("garbage-frame", "garbage-frame:al_*@0", "garbage frame"),
        ("torn", "torn:ev_*_rod_*@0", "torn frame"),
        ("drop", "drop:ev_*_dca_*@0", "disconnected"),
    ] {
        let dir = scratch(&format!("netfault-{mode}"));
        let agent_dir = scratch(&format!("netfault-{mode}-agent"));
        let addr = free_addr();

        let coord = spawn(
            figures_cmd(&dir)
                .args(["--fig14", "--serve", &addr, "--jobs", "1"])
                .env("DCA_FABRIC_GRACE_MS", "60000"),
        );
        let agent = spawn(
            figures_cmd(&agent_dir)
                .args(["--agent", &addr, "--jobs", "2"])
                // First attempt only — the re-dispatch carries a higher
                // attempt index, so the fault self-limits.
                .env("DCA_FAULT_PLAN", plan),
        );
        let out = wait_within(coord, "coordinator", 120);
        assert_ok(&out, &format!("coordinator under {mode}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(expect),
            "{mode} must be called out as {expect:?}:\n{stderr}"
        );
        assert!(
            stderr.contains("retrying job"),
            "a {mode} upload must turn into a retry:\n{stderr}"
        );
        let out = wait_within(agent, "agent", 30);
        assert_ok(&out, &format!("agent under {mode}"));
        assert_eq!(
            serial,
            read_outputs(&dir),
            "{mode} output must match serial"
        );
        for d in [dir, agent_dir] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }
}

/// With no agent connected, the coordinator waits `DCA_FABRIC_GRACE_MS`
/// and then runs the sweep on local workers — same outputs, exit 0, no
/// journal left behind. An agent whose scale disagrees with the
/// coordinator's is rejected at HELLO and exits 1 without poisoning
/// anything.
#[test]
fn zero_agents_falls_back_locally_and_scale_mismatch_is_rejected() {
    let serial = serial_reference("fallback");
    let dir = scratch("fallback");
    let addr = free_addr();

    let coord = spawn(
        figures_cmd(&dir)
            .args(["--fig14", "--serve", &addr, "--jobs", "2"])
            .env("DCA_FABRIC_GRACE_MS", "200"),
    );
    let out = wait_within(coord, "agentless coordinator", 120);
    assert_ok(&out, "agentless coordinator");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no live agents"),
        "the fallback must be announced:\n{stderr}"
    );
    assert_eq!(
        serial,
        read_outputs(&dir),
        "fallback output must match serial"
    );
    assert!(
        !journal_path(&dir).exists(),
        "a clean finish must remove the journal"
    );

    // Scale mismatch: a coordinator parked on an empty plan rejects an
    // agent whose HELLO config token disagrees.
    let dir2 = scratch("fallback-reject");
    let agent_dir = scratch("fallback-reject-agent");
    let addr2 = free_addr();
    let mut coord = spawn(
        figures_cmd(&dir2)
            .args(["--fig14", "--serve", &addr2, "--jobs", "1"])
            .env("DCA_FABRIC_GRACE_MS", "60000"),
    );
    let agent = spawn(
        figures_cmd(&agent_dir)
            .args(["--agent", &addr2, "--jobs", "1"])
            // Different DCA_INSTS → different config token.
            .env("DCA_INSTS", "4000"),
    );
    let out = wait_within(agent, "mismatched agent", 30);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a rejected agent must exit 1:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("rejected"),
        "the rejection must be announced:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    coord.kill().expect("kill the parked coordinator");
    let _ = coord.wait();
    for d in [dir, dir2, agent_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
