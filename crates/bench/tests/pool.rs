//! Fault-injection matrix for the persistent worker pool (`figures
//! --jobs N` + `--worker --serve`), driven through the real binary with
//! deterministic faults from `DCA_FAULT_PLAN`:
//!
//! - hang past the job deadline → worker killed, job retried,
//!   merged figures byte-identical to serial;
//! - garbage/truncated result frame → babbling worker killed, job
//!   retried, byte-identical;
//! - crash on every attempt → quarantine after K, exit 3, explicit
//!   holes in the figure, `quarantine.json` written — then a clean
//!   re-run heals and removes it;
//! - SIGTERM mid-run → graceful drain, exit 130, resumable;
//! - stale partials from a different plan are pruned, foreign files
//!   left alone.
//!
//! The crash-on-attempt-0-then-succeed leg of the matrix lives in
//! `tests/shard.rs` alongside the resume/corruption coverage.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

use dca_bench::shard::{figure_plan, plan_jobs, JobPayload, DEFAULT_CHUNK};
use dca_bench::Scale;

const FIGURES: &str = env!("CARGO_BIN_EXE_figures");

const INSTS: &str = "2000";
const WARMUP: &str = "5000";
const MIXES: &str = "1,2";

fn tiny_scale() -> Scale {
    Scale {
        insts: 2000,
        warmup: 5000,
        mixes: vec![1, 2],
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dca-pool-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn figures_cmd(dir: &Path) -> Command {
    let mut cmd = Command::new(FIGURES);
    cmd.current_dir(dir)
        .env("DCA_INSTS", INSTS)
        .env("DCA_WARMUP", WARMUP)
        .env("DCA_MIXES", MIXES)
        .env_remove("DCA_FULL")
        .env_remove("DCA_WARM")
        .env_remove("DCA_WARM_CAP")
        .env_remove("DCA_WARM_PERSIST")
        .env_remove("DCA_WARM_DIR")
        .env_remove("DCA_FAULT_PLAN")
        .env_remove("DCA_JOB_TIMEOUT_MS")
        .env_remove("DCA_JOB_ATTEMPTS")
        .env_remove("DCA_RETRY_BACKOFF_MS")
        .env_remove("DCA_HEARTBEAT_MS")
        .env_remove("DCA_HEARTBEAT_TIMEOUT_MS")
        .env_remove("DCA_POOL_INFLIGHT")
        .env_remove("DCA_FABRIC_GRACE_MS")
        .env_remove("DCA_AGENT_RETRY_MS");
    cmd
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn figures");
    assert!(
        out.status.success(),
        "figures failed ({}):\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read_outputs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    ["fig14.md", "fig14.csv", "fig14.json"]
        .iter()
        .map(|f| {
            let bytes = std::fs::read(dir.join("results").join(f))
                .unwrap_or_else(|e| panic!("{f} missing in {}: {e}", dir.display()));
            (f.to_string(), bytes)
        })
        .collect()
}

fn serial_reference(tag: &str) -> Vec<(String, Vec<u8>)> {
    let dir = scratch(&format!("{tag}-serial"));
    run_ok(figures_cmd(&dir).arg("--fig14"));
    let outs = read_outputs(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    outs
}

fn fig14_jobs() -> Vec<dca_bench::shard::Job> {
    let plan = figure_plan("fig14", &tiny_scale()).expect("fig14 plans");
    plan_jobs(std::slice::from_ref(&plan), DEFAULT_CHUNK)
}

fn alone_job_id() -> String {
    fig14_jobs()
        .iter()
        .find(|j| matches!(j.payload, JobPayload::Alone { .. }))
        .expect("an alone job")
        .id
        .clone()
}

/// A worker that hangs past the per-job deadline is killed (its
/// heartbeats keep arriving, so it is the *deadline*, not heartbeat
/// silence, that fires), the job retried, and the merged output stays
/// byte-identical to serial.
#[test]
fn hang_past_deadline_is_killed_retried_and_bit_identical() {
    let serial = serial_reference("hang");
    let victim = alone_job_id();
    let dir = scratch("hang");
    let out = run_ok(
        figures_cmd(&dir)
            .args(["--fig14", "--jobs", "2"])
            .env("DCA_FAULT_PLAN", format!("hang:{victim}@0"))
            // Far above a tiny-scale debug job (~0.3 s), far below the
            // test timeout.
            .env("DCA_JOB_TIMEOUT_MS", "5000"),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("job deadline") && stderr.contains("retrying") && stderr.contains(&victim),
        "hang must be caught by the job deadline and retried:\n{stderr}"
    );
    assert_eq!(serial, read_outputs(&dir), "output must match serial");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker that emits a truncated `OK` plus binary junk is a babbling
/// worker: killed and replaced, the job charged one attempt and retried,
/// output byte-identical.
#[test]
fn garbage_frame_kills_the_worker_and_stays_bit_identical() {
    let serial = serial_reference("garbage");
    let victim = alone_job_id();
    let dir = scratch("garbage");
    let out = run_ok(
        figures_cmd(&dir)
            .args(["--fig14", "--jobs", "2"])
            .env("DCA_FAULT_PLAN", format!("garbage:{victim}@0")),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("babbling"),
        "garbage frames must be reported as babbling:\n{stderr}"
    );
    assert!(
        stderr.contains("retrying") && stderr.contains(&victim),
        "the babbled job must be retried:\n{stderr}"
    );
    assert_eq!(serial, read_outputs(&dir), "output must match serial");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A job that fails on every attempt is quarantined after
/// `DCA_JOB_ATTEMPTS`: the run exits 3 (degraded), writes
/// `results/partials/quarantine.json` with the job id, attempt count,
/// and worker stderr, and renders the affected cells as explicit `—`
/// holes while every other cell keeps its exact serial value. A clean
/// re-run heals the figure and removes the quarantine file.
#[test]
fn quarantine_after_k_failures_then_heal() {
    let serial = serial_reference("quarantine");
    let rod_id = fig14_jobs()
        .iter()
        .find(|j| j.id.contains("_rod_"))
        .expect("a ROD eval job")
        .id
        .clone();

    let dir = scratch("quarantine");
    let out = figures_cmd(&dir)
        .args(["--fig14", "--jobs", "2"])
        .env("DCA_FAULT_PLAN", format!("crash:{rod_id}@*"))
        .output()
        .expect("spawn figures");
    assert_eq!(
        out.status.code(),
        Some(3),
        "a quarantined run must exit 3 (degraded):\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("quarantining job") && stderr.contains(&rod_id),
        "quarantine must be announced:\n{stderr}"
    );
    assert!(
        stderr.contains("rendered as holes"),
        "holes must be counted on stderr:\n{stderr}"
    );

    // quarantine.json names the job, the attempt budget, and carries
    // the worker's stderr for post-mortems.
    let qpath = dir.join(dca_bench::shard::quarantine_path());
    let qtext = std::fs::read_to_string(&qpath).expect("quarantine.json written");
    assert!(
        qtext.contains(&rod_id),
        "quarantine must name the job:\n{qtext}"
    );
    assert!(
        qtext.contains("\"attempts\": 3"),
        "quarantine must record the attempt budget:\n{qtext}"
    );
    assert!(
        qtext.contains("\"stderr\""),
        "quarantine must carry worker stderr:\n{qtext}"
    );

    // The ROD row is an explicit hole; CD and DCA keep real values.
    let md = std::fs::read_to_string(dir.join("results").join("fig14.md")).expect("fig14.md");
    for line in md.lines().filter(|l| l.starts_with('|')) {
        if line.contains("ROD") {
            assert!(line.contains('—'), "ROD cells must be holes: {line}");
        } else if line.contains("CD") || line.contains("DCA") {
            assert!(
                !line.contains('—'),
                "healthy cells must keep values: {line}"
            );
        }
    }

    // Heal: without the fault plan the one missing job re-runs, the
    // quarantine file disappears, and the figures converge to serial.
    let out = run_ok(figures_cmd(&dir).args(["--fig14", "--jobs", "2"]));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let reused = format!("{} reused", fig14_jobs().len() - 1);
    assert!(
        stderr.contains("1 jobs run") && stderr.contains(&reused),
        "heal must run exactly the quarantined job:\n{stderr}"
    );
    assert!(
        !qpath.exists(),
        "a clean run must remove the stale quarantine file"
    );
    assert_eq!(
        serial,
        read_outputs(&dir),
        "healed output must match serial"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A quarantine record must survive *unrelated* pool sessions in the
/// same directory (a clean fig15 run must not clobber fig14's entry —
/// its jobs are disjoint, so nothing about the broken job changed) and
/// must be pruned the moment the job has a valid partial again: the
/// heal-merge keys on on-disk evidence, not on which figure a session
/// happened to run.
#[test]
fn quarantine_entries_survive_foreign_sessions_until_healed() {
    let serial = serial_reference("qforeign");
    let rod_id = fig14_jobs()
        .iter()
        .find(|j| j.id.contains("_rod_"))
        .expect("a ROD eval job")
        .id
        .clone();

    // 1. Break fig14's ROD job on every attempt → quarantined, exit 3.
    let dir = scratch("qforeign");
    let out = figures_cmd(&dir)
        .args(["--fig14", "--jobs", "2"])
        .env("DCA_FAULT_PLAN", format!("crash:{rod_id}@*"))
        .output()
        .expect("spawn figures");
    assert_eq!(
        out.status.code(),
        Some(3),
        "the broken run must exit 3:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let qpath = dir.join(dca_bench::shard::quarantine_path());
    assert!(
        std::fs::read_to_string(&qpath)
            .expect("quarantine written")
            .contains(&rod_id),
        "quarantine must name the broken job"
    );

    // 2. A clean *fig15* session (direct-mapped — fully disjoint jobs)
    // exits 0 and must leave fig14's still-unhealed entry in place.
    run_ok(figures_cmd(&dir).args(["--fig15", "--jobs", "2"]));
    assert!(
        std::fs::read_to_string(&qpath)
            .expect("quarantine must survive the fig15 session")
            .contains(&rod_id),
        "an unrelated session must not clobber the unhealed entry"
    );

    // 3. A clean fig14 run produces a valid partial for the job; the
    // stale entry is pruned, the file removed, the figure healed.
    run_ok(figures_cmd(&dir).args(["--fig14", "--jobs", "2"]));
    assert!(!qpath.exists(), "a healed quarantine file must be removed");
    assert_eq!(
        serial,
        read_outputs(&dir),
        "healed output must match serial"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM mid-run drains gracefully: no new jobs are dispatched,
/// in-flight work is resolved, partials are flushed, and the process
/// exits 130; re-running the same command resumes from the flushed
/// partials and converges to the serial output.
#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_and_resumes() {
    let serial = serial_reference("drain");
    let dir = scratch("drain");
    // Hang every alone job forever (alone jobs are dispatched first),
    // with a short deadline so the drain resolves the stuck in-flight
    // job quickly after the signal lands.
    let mut child = figures_cmd(&dir)
        .args(["--fig14", "--jobs", "2"])
        .env("DCA_FAULT_PLAN", "hang:al_*@*")
        .env("DCA_JOB_TIMEOUT_MS", "2500")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn figures");
    // Let the pool start and dispatch the hanging job, then interrupt.
    std::thread::sleep(Duration::from_millis(1000));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM must succeed");

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(s) = child.try_wait().expect("try_wait") {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "drain must finish well before 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let out = child.wait_with_output().expect("collect output");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        status.code(),
        Some(130),
        "a drained run must exit 130:\n{stderr}"
    );
    assert!(
        stderr.contains("stop requested") && stderr.contains("re-run the same command to resume"),
        "the drain must be announced:\n{stderr}"
    );

    // Resume without the fault plan: whatever flushed is reused, the
    // rest runs, and the result is byte-identical to serial.
    run_ok(figures_cmd(&dir).args(["--fig14", "--jobs", "2"]));
    assert_eq!(
        serial,
        read_outputs(&dir),
        "resumed output must match serial"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Partials left by a *different* plan (another figure, scale, or
/// chunking) are pruned before the pool starts, with a count on stderr;
/// files that are not job partials are left alone.
#[test]
fn orphan_partials_are_pruned_and_foreign_files_kept() {
    let serial = serial_reference("prune");
    let dir = scratch("prune");
    let partials = dir.join("results").join("partials");
    std::fs::create_dir_all(&partials).expect("partials dir");

    // A syntactically valid job id from a plan the current invocation
    // does not include → orphan, must be pruned.
    let fig12 = figure_plan("fig12", &tiny_scale()).expect("fig12 plans");
    let foreign_job = plan_jobs(std::slice::from_ref(&fig12), DEFAULT_CHUNK)
        .iter()
        .map(|j| j.id.clone())
        .find(|id| fig14_jobs().iter().all(|j| j.id != *id))
        .expect("a fig12-only job id");
    let orphan = partials.join(format!("{foreign_job}.json"));
    std::fs::write(&orphan, b"{}").expect("plant orphan");
    // Not a job partial at all → must survive untouched.
    let notes = partials.join("notes.txt");
    std::fs::write(&notes, b"keep me").expect("plant notes");

    let out = run_ok(figures_cmd(&dir).args(["--fig14", "--jobs", "2"]));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("pruned 1 orphan partial(s)"),
        "the orphan count must be logged:\n{stderr}"
    );
    assert!(!orphan.exists(), "the stale partial must be removed");
    assert_eq!(
        std::fs::read(&notes).expect("notes survive"),
        b"keep me",
        "foreign files must not be touched"
    );
    assert_eq!(serial, read_outputs(&dir), "output must match serial");
    let _ = std::fs::remove_dir_all(&dir);
}
