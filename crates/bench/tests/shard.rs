//! End-to-end tests of the process-sharded figure harness: the
//! `figures` binary is driven as a real subprocess (supervisor plus
//! persistent pool workers) against scratch working directories, and
//! its sharded output is compared byte-for-byte to the serial path.
//! Fault injection is deterministic via `DCA_FAULT_PLAN` (see
//! `dca_bench::shard::pool`); the full failure matrix lives in
//! `tests/pool.rs`. Also covers the bench front-end behaviours:
//! unknown flags exit 2 with a usage listing, an unwritable `results/`
//! is a reported error, and malformed `DCA_WARM*` knobs warn instead
//! of silently falling back.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use dca_bench::shard::{figure_plan, plan_jobs, JobPayload, DEFAULT_CHUNK};
use dca_bench::Scale;

const FIGURES: &str = env!("CARGO_BIN_EXE_figures");

/// The tiny scale every subprocess in this file runs at. Small enough
/// for debug-mode CI, big enough that the three designs diverge.
const INSTS: &str = "2000";
const WARMUP: &str = "5000";
const MIXES: &str = "1,2";

fn tiny_scale() -> Scale {
    Scale {
        insts: 2000,
        warmup: 5000,
        mixes: vec![1, 2],
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dca-shard-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn figures_cmd(dir: &Path) -> Command {
    let mut cmd = Command::new(FIGURES);
    cmd.current_dir(dir)
        .env("DCA_INSTS", INSTS)
        .env("DCA_WARMUP", WARMUP)
        .env("DCA_MIXES", MIXES)
        .env_remove("DCA_FULL")
        .env_remove("DCA_WARM")
        .env_remove("DCA_WARM_CAP")
        .env_remove("DCA_WARM_PERSIST")
        .env_remove("DCA_WARM_DIR")
        .env_remove("DCA_FAULT_PLAN")
        .env_remove("DCA_JOB_TIMEOUT_MS")
        .env_remove("DCA_JOB_ATTEMPTS")
        .env_remove("DCA_RETRY_BACKOFF_MS")
        .env_remove("DCA_HEARTBEAT_MS")
        .env_remove("DCA_HEARTBEAT_TIMEOUT_MS")
        .env_remove("DCA_POOL_INFLIGHT");
    cmd
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn figures");
    assert!(
        out.status.success(),
        "figures failed ({}):\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read_outputs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    ["fig14.md", "fig14.csv", "fig14.json"]
        .iter()
        .map(|f| {
            let bytes = std::fs::read(dir.join("results").join(f))
                .unwrap_or_else(|e| panic!("{f} missing in {}: {e}", dir.display()));
            (f.to_string(), bytes)
        })
        .collect()
}

/// The tentpole guarantee: a `--jobs 2` pool run produces byte-identical
/// figure files to the serial in-process run, an injected worker crash
/// is retried and reported, and a re-run against the surviving partials
/// reuses them all (crash-safe resume).
#[test]
fn sharded_run_is_bit_identical_retries_crashes_and_resumes() {
    // Serial reference.
    let serial_dir = scratch("serial");
    run_ok(figures_cmd(&serial_dir).arg("--fig14"));
    let serial = read_outputs(&serial_dir);

    // Pick a real eval job id to crash, from the same plan the binary
    // derives (same scale → same ids).
    let plan = figure_plan("fig14", &tiny_scale()).expect("fig14 is shardable");
    let jobs = plan_jobs(std::slice::from_ref(&plan), DEFAULT_CHUNK);
    let crash_id = jobs
        .iter()
        .find(|j| matches!(j.payload, JobPayload::Eval { .. }))
        .expect("an eval job")
        .id
        .clone();

    // Pool run with one injected worker crash (first attempt only).
    let shard_dir = scratch("jobs2");
    let out = run_ok(
        figures_cmd(&shard_dir)
            .args(["--fig14", "--jobs", "2"])
            .env("DCA_FAULT_PLAN", format!("crash:{crash_id}@0")),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("retrying") && stderr.contains(&crash_id),
        "supervisor must report the retried job:\n{stderr}"
    );
    assert!(
        stderr.contains("1 retried"),
        "exactly one retry expected:\n{stderr}"
    );
    assert_eq!(
        serial,
        read_outputs(&shard_dir),
        "sharded figure files must be byte-identical to serial"
    );

    // Crash-safe resume: every partial survived, so a second sharded
    // run executes zero jobs and still renders identical files.
    let out = run_ok(figures_cmd(&shard_dir).args(["--fig14", "--jobs", "2"]));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("0 jobs run") && stderr.contains(&format!("{} reused", jobs.len())),
        "resume must reuse all {} partials:\n{stderr}",
        jobs.len()
    );
    assert_eq!(serial, read_outputs(&shard_dir));

    // A corrupted partial is detected, re-run, and heals.
    let victim = dca_bench::shard::partial_path(&crash_id);
    let victim = shard_dir.join(victim);
    std::fs::write(&victim, b"{\"schema\": 1, \"job\": \"torn").expect("corrupt partial");
    let out = run_ok(figures_cmd(&shard_dir).args(["--fig14", "--jobs", "2"]));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ignoring invalid partial") && stderr.contains("1 jobs run"),
        "corrupt partial must be re-run:\n{stderr}"
    );
    assert_eq!(serial, read_outputs(&shard_dir));

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&shard_dir);
}

/// Satellite bugfix: unknown flags exit 2 with a usage listing instead
/// of silently producing nothing. `--batch` died with the spawn-per-
/// batch coordinator; `--serve` outside `--worker` is a usage error.
#[test]
fn unknown_flags_exit_2_with_usage() {
    for bad in [
        &["--fig99"][..],
        &["--figs"],
        &["--jobs", "zero"],
        &["--fig14=2"],
        &["--all=x"],
        &["--batch", "3"],
        &["--serve"],
        &["--worker", "--serve", "--job", "x"],
        &["--worker"],
        &["--job", "x"],
    ] {
        let dir = scratch("badflag");
        let out = figures_cmd(&dir).args(bad).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bad:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("usage: figures"),
            "{bad:?} must print usage:\n{stderr}"
        );
        assert!(
            std::fs::read_dir(dir.join("results")).is_err(),
            "a rejected invocation must not create outputs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite bugfix: when `results/` cannot be created, the run fails
/// loudly instead of writing nothing and exiting 0.
#[test]
fn unwritable_results_dir_is_a_reported_error() {
    let dir = scratch("noresults");
    // A plain file where the directory must go.
    std::fs::write(dir.join("results"), b"in the way").expect("block results/");
    let out = figures_cmd(&dir).arg("--table1").output().expect("spawn");
    assert!(!out.status.success(), "must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot create results/"),
        "failure must be reported:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite bugfix: malformed `DCA_WARM*` knobs warn (naming the
/// value and the fallback) instead of silently using defaults.
#[test]
fn malformed_warm_knobs_warn_on_stderr() {
    let dir = scratch("knobs");
    let out = run_ok(
        figures_cmd(&dir)
            .arg("--table1")
            .env("DCA_WARM_CAP", "abc")
            .env("DCA_WARM_PERSIST", "yes")
            .env("DCA_WARM", "2"),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("DCA_WARM_CAP=\"abc\" is not an integer"),
        "cap warning missing:\n{stderr}"
    );
    assert!(
        stderr.contains("DCA_WARM_PERSIST=\"yes\""),
        "persist warning missing:\n{stderr}"
    );
    assert!(
        stderr.contains("DCA_WARM=\"2\""),
        "reuse warning missing:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // And a zero cap warns about positivity.
    let dir = scratch("knobs0");
    let out = run_ok(figures_cmd(&dir).arg("--table1").env("DCA_WARM_CAP", "0"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("DCA_WARM_CAP=\"0\" must be a positive integer"),
        "zero-cap warning missing:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One worker invocation can drain several jobs (`--job a --job b ...`),
/// writing one valid partial per job — the one-shot CLI the pool does
/// not use but humans re-running a job by hand do.
#[test]
fn batched_workers_drain_multiple_jobs() {
    let plan = figure_plan("fig14", &tiny_scale()).expect("plan");
    let jobs = plan_jobs(std::slice::from_ref(&plan), DEFAULT_CHUNK);
    assert!(jobs.len() >= 2, "need at least two jobs to batch");
    let hand_dir = scratch("batch-hand");
    run_ok(figures_cmd(&hand_dir).args(["--worker", "--job", &jobs[0].id, "--job", &jobs[1].id]));
    for job in &jobs[..2] {
        let text = std::fs::read_to_string(hand_dir.join(dca_bench::shard::partial_path(&job.id)))
            .unwrap_or_else(|e| panic!("batched worker must write {}: {e}", job.id));
        dca_bench::shard::decode_partial(&text, job).expect("partial validates");
    }
    let _ = std::fs::remove_dir_all(&hand_dir);
}

/// The worker CLI is self-contained: a job id re-run by hand produces
/// a partial the supervisor would accept.
#[test]
fn worker_mode_writes_a_valid_partial() {
    let dir = scratch("worker");
    let plan = figure_plan("fig14", &tiny_scale()).expect("plan");
    let job = plan_jobs(std::slice::from_ref(&plan), DEFAULT_CHUNK)
        .into_iter()
        .find(|j| matches!(j.payload, JobPayload::Alone { .. }))
        .expect("an alone job");
    run_ok(figures_cmd(&dir).args(["--worker", "--job", &job.id]));
    let text = std::fs::read_to_string(dir.join(dca_bench::shard::partial_path(&job.id)))
        .expect("partial written");
    dca_bench::shard::decode_partial(&text, &job).expect("partial validates");
    // Worker mode with a malformed id fails cleanly.
    let out = figures_cmd(&dir)
        .args(["--worker", "--job", "ev_bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
