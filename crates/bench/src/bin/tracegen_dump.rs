//! `tracegen-dump` — capture a synthetic generator's op stream as a
//! replayable `.dcat` trace file.
//!
//! The trace front-end's self-testing loop: dump a Table I benchmark's
//! deterministic stream to disk, register the file back through
//! `dca_cpu::register_trace_file`, and the replayed workload exercises
//! the exact byte path a real application trace would. Also how the
//! checked-in CI fixture under `tests/fixtures/` was produced.
//!
//! ```text
//! cargo run -p dca-bench --bin tracegen-dump -- <bench> <ops> <out.dcat> \
//!     [--seed N] [--absolute]
//! ```
//!
//! * `<bench>` — a Table I benchmark name (`mcf`, `libquantum`, …).
//! * `<ops>` — number of memory operations to capture.
//! * `<out.dcat>` — output path.
//! * `--seed N` — generator seed (default 42).
//! * `--absolute` — absolute varint addresses instead of the default
//!   delta encoding (larger, but simpler to post-process).

use dca_cpu::{dump_synthetic, encode_trace, Benchmark, TraceEncoding};

fn usage() -> ! {
    eprintln!(
        "usage: tracegen-dump <bench> <ops> <out.dcat> [--seed N] [--absolute]\n\
         benches: {}",
        Benchmark::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let Some(bench) = Benchmark::from_name(&args[0]) else {
        eprintln!("unknown benchmark '{}'", args[0]);
        usage();
    };
    if bench.is_trace() {
        eprintln!("'{}' is already a trace workload", args[0]);
        std::process::exit(2);
    }
    let Ok(ops) = args[1].parse::<u64>() else {
        usage();
    };
    if ops == 0 {
        eprintln!("a trace must hold at least one record");
        std::process::exit(2);
    }
    let out = &args[2];
    let mut seed = 42u64;
    let mut encoding = TraceEncoding::Delta;
    let mut rest = args[3..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--seed" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            "--absolute" => encoding = TraceEncoding::Absolute,
            _ => usage(),
        }
    }

    let records = dump_synthetic(bench, ops, seed);
    let bytes = encode_trace(&records, encoding);
    let stores = records.iter().filter(|r| r.is_store).count();
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out}: {} records ({} loads, {stores} stores) from {} seed {seed}, \
         {} bytes ({:.2} B/record, {:?})",
        records.len(),
        records.len() - stores,
        bench.name(),
        bytes.len(),
        bytes.len() as f64 / records.len() as f64,
        encoding,
    );
}
