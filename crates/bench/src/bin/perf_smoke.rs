//! Engine + sweep throughput smoke test.
//!
//! Runs the quickstart workload (Table I mix 1 under DCA, direct-mapped)
//! through every event engine — the calendar queue, the baseline heap,
//! the density-adaptive calendar queue, and the domain-sharded merge at
//! two shards — reports simulated-cycles/sec and events/sec for each,
//! **fails on any fingerprint divergence from the heap engine**, and
//! writes the numbers to `BENCH_engine.json` so every PR leaves a perf
//! trajectory.
//!
//! Two engine-specific sections accompany the head-to-head:
//!
//! * `engine_adaptive` — raw-queue microbenches (uniform / clustered /
//!   bursty arrivals; fixed shift vs adaptive vs heap) plus the
//!   adaptive engine's system-level wall clock.
//! * `sharded` — the honest parallel story. The *system-level* sharded
//!   engine is merge-bound by design (cross-domain events carry zero
//!   lookahead and handlers share one uncore, so its number reports the
//!   partition/merge overhead floor, typically < 1.0x). The wall-clock
//!   *win* comes from `dca_sim_core::shardloop` on a long-run
//!   domain-decoupled workload (positive lookahead): sequential vs 2
//!   and 4 worker threads, bit-identity asserted, with a deliberately
//!   tiny `short` config documenting the crossover regime where
//!   synchronization overhead dominates and parallelism loses.
//!
//! Construction (functional cache warm-up) is timed separately from the
//! event loop: the engine overhaul targets the loop, and warm-up noise
//! would otherwise swamp the signal.
//!
//! It then measures the *sweep* pattern the figure harness runs — every
//! controller design × bank mapping on one mix — cold (each variant
//! warms its own caches) vs. warm-cached (one [`System::capture_warm`]
//! checkpoint shared by every variant via [`System::from_warm`]),
//! asserts the checkpoint-restored reports are bit-for-bit identical to
//! the cold ones, and records `{cold_s, warm_s, speedup}` in the JSON's
//! `sweep` section. CI runs this binary, so a divergence — or a warm
//! path that comes out *slower* than cold — fails the build. (The
//! measured margin is ~1.6x; the hard assert is only `> 1.0` so wall-
//! clock noise on shared CI runners cannot flake the gate. The JSON
//! carries the real ratio for trajectory tracking.)
//!
//! It also runs the **shard smoke**: a tiny two-mix figure session
//! once serially and once through the persistent worker pool
//! (`--jobs 2`, supervisor + `--worker --serve` subprocesses), in
//! separate scratch directories, asserting every rendered
//! `results/fig*.{md,json,csv}` file is **byte-identical** between the
//! two modes and recording the wall clocks in the JSON's `shard`
//! section. CI runs this binary, so any pool/serial divergence fails
//! the build.
//!
//! Two shard numbers are recorded. `fresh_speedup` is a single cold
//! `--fig14` head-to-head — on a single-core host the pool *cannot*
//! win this (same work plus process overhead), so it is reported, not
//! asserted. The asserted `speedup` is the **incremental session**:
//! `--fig14` followed by `--fig12` in the same directory. The serial
//! path recomputes the fig14 work inside fig12; the pool reuses the
//! flushed fig14 partials and runs only the fig12-only jobs, so the
//! session ratio must clear 1.0 on any host or resume-from-partials
//! has regressed.
//!
//! It also runs the **main-memory smoke**: the same workload on the
//! flat (seed) backend and on the cycle-level DDR4 backend, recording
//! both wall clocks in the JSON's `main_mem` section and asserting the
//! cycle backend completes and restores from a warm checkpoint
//! bit-for-bit. CI runs this binary, so the cycle-level device is
//! exercised on every push.
//!
//! It also runs the **designs smoke**: the Banshee-style fourth design
//! and the 3DXPoint slow-memory backend, each against the DCA
//! reference — asserting Banshee's frequency gate actually bypasses
//! fills (and that it restores from a warm checkpoint bit-for-bit,
//! warm state being design-portable), and recording the fill-traffic
//! reduction and wall clocks in the JSON's `designs` section.
//!
//! Finally it runs the **trace-file smoke**: the checked-in
//! `tests/fixtures/*.dcat` fixture is registered, bundled into a
//! custom mix, and driven through the same `RunSpec::run_mix`
//! warm-cached harness path the figure binaries use — once warm-cached
//! and once cold — asserting the two reports are bit-for-bit
//! identical. A regression anywhere on the trace front-end (format,
//! registry, replay, warm-state participation) fails CI here.
//!
//! ```text
//! cargo run --release -p dca-bench --bin perf_smoke
//! ```
//!
//! Environment:
//! * `DCA_PERF_INSTS` — instructions per core (default 200 000).
//! * `DCA_PERF_REPS` — timed repetitions per engine (default 3; the
//!   fastest rep is reported, standard practice for wall-clock benches).
//! * `DCA_PERF_SWEEP_REPS` — repetitions per sweep flavour (default 2).
//! * `DCA_PERF_OUT` — output path (default `BENCH_engine.json`).

use std::time::Instant;

use dca::{Design, EngineSel, System, SystemConfig, SystemReport};
use dca_bench::{MainMemKind, RunSpec};
use dca_cpu::{mix, register_mix, register_trace_file, Benchmark};
use dca_dram_cache::{OrgKind, ReplacementPolicy};
use dca_sim_core::{
    events::SLOT_SHIFT, BaselineEventQueue, Duration, EventQueue, Outbox, ShardConfig, ShardSim,
    SimTime,
};

/// Event-loop wall time of the hash-map/`Vec::remove` engine this PR
/// replaced, measured on the same workload (200 k insts/core, 3-rep
/// best) by building the pre-overhaul sources against the same
/// manifests. Kept as a reference point in `BENCH_engine.json`; see the
/// PR that introduced this file for methodology.
const PRE_OVERHAUL_RUN_LOOP_MS: f64 = 465.1;

/// One engine's measured throughput.
struct EngineResult {
    label: &'static str,
    /// Simulated CPU cycles per wall-clock second of event loop (best rep).
    cycles_per_sec: f64,
    /// Engine events delivered per wall-clock second (best rep).
    events_per_sec: f64,
    /// Event-loop wall-clock seconds of the best rep.
    run_s: f64,
    /// Construction + warm-up seconds of the best rep (engine-independent).
    build_s: f64,
    /// The report (for cross-engine equality checking).
    report: SystemReport,
}

fn run_engine(label: &'static str, engine: EngineSel, insts: u64, reps: u32) -> EngineResult {
    let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
    cfg.target_insts = insts;
    cfg.warmup_ops = 400_000;
    cfg.engine = engine;
    let m = mix(1);

    let mut best_run = f64::INFINITY;
    let mut best_build = f64::INFINITY;
    let mut best: Option<SystemReport> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let sys = System::new(cfg, &m.benches);
        let t1 = Instant::now();
        let report = sys.run();
        let run = t1.elapsed().as_secs_f64();
        best_build = best_build.min((t1 - t0).as_secs_f64());
        if run < best_run {
            best_run = run;
            best = Some(report);
        }
    }
    let report = best.expect("at least one rep");
    let sim_cycles = report.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
    EngineResult {
        label,
        cycles_per_sec: sim_cycles as f64 / best_run,
        events_per_sec: report.events_processed as f64 / best_run,
        run_s: best_run,
        build_s: best_build,
        report,
    }
}

/// Fingerprint for cross-engine equality (mirrors tests/determinism.rs).
fn fingerprint(r: &SystemReport) -> Vec<u64> {
    let mut v = vec![
        r.end_time.ps(),
        r.mem_reads,
        r.mem_writes,
        r.writeback_requests,
        r.refill_requests,
        r.cache_read_hits,
        r.cache_read_misses,
        r.events_processed,
    ];
    for c in &r.cores {
        v.push(c.insts);
        v.push(c.cycles);
    }
    for ch in &r.channels {
        v.push(ch.reads);
        v.push(ch.writes);
        v.push(ch.turnarounds);
    }
    v
}

/// Outcome of the cold-vs-warm-cached sweep measurement.
struct SweepResult {
    /// Design/remap variants swept.
    variants: usize,
    /// Best cold wall-clock (every variant warms its own caches).
    cold_s: f64,
    /// Best warm-cached wall-clock (one checkpoint, shared).
    warm_s: f64,
}

impl SweepResult {
    fn speedup(&self) -> f64 {
        self.cold_s / self.warm_s
    }
}

/// The figure-harness sweep unit: every design × bank mapping on the
/// quickstart mix, direct-mapped, identical `(warmup, seed)` — exactly
/// the set of runs that can legally share one functional warm-up.
fn sweep_configs(insts: u64) -> Vec<SystemConfig> {
    let mut cfgs = Vec::new();
    for remap in [false, true] {
        for design in Design::ALL {
            let mut cfg = if remap {
                SystemConfig::paper_remap(design, OrgKind::DirectMapped)
            } else {
                SystemConfig::paper(design, OrgKind::DirectMapped)
            };
            cfg.target_insts = insts;
            cfg.warmup_ops = 400_000;
            cfgs.push(cfg);
        }
    }
    cfgs
}

/// Measure the sweep cold and warm-cached, asserting bit-for-bit
/// identical reports between the two flavours for every variant.
fn run_sweep(insts: u64, reps: u32) -> SweepResult {
    let m = mix(1);
    let cfgs = sweep_configs(insts);

    let mut cold_s = f64::INFINITY;
    let mut cold_reports: Option<Vec<SystemReport>> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let reports: Vec<SystemReport> = cfgs
            .iter()
            .map(|&cfg| System::new(cfg, &m.benches).run())
            .collect();
        let dt = t0.elapsed().as_secs_f64();
        if dt < cold_s {
            cold_s = dt;
            cold_reports = Some(reports);
        }
    }

    let mut warm_s = f64::INFINITY;
    let mut warm_reports: Option<Vec<SystemReport>> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        // One warm-up for the whole sweep; the capture is part of the
        // honest warm-flavour cost.
        let warm = System::capture_warm(cfgs[0], &m.benches);
        let reports: Vec<SystemReport> = cfgs
            .iter()
            .map(|&cfg| System::from_warm(cfg, &m.benches, &warm).run())
            .collect();
        let dt = t0.elapsed().as_secs_f64();
        if dt < warm_s {
            warm_s = dt;
            warm_reports = Some(reports);
        }
    }

    let cold_reports = cold_reports.expect("at least one cold rep");
    let warm_reports = warm_reports.expect("at least one warm rep");
    for (i, (c, w)) in cold_reports.iter().zip(&warm_reports).enumerate() {
        assert_eq!(
            fingerprint(c),
            fingerprint(w),
            "checkpoint-restored sweep variant {i} diverged from cold"
        );
    }

    let sweep = SweepResult {
        variants: cfgs.len(),
        cold_s,
        warm_s,
    };
    // Warm-cached strictly skips work (5 of 6 warm-ups here); if it is
    // not even break-even, checkpoint restore has regressed into
    // overhead and the build should say so.
    assert!(
        sweep.speedup() > 1.0,
        "warm-cached sweep slower than cold ({:.2}s vs {:.2}s)",
        sweep.warm_s,
        sweep.cold_s
    );
    sweep
}

/// The checked-in trace fixture (resolved relative to this crate, so
/// the smoke runs from any working directory).
const TRACE_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/libquantum_2800.dcat"
);

/// Outcome of the trace-driven smoke config.
struct TraceSmokeResult {
    /// Mix id assigned to the registered trace mix.
    mix_id: u32,
    /// Wall-clock of the first `run_mix` (cache miss: warms once and
    /// populates the warm cache).
    build_s: f64,
    /// Wall-clock of the second `run_mix` (the actual warm-cache hit).
    warm_s: f64,
    /// Cold wall-clock (fresh warm-up, no cache).
    cold_s: f64,
}

/// Register the fixture trace, run it through the real harness path
/// (`RunSpec::run_mix`, global warm cache) and assert the warm-cached
/// reports — both the cache-populating first run and the cache-hit
/// second run — are bit-for-bit identical to a cold one.
fn run_trace_smoke(insts: u64) -> TraceSmokeResult {
    let trace = register_trace_file(TRACE_FIXTURE)
        .unwrap_or_else(|e| panic!("cannot register {TRACE_FIXTURE}: {e}"));
    let m = register_mix([trace, Benchmark::Mcf, Benchmark::Gcc, trace]);
    let spec = RunSpec {
        design: Design::Dca,
        org: OrgKind::DirectMapped,
        remap: false,
        lee: false,
        flushing_factor: 4,
        policy: ReplacementPolicy::Srrip,
        main_mem: MainMemKind::Flat,
        engine: EngineSel::Calendar,
        insts: insts / 2,
        warmup: 200_000,
        seed: 0xDCA_2016,
    };
    let t0 = Instant::now();
    let first = spec.run_mix(m.id);
    let build_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm = spec.run_mix(m.id);
    let warm_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let cold = spec.run_mix_cold(m.id);
    let cold_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        fingerprint(&first),
        fingerprint(&cold),
        "trace-driven cache-populating run diverged from cold"
    );
    assert_eq!(
        fingerprint(&warm),
        fingerprint(&cold),
        "trace-driven warm-cached run diverged from cold"
    );
    assert!(
        warm.cores.iter().all(|c| c.insts >= insts / 2),
        "trace-driven cores must reach their budget"
    );
    TraceSmokeResult {
        mix_id: m.id,
        build_s,
        warm_s,
        cold_s,
    }
}

/// Outcome of the serial-vs-pool figure smoke.
struct ShardSmokeResult {
    /// Worker subprocesses in the pool flavours.
    jobs: u32,
    /// CPU cores on the measuring host (a 1-core host cannot show a
    /// fresh pool win; the session number is the portable one).
    host_cores: usize,
    /// Fresh serial `--fig14` wall clock.
    serial_s: f64,
    /// Fresh pool `--fig14 --jobs 2` wall clock.
    pool_s: f64,
    /// Serial incremental session: fresh `--fig14` + `--fig12`.
    session_serial_s: f64,
    /// Pool incremental session: fresh `--fig14` + `--fig12`, the
    /// second run reusing the first run's flushed partials.
    session_pool_s: f64,
}

impl ShardSmokeResult {
    fn fresh_speedup(&self) -> f64 {
        self.serial_s / self.pool_s
    }
    fn session_speedup(&self) -> f64 {
        self.session_serial_s / self.session_pool_s
    }
}

/// Run the `--fig14` + `--fig12` session serially and through the
/// persistent pool (`--jobs 2`), in separate scratch directories, and
/// assert every rendered figure file is byte-identical between the two
/// modes. The first run of each session doubles as the fresh `--fig14`
/// head-to-head. Best of `reps` sessions per flavour.
fn run_shard_smoke(reps: u32) -> ShardSmokeResult {
    use std::path::PathBuf;
    use std::process::Command;

    let exe = std::env::current_exe().expect("current exe");
    let figures = exe.with_file_name("figures");
    assert!(
        figures.exists(),
        "figures binary not found next to perf_smoke ({}); build the workspace first",
        figures.display()
    );
    let scratch = |tag: &str| -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dca-shard-smoke-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    };
    let run = |dir: &PathBuf, fig: &str, pool: bool| -> f64 {
        let t0 = Instant::now();
        // The child's tables are byte-compared below, not read by a
        // human here — keep them off perf_smoke's own report.
        let mut cmd = Command::new(&figures);
        cmd.arg(fig);
        if pool {
            cmd.args(["--jobs", "2"]);
        }
        let status = cmd
            .current_dir(dir)
            .env("DCA_MIXES", "1,2")
            .env("DCA_INSTS", "20000")
            .env("DCA_WARMUP", "60000")
            .env_remove("DCA_FULL")
            .env_remove("DCA_FAULT_PLAN")
            .env_remove("DCA_POOL_INFLIGHT")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn figures");
        assert!(
            status.success(),
            "figures {fig} (pool={pool}) failed with {status}"
        );
        t0.elapsed().as_secs_f64()
    };

    let serial_dir = scratch("serial");
    let pool_dir = scratch("pool");
    let mut best = ShardSmokeResult {
        jobs: 2,
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        serial_s: f64::INFINITY,
        pool_s: f64::INFINITY,
        session_serial_s: f64::INFINITY,
        session_pool_s: f64::INFINITY,
    };
    for _ in 0..reps.max(1) {
        // Fresh sessions: wipe the partials the previous rep flushed so
        // every rep pays the full fig14 cost again.
        for dir in [&serial_dir, &pool_dir] {
            let _ = std::fs::remove_dir_all(dir.join("results"));
        }
        let serial_fig14 = run(&serial_dir, "--fig14", false);
        let serial_fig12 = run(&serial_dir, "--fig12", false);
        let pool_fig14 = run(&pool_dir, "--fig14", true);
        let pool_fig12 = run(&pool_dir, "--fig12", true);
        best.serial_s = best.serial_s.min(serial_fig14);
        best.pool_s = best.pool_s.min(pool_fig14);
        best.session_serial_s = best.session_serial_s.min(serial_fig14 + serial_fig12);
        best.session_pool_s = best.session_pool_s.min(pool_fig14 + pool_fig12);
    }

    for fig in ["fig14", "fig12"] {
        for ext in ["md", "json", "csv"] {
            let file = format!("{fig}.{ext}");
            let a = std::fs::read(serial_dir.join("results").join(&file)).expect(&file);
            let b = std::fs::read(pool_dir.join("results").join(&file)).expect(&file);
            assert_eq!(
                a, b,
                "pool {file} diverged from the serial run — partial merge broke bit-identity"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&pool_dir);
    // The pool's whole point is never repeating flushed work; if the
    // incremental session is not even break-even against serial
    // recompute, partial reuse has regressed into overhead.
    assert!(
        best.session_speedup() > 1.0,
        "pool incremental session slower than serial ({:.2}s vs {:.2}s)",
        best.session_pool_s,
        best.session_serial_s
    );
    best
}

/// Outcome of the fabric loopback smoke.
struct FabricSmokeResult {
    /// Serial `--fig14` wall clock in this smoke's environment.
    serial_s: f64,
    /// The same sweep through `--serve` + one loopback `--agent`.
    fabric_s: f64,
}

/// Run the `--fig14` sweep once serially and once through the TCP
/// fabric (`--serve 127.0.0.1:<port>` + one local `--agent`), assert
/// the rendered figure files are byte-identical, and record both wall
/// clocks. The overhead (TCP framing, journaling, lease bookkeeping,
/// two extra process startups) is reported, not asserted — at smoke
/// scale it legitimately exceeds the serial cost; the point of the
/// number is the trajectory.
fn run_fabric_smoke() -> FabricSmokeResult {
    use std::path::PathBuf;
    use std::process::{Command, Stdio};

    let exe = std::env::current_exe().expect("current exe");
    let figures = exe.with_file_name("figures");
    let scratch = |tag: &str| -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dca-fabric-smoke-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    };
    let cmd = |dir: &PathBuf| -> Command {
        let mut c = Command::new(&figures);
        c.current_dir(dir)
            .env("DCA_MIXES", "1,2")
            .env("DCA_INSTS", "20000")
            .env("DCA_WARMUP", "60000")
            .env_remove("DCA_FULL")
            .env_remove("DCA_FAULT_PLAN")
            .env_remove("DCA_POOL_INFLIGHT")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        c
    };

    let serial_dir = scratch("serial");
    let t0 = Instant::now();
    let status = cmd(&serial_dir)
        .arg("--fig14")
        .status()
        .expect("spawn figures");
    assert!(status.success(), "serial figures failed with {status}");
    let serial_s = t0.elapsed().as_secs_f64();

    let coord_dir = scratch("coord");
    let agent_dir = scratch("agent");
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = l.local_addr().expect("local addr").to_string();
        drop(l);
        addr
    };
    let t0 = Instant::now();
    let mut coord = cmd(&coord_dir)
        .args(["--fig14", "--serve", &addr, "--jobs", "2"])
        .env("DCA_FABRIC_GRACE_MS", "60000")
        .spawn()
        .expect("spawn coordinator");
    let mut agent = cmd(&agent_dir)
        .args(["--agent", &addr, "--jobs", "2"])
        .spawn()
        .expect("spawn agent");
    let cstatus = coord.wait().expect("wait coordinator");
    let fabric_s = t0.elapsed().as_secs_f64();
    let astatus = agent.wait().expect("wait agent");
    assert!(
        cstatus.success(),
        "fabric coordinator failed with {cstatus}"
    );
    assert!(astatus.success(), "fabric agent failed with {astatus}");

    for ext in ["md", "json", "csv"] {
        let file = format!("fig14.{ext}");
        let a = std::fs::read(serial_dir.join("results").join(&file)).expect(&file);
        let b = std::fs::read(coord_dir.join("results").join(&file)).expect(&file);
        assert_eq!(
            a, b,
            "fabric {file} diverged from the serial run — the transport broke bit-identity"
        );
    }
    for dir in [serial_dir, coord_dir, agent_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
    FabricSmokeResult { serial_s, fabric_s }
}

/// Outcome of the flat-vs-cycle main-memory smoke.
struct MainMemSmokeResult {
    /// Wall clock of the flat-backend run.
    flat_s: f64,
    /// Wall clock of the cycle-backend run.
    cycle_s: f64,
    /// Main-memory reads the cycle backend served.
    cycle_mem_reads: u64,
    /// Row-buffer hit rate at the cycle-level device.
    cycle_row_hit_rate: f64,
}

/// Run the smoke workload on the flat and the cycle-level main-memory
/// backends, asserting the cycle backend completes, stays warm-restore
/// bit-identical to its own cold run, and recording the wall-clock
/// cost of the extra fidelity.
fn run_main_mem_smoke(insts: u64) -> MainMemSmokeResult {
    let m = mix(1);
    let mut flat_cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
    flat_cfg.target_insts = insts;
    flat_cfg.warmup_ops = 400_000;
    let mut cycle_cfg = SystemConfig::paper_cycle_mem(Design::Dca, OrgKind::DirectMapped);
    cycle_cfg.target_insts = insts;
    cycle_cfg.warmup_ops = 400_000;

    let t0 = Instant::now();
    let flat = System::new(flat_cfg, &m.benches).run();
    let flat_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let cycle = System::new(cycle_cfg, &m.benches).run();
    let cycle_s = t0.elapsed().as_secs_f64();

    assert_eq!(cycle.main_mem.backend, "cycle");
    assert_eq!(flat.main_mem.backend, "flat");
    assert!(
        cycle.cores.iter().all(|c| c.insts >= insts),
        "cycle-backend run must complete"
    );
    // The cycle backend is a full warm-checkpoint citizen: one capture
    // (reusable from the flat run's fingerprint class) restores to a
    // bit-identical report.
    let warm = System::capture_warm(cycle_cfg, &m.benches);
    let restored = System::from_warm(cycle_cfg, &m.benches, &warm).run();
    assert_eq!(
        fingerprint(&cycle),
        fingerprint(&restored),
        "cycle-backend warm-restored run diverged from cold"
    );

    MainMemSmokeResult {
        flat_s,
        cycle_s,
        cycle_mem_reads: cycle.mem_reads,
        cycle_row_hit_rate: cycle.main_mem.row_hit_rate(),
    }
}

/// Outcome of the designs smoke (Banshee + XPoint vs the DCA reference).
struct DesignsSmokeResult {
    /// Wall clock of the DCA flat-backend reference run.
    dca_s: f64,
    /// Wall clock of the Banshee flat-backend run.
    banshee_s: f64,
    /// Wall clock of the DCA run on the XPoint backend.
    xpoint_s: f64,
    /// Cache fills the DCA reference issued.
    dca_fills: u64,
    /// Cache fills Banshee admitted through its frequency gate.
    banshee_fills: u64,
    /// Fills Banshee's gate bypassed.
    banshee_bypasses: u64,
}

impl DesignsSmokeResult {
    /// Fraction of the DCA reference's fill traffic Banshee avoided.
    fn fill_reduction(&self) -> f64 {
        if self.dca_fills == 0 {
            return 0.0;
        }
        1.0 - self.banshee_fills as f64 / self.dca_fills as f64
    }
}

/// Run the Banshee design and the XPoint backend against the DCA
/// reference on the smoke workload, asserting the gate bypasses fills,
/// both new paths complete, and both restore from warm checkpoints
/// bit-for-bit.
fn run_designs_smoke(insts: u64) -> DesignsSmokeResult {
    let m = mix(1);
    let mk = |design, xpoint: bool| {
        let mut cfg = if xpoint {
            SystemConfig::paper_xpoint(design, OrgKind::DirectMapped)
        } else {
            SystemConfig::paper(design, OrgKind::DirectMapped)
        };
        cfg.target_insts = insts;
        cfg.warmup_ops = 400_000;
        cfg
    };

    let t0 = Instant::now();
    let dca = System::new(mk(Design::Dca, false), &m.benches).run();
    let dca_s = t0.elapsed().as_secs_f64();

    let ban_cfg = mk(Design::Banshee, false);
    let t0 = Instant::now();
    let ban = System::new(ban_cfg, &m.benches).run();
    let banshee_s = t0.elapsed().as_secs_f64();
    assert!(
        ban.cores.iter().all(|c| c.insts >= insts),
        "Banshee run must complete"
    );
    assert!(
        ban.fill_bypasses > 0,
        "Banshee's frequency gate must bypass some cold fills"
    );
    assert_eq!(ban.cache_fills, ban.refill_requests);
    assert!(
        ban.cache_fills < dca.cache_fills,
        "Banshee must fill less than DCA ({} !< {})",
        ban.cache_fills,
        dca.cache_fills
    );
    // Warm state is design-portable: a checkpoint captured under the
    // Banshee config (warm-up never consults the gate) restores to a
    // bit-identical Banshee run.
    let warm = System::capture_warm(ban_cfg, &m.benches);
    let restored = System::from_warm(ban_cfg, &m.benches, &warm).run();
    assert_eq!(
        fingerprint(&ban),
        fingerprint(&restored),
        "Banshee warm-restored run diverged from cold"
    );
    assert_eq!(
        (ban.cache_fills, ban.fill_bypasses),
        (restored.cache_fills, restored.fill_bypasses),
        "Banshee fill counters diverged across warm restore"
    );

    let xp_cfg = mk(Design::Dca, true);
    let t0 = Instant::now();
    let xp = System::new(xp_cfg, &m.benches).run();
    let xpoint_s = t0.elapsed().as_secs_f64();
    assert_eq!(xp.main_mem.backend, "cycle");
    assert!(
        xp.cores.iter().all(|c| c.insts >= insts),
        "XPoint-backend run must complete"
    );
    let warm = System::capture_warm(xp_cfg, &m.benches);
    let restored = System::from_warm(xp_cfg, &m.benches, &warm).run();
    assert_eq!(
        fingerprint(&xp),
        fingerprint(&restored),
        "XPoint-backend warm-restored run diverged from cold"
    );

    DesignsSmokeResult {
        dca_s,
        banshee_s,
        xpoint_s,
        dca_fills: dca.cache_fills,
        banshee_fills: ban.cache_fills,
        banshee_bypasses: ban.fill_bypasses,
    }
}

/// One arrival distribution's raw-queue microbench row: the same
/// 200 k-event rolling-window workload through the fixed-shift
/// calendar, the self-tuning calendar, and the binary-heap oracle.
struct QueueMicroRow {
    label: &'static str,
    fixed_ms: f64,
    adaptive_ms: f64,
    heap_ms: f64,
    /// Ring rebuilds the adaptive queue performed on this distribution.
    resizes: u64,
    /// Slot shift the adaptive queue settled on (started at SLOT_SHIFT).
    final_shift: u32,
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Absolute arrival times (ps, nondecreasing) for one distribution.
///
/// * `uniform` — one event every ~4 default slots: a good match for
///   `SLOT_SHIFT`, the adaptive queue should mostly leave it alone.
/// * `clustered` — dense bursts (many events per default slot) with
///   long silent gaps: per-bucket sorted inserts degrade at the default
///   shift, so the adaptive queue narrows the slots.
/// * `bursty` — alternating sparse and dense phases: no fixed shift is
///   right for both, the regime the EWMA tracker exists for.
fn micro_times(label: &str) -> Vec<u64> {
    const N: usize = 200_000;
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut times = Vec::with_capacity(N);
    let mut t: u64 = 0;
    match label {
        "uniform" => {
            for _ in 0..N {
                t += 3 * 1024 + (xorshift(&mut rng) % 2048);
                times.push(t);
            }
        }
        "clustered" => {
            while times.len() < N {
                for _ in 0..512 {
                    t += xorshift(&mut rng) % 16;
                    times.push(t);
                }
                t += 1 << 22;
            }
            times.truncate(N);
        }
        "bursty" => {
            while times.len() < N {
                for _ in 0..4096 {
                    t += 3 * 1024 + (xorshift(&mut rng) % 2048);
                    times.push(t);
                }
                for _ in 0..4096 {
                    t += xorshift(&mut rng) % 16;
                    times.push(t);
                }
            }
            times.truncate(N);
        }
        other => panic!("unknown micro distribution {other}"),
    }
    times
}

/// Rolling-window driver: keep `WINDOW` events in flight, pop one /
/// push one — the steady-state shape of the system event loop.
const MICRO_WINDOW: usize = 4096;

fn drive_calendar(q: &mut EventQueue<u32>, times: &[u64]) -> f64 {
    let t0 = Instant::now();
    let w = MICRO_WINDOW.min(times.len());
    for (i, &t) in times[..w].iter().enumerate() {
        q.push(SimTime(t), i as u32);
    }
    for (i, &t) in times[w..].iter().enumerate() {
        let _ = q.pop();
        q.push(SimTime(t), i as u32);
    }
    while q.pop().is_some() {}
    t0.elapsed().as_secs_f64()
}

fn drive_heap(q: &mut BaselineEventQueue<u32>, times: &[u64]) -> f64 {
    let t0 = Instant::now();
    let w = MICRO_WINDOW.min(times.len());
    for (i, &t) in times[..w].iter().enumerate() {
        q.push(SimTime(t), i as u32);
    }
    for (i, &t) in times[w..].iter().enumerate() {
        let _ = q.pop();
        q.push(SimTime(t), i as u32);
    }
    while q.pop().is_some() {}
    t0.elapsed().as_secs_f64()
}

/// Raw-queue head-to-head on the three arrival distributions, best of
/// `reps`. Mirrors `benches/micro_components.rs`; this copy runs in CI
/// and lands in `BENCH_engine.json` under `engine_adaptive.micro`.
fn run_adaptive_micro(reps: u32) -> Vec<QueueMicroRow> {
    ["uniform", "clustered", "bursty"]
        .into_iter()
        .map(|label| {
            let times = micro_times(label);
            let mut fixed_ms = f64::INFINITY;
            let mut adaptive_ms = f64::INFINITY;
            let mut heap_ms = f64::INFINITY;
            let mut resizes = 0;
            let mut final_shift = SLOT_SHIFT;
            for _ in 0..reps.max(1) {
                let mut q = EventQueue::with_slot_shift(SLOT_SHIFT);
                fixed_ms = fixed_ms.min(drive_calendar(&mut q, &times) * 1e3);
                let mut q = EventQueue::adaptive();
                adaptive_ms = adaptive_ms.min(drive_calendar(&mut q, &times) * 1e3);
                resizes = q.resizes();
                final_shift = q.slot_shift();
                let mut q = BaselineEventQueue::new();
                heap_ms = heap_ms.min(drive_heap(&mut q, &times) * 1e3);
            }
            QueueMicroRow {
                label,
                fixed_ms,
                adaptive_ms,
                heap_ms,
                resizes,
                final_shift,
            }
        })
        .collect()
}

/// Outcome of the shardloop (conservative-sync parallel engine) smoke.
struct ShardloopSmokeResult {
    host_cores: usize,
    domains: usize,
    /// Long run: enough per-event work and concurrent chains for the
    /// safe-time protocol to amortize — the regime threading exists for.
    long_events: u64,
    long_seq_s: f64,
    long_t2_s: f64,
    long_t4_s: f64,
    /// Short run: a few hundred tiny events — synchronization overhead
    /// dominates and parallelism legitimately loses. Reported, never
    /// asserted, so the crossover stays visible in the JSON.
    short_events: u64,
    short_seq_s: f64,
    short_t2_s: f64,
}

/// SplitMix64 finalizer: the per-event "model work" of the synthetic
/// domain-decoupled workload.
fn smix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const SHARDLOOP_DOMAINS: usize = 6;
const SHARDLOOP_LOOKAHEAD_NS: u64 = 8;

/// Build the synthetic workload: `seeds` independent event chains of
/// `hops + 1` events each, hopping pseudo-randomly between domains with
/// `work` rounds of hashing per event. Deterministic by construction.
fn shardloop_sim(threads: usize, seeds: u64, hops: u32) -> ShardSim<(u64, u64), (u32, u64)> {
    let cfg = ShardConfig::new(threads, Duration::from_ns(SHARDLOOP_LOOKAHEAD_NS));
    let states = vec![(0u64, 0u64); SHARDLOOP_DOMAINS];
    let mut sim = ShardSim::new(cfg, states).expect("valid shardloop config");
    for i in 0..seeds {
        let dst = (i % SHARDLOOP_DOMAINS as u64) as u16;
        let at = SimTime(smix(i) % 4_000);
        sim.schedule(dst, at, (hops, smix(i ^ 0xD0A)))
            .expect("schedule initial event");
    }
    sim
}

/// Run the workload sequentially and on 2 and 4 threads, asserting the
/// final per-domain states are bit-identical, and time each flavour
/// (best of `reps`).
fn run_shardloop_smoke(reps: u32) -> ShardloopSmokeResult {
    let handler = |work: u32| {
        move |state: &mut (u64, u64),
              d: u16,
              t: SimTime,
              (hops, tag): (u32, u64),
              out: &mut Outbox<(u32, u64)>| {
            let mut acc = state.1 ^ tag ^ t.ps() ^ (d as u64);
            for _ in 0..work {
                acc = smix(acc);
            }
            state.0 += 1;
            state.1 = state.1.wrapping_add(acc);
            if hops > 0 {
                let dst = ((acc >> 8) % SHARDLOOP_DOMAINS as u64) as u16;
                let at =
                    t + Duration::from_ns(SHARDLOOP_LOOKAHEAD_NS) + Duration::from_ps(acc % 4_000);
                out.send(dst, at, (hops - 1, acc));
            }
        }
    };

    let measure = |threads: usize, seeds: u64, hops: u32, work: u32, reps: u32| {
        let mut best_s = f64::INFINITY;
        let mut best_run = None;
        for _ in 0..reps.max(1) {
            let sim = shardloop_sim(threads, seeds, hops);
            let t0 = Instant::now();
            let run = if threads == 1 {
                sim.run_sequential(handler(work))
            } else {
                sim.run(handler(work))
            }
            .expect("shardloop run succeeds");
            let dt = t0.elapsed().as_secs_f64();
            if dt < best_s {
                best_s = dt;
                best_run = Some(run);
            }
        }
        (best_s, best_run.expect("at least one rep"))
    };

    // Long run: ~147 k events, 384 hash rounds each, 1536 concurrent
    // chains over 6 domains — plenty of events per safe-time window.
    let (long_seq_s, long_seq) = measure(1, 1536, 95, 384, reps);
    let (long_t2_s, long_t2) = measure(2, 1536, 95, 384, reps);
    let (long_t4_s, long_t4) = measure(4, 1536, 95, 384, reps);
    assert_eq!(
        long_seq.states, long_t2.states,
        "shardloop 2-thread run diverged from sequential"
    );
    assert_eq!(
        long_seq.states, long_t4.states,
        "shardloop 4-thread run diverged from sequential"
    );
    assert_eq!(long_seq.events, 1536 * 96);

    // Short run: 96 tiny events — the sync-dominated crossover regime.
    let (short_seq_s, short_seq) = measure(1, 24, 3, 16, reps);
    let (short_t2_s, short_t2) = measure(2, 24, 3, 16, reps);
    assert_eq!(
        short_seq.states, short_t2.states,
        "shardloop short 2-thread run diverged from sequential"
    );

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The engine's reason to exist: on the long run, 2 threads must beat
    // sequential. Only assertable when the host actually has 2 cores.
    if host_cores >= 2 {
        assert!(
            long_seq_s / long_t2_s > 1.0,
            "shardloop 2-thread long run slower than sequential ({long_t2_s:.3}s vs {long_seq_s:.3}s)"
        );
    }
    ShardloopSmokeResult {
        host_cores,
        domains: SHARDLOOP_DOMAINS,
        long_events: long_seq.events,
        long_seq_s,
        long_t2_s,
        long_t4_s,
        short_events: short_seq.events,
        short_seq_s,
        short_t2_s,
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let insts = env_u64("DCA_PERF_INSTS", 200_000);
    let reps = env_u64("DCA_PERF_REPS", 3) as u32;
    let sweep_reps = env_u64("DCA_PERF_SWEEP_REPS", 2) as u32;
    let out_path =
        std::env::var("DCA_PERF_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());

    println!("perf_smoke: mix 1, DCA, direct-mapped, {insts} insts/core, {reps} reps/engine\n");

    let calendar = run_engine("calendar", EngineSel::Calendar, insts, reps);
    let heap = run_engine("baseline-heap", EngineSel::Heap, insts, reps);
    let adaptive = run_engine("cal-adaptive", EngineSel::CalendarAdaptive, insts, reps);
    let sharded2 = run_engine("sharded(2)", EngineSel::Sharded { threads: 2 }, insts, reps);

    // The CI gate: every engine must reproduce the heap oracle's report
    // bit for bit. Any divergence fails the build here.
    for r in [&calendar, &adaptive, &sharded2] {
        assert_eq!(
            fingerprint(&r.report),
            fingerprint(&heap.report),
            "{} engine diverged from the heap oracle",
            r.label
        );
    }
    println!("all engines agree bit-for-bit with the heap oracle\n");

    for r in [&calendar, &heap, &adaptive, &sharded2] {
        println!(
            "{:<14} build {:>7.1} ms   loop {:>7.1} ms   {:>12.0} sim-cycles/s   {:>12.0} events/s",
            r.label,
            r.build_s * 1e3,
            r.run_s * 1e3,
            r.cycles_per_sec,
            r.events_per_sec
        );
    }
    let vs_heap = heap.run_s / calendar.run_s;
    let vs_pre = PRE_OVERHAUL_RUN_LOOP_MS / (calendar.run_s * 1e3);
    println!("\ncalendar event-loop speedup vs heap toggle:      {vs_heap:.3}x");
    if insts == 200_000 {
        println!("calendar event-loop speedup vs pre-overhaul ref: {vs_pre:.3}x");
    }

    let micro = run_adaptive_micro(reps);
    println!("\nadaptive-queue micro (200k events, rolling window, best of {reps}):");
    for row in &micro {
        println!(
            "  {:<10} fixed(shift {SLOT_SHIFT}) {:>7.2} ms   adaptive {:>7.2} ms \
             (-> shift {}, {} resizes)   heap {:>7.2} ms",
            row.label, row.fixed_ms, row.adaptive_ms, row.final_shift, row.resizes, row.heap_ms
        );
    }

    let sl = run_shardloop_smoke(sweep_reps);
    println!(
        "\nshardloop smoke ({} domains, {} host cores): long run ({} events) seq {:.3}s   \
         2 threads {:.3}s ({:.3}x)   4 threads {:.3}s ({:.3}x)   short run ({} events) \
         seq {:.4}s vs 2 threads {:.4}s ({:.3}x — sync-dominated, reported not asserted); \
         all states bit-identical",
        sl.domains,
        sl.host_cores,
        sl.long_events,
        sl.long_seq_s,
        sl.long_t2_s,
        sl.long_seq_s / sl.long_t2_s,
        sl.long_t4_s,
        sl.long_seq_s / sl.long_t4_s,
        sl.short_events,
        sl.short_seq_s,
        sl.short_t2_s,
        sl.short_seq_s / sl.short_t2_s,
    );

    let sweep = run_sweep(insts, sweep_reps);
    println!(
        "\nsweep ({} design/remap variants, mix 1, direct-mapped): cold {:.2}s   \
         warm-cached {:.2}s   speedup {:.3}x (reports bit-for-bit identical)",
        sweep.variants,
        sweep.cold_s,
        sweep.warm_s,
        sweep.speedup()
    );

    let shard = run_shard_smoke(sweep_reps);
    println!(
        "\nshard smoke (fig14+fig12 session, 2 mixes, {} host cores): fresh fig14 serial {:.2}s \
         vs pool --jobs {} {:.2}s ({:.3}x)   session serial {:.2}s vs pool {:.2}s ({:.3}x, \
         partial reuse; figure files byte-identical)",
        shard.host_cores,
        shard.serial_s,
        shard.jobs,
        shard.pool_s,
        shard.fresh_speedup(),
        shard.session_serial_s,
        shard.session_pool_s,
        shard.session_speedup()
    );

    let fabric = run_fabric_smoke();
    println!(
        "\nfabric smoke (fig14, 2 mixes, loopback --serve + one --agent): serial {:.2}s   \
         local pool {:.2}s   fabric {:.2}s   overhead vs serial {:.3}x (figure files \
         byte-identical)",
        fabric.serial_s,
        shard.pool_s,
        fabric.fabric_s,
        fabric.fabric_s / fabric.serial_s
    );

    let main_mem = run_main_mem_smoke(insts);
    println!(
        "\nmain-mem smoke (mix 1, DCA, direct-mapped): flat {:.2}s   cycle-level {:.2}s   \
         overhead {:.3}x   ({} device reads, row-hit rate {:.3}; cycle warm-restore \
         bit-identical)",
        main_mem.flat_s,
        main_mem.cycle_s,
        main_mem.cycle_s / main_mem.flat_s,
        main_mem.cycle_mem_reads,
        main_mem.cycle_row_hit_rate
    );

    let designs = run_designs_smoke(insts);
    println!(
        "\ndesigns smoke (mix 1, direct-mapped): DCA {:.2}s   Banshee {:.2}s   \
         DCA@XPoint {:.2}s   fills {} -> {} (bypassed {}, -{:.1}%); Banshee and XPoint \
         warm-restores bit-identical",
        designs.dca_s,
        designs.banshee_s,
        designs.xpoint_s,
        designs.dca_fills,
        designs.banshee_fills,
        designs.banshee_bypasses,
        designs.fill_reduction() * 100.0
    );

    let trace = run_trace_smoke(insts);
    println!(
        "\ntrace smoke (fixture mix {}, RunSpec::run_mix): first (warms cache) {:.2}s   \
         warm-cached hit {:.2}s   cold {:.2}s (reports bit-for-bit identical)",
        trace.mix_id, trace.build_s, trace.warm_s, trace.cold_s
    );

    // The pre-overhaul reference was measured at 200 k insts; at any
    // other scale the ratio would be meaningless, so omit it.
    let reference = if insts == 200_000 {
        format!(
            ",\n  \"pre_overhaul_reference\": {{\"run_loop_ms\": {PRE_OVERHAUL_RUN_LOOP_MS}, \
             \"speedup_vs_reference\": {vs_pre:.4}}}"
        )
    } else {
        String::new()
    };
    // Hand-rolled JSON: the workspace is offline (no serde), and the
    // schema is flat.
    let micro_json = micro
        .iter()
        .map(|r| {
            format!(
                "      \"{}\": {{\"fixed_shift_ms\": {:.4}, \"adaptive_ms\": {:.4}, \
                 \"heap_ms\": {:.4}, \"resizes\": {}, \"final_shift\": {}}}",
                r.label, r.fixed_ms, r.adaptive_ms, r.heap_ms, r.resizes, r.final_shift
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let adaptive_section = format!(
        "\"engine_adaptive\": {{\n    \
         \"system\": {{\"run_loop_s\": {:.6}, \"vs_calendar\": {:.4}}},\n    \
         \"micro\": {{\n{micro_json}\n    }}\n  }}",
        adaptive.run_s,
        calendar.run_s / adaptive.run_s,
    );
    let sharded_section = format!(
        "\"sharded\": {{\n    \
         \"system_merge\": {{\"run_loop_s\": {:.6}, \"vs_calendar\": {:.4}, \
         \"note\": \"zero cross-domain lookahead + shared uncore make the system-level sharded \
         engine a deterministic merge, not a parallel win; see the shardloop numbers\"}},\n    \
         \"shardloop\": {{\"host_cores\": {}, \"domains\": {}, \
         \"lookahead_ns\": {SHARDLOOP_LOOKAHEAD_NS},\n      \
         \"long\": {{\"events\": {}, \"seq_s\": {:.4}, \"t2_s\": {:.4}, \"t4_s\": {:.4}, \
         \"speedup_t2\": {:.4}, \"speedup_t4\": {:.4}}},\n      \
         \"short\": {{\"events\": {}, \"seq_s\": {:.6}, \"t2_s\": {:.6}, \
         \"speedup_t2\": {:.4}, \
         \"note\": \"sync overhead dominates at this scale; parallelism legitimately loses\"}}\n    \
         }}\n  }}",
        sharded2.run_s,
        calendar.run_s / sharded2.run_s,
        sl.host_cores,
        sl.domains,
        sl.long_events,
        sl.long_seq_s,
        sl.long_t2_s,
        sl.long_t4_s,
        sl.long_seq_s / sl.long_t2_s,
        sl.long_seq_s / sl.long_t4_s,
        sl.short_events,
        sl.short_seq_s,
        sl.short_t2_s,
        sl.short_seq_s / sl.short_t2_s,
    );
    let json = format!(
        "{{\n  \"workload\": {{\"mix\": 1, \"design\": \"DCA\", \"org\": \"direct-mapped\", \
         \"insts_per_core\": {insts}, \"reps\": {reps}}},\n  \"engines\": {{\n    \
         \"calendar\": {{\"run_loop_s\": {:.6}, \"sim_cycles_per_sec\": {:.0}, \"events_per_sec\": {:.0}}},\n    \
         \"baseline_heap\": {{\"run_loop_s\": {:.6}, \"sim_cycles_per_sec\": {:.0}, \"events_per_sec\": {:.0}}},\n    \
         \"cal_adaptive\": {{\"run_loop_s\": {:.6}, \"sim_cycles_per_sec\": {:.0}, \"events_per_sec\": {:.0}}},\n    \
         \"sharded_2\": {{\"run_loop_s\": {:.6}, \"sim_cycles_per_sec\": {:.0}, \"events_per_sec\": {:.0}}}\n  }},\n  \
         \"speedup_calendar_over_heap\": {vs_heap:.4}{reference},\n  \
         {adaptive_section},\n  \
         {sharded_section},\n  \
         \"sweep\": {{\"variants\": {}, \"reps\": {sweep_reps}, \"cold_s\": {:.4}, \
         \"warm_s\": {:.4}, \"speedup\": {:.4}}},\n  \
         \"shard\": {{\"figure\": \"fig14\", \"jobs\": {}, \"host_cores\": {}, \
         \"serial_s\": {:.4}, \"pool_s\": {:.4}, \"fresh_speedup\": {:.4}, \
         \"session_figures\": \"fig14+fig12\", \"session_serial_s\": {:.4}, \
         \"session_pool_s\": {:.4}, \"speedup\": {:.4}}},\n  \
         \"fabric\": {{\"figure\": \"fig14\", \"agents\": 1, \"serial_s\": {:.4}, \
         \"pool_s\": {:.4}, \"fabric_s\": {:.4}, \"overhead_vs_serial\": {:.4}}},\n  \
         \"main_mem\": {{\"flat_s\": {:.4}, \"cycle_s\": {:.4}, \"cycle_overhead\": {:.4}, \
         \"cycle_mem_reads\": {}, \"cycle_row_hit_rate\": {:.4}}},\n  \
         \"designs\": {{\"dca_s\": {:.4}, \"banshee_s\": {:.4}, \"xpoint_s\": {:.4}, \
         \"dca_fills\": {}, \"banshee_fills\": {}, \"banshee_bypasses\": {}, \
         \"fill_reduction\": {:.4}}},\n  \
         \"trace_smoke\": {{\"mix_id\": {}, \"build_s\": {:.4}, \"warm_s\": {:.4}, \
         \"cold_s\": {:.4}}},\n  \
         \"events_processed\": {},\n  \"sim_time_us\": {:.3}\n}}\n",
        calendar.run_s,
        calendar.cycles_per_sec,
        calendar.events_per_sec,
        heap.run_s,
        heap.cycles_per_sec,
        heap.events_per_sec,
        adaptive.run_s,
        adaptive.cycles_per_sec,
        adaptive.events_per_sec,
        sharded2.run_s,
        sharded2.cycles_per_sec,
        sharded2.events_per_sec,
        sweep.variants,
        sweep.cold_s,
        sweep.warm_s,
        sweep.speedup(),
        shard.jobs,
        shard.host_cores,
        shard.serial_s,
        shard.pool_s,
        shard.fresh_speedup(),
        shard.session_serial_s,
        shard.session_pool_s,
        shard.session_speedup(),
        fabric.serial_s,
        shard.pool_s,
        fabric.fabric_s,
        fabric.fabric_s / fabric.serial_s,
        main_mem.flat_s,
        main_mem.cycle_s,
        main_mem.cycle_s / main_mem.flat_s,
        main_mem.cycle_mem_reads,
        main_mem.cycle_row_hit_rate,
        designs.dca_s,
        designs.banshee_s,
        designs.xpoint_s,
        designs.dca_fills,
        designs.banshee_fills,
        designs.banshee_bypasses,
        designs.fill_reduction(),
        trace.mix_id,
        trace.build_s,
        trace.warm_s,
        trace.cold_s,
        calendar.report.events_processed,
        calendar.report.end_time.ps() as f64 / 1e6,
    );
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
