//! Engine throughput smoke test.
//!
//! Runs the quickstart workload (Table I mix 1 under DCA, direct-mapped)
//! through the calendar-queue engine and the baseline heap engine,
//! reports simulated-cycles/sec and events/sec for each, verifies the two
//! engines agree bit-for-bit, and writes the numbers to
//! `BENCH_engine.json` so every PR leaves a perf trajectory.
//!
//! Construction (functional cache warm-up) is timed separately from the
//! event loop: the engine overhaul targets the loop, and warm-up noise
//! would otherwise swamp the signal.
//!
//! ```text
//! cargo run --release -p dca-bench --bin perf_smoke
//! ```
//!
//! Environment:
//! * `DCA_PERF_INSTS` — instructions per core (default 200 000).
//! * `DCA_PERF_REPS` — timed repetitions per engine (default 3; the
//!   fastest rep is reported, standard practice for wall-clock benches).
//! * `DCA_PERF_OUT` — output path (default `BENCH_engine.json`).

use std::time::Instant;

use dca::{Design, System, SystemConfig, SystemReport};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

/// Event-loop wall time of the hash-map/`Vec::remove` engine this PR
/// replaced, measured on the same workload (200 k insts/core, 3-rep
/// best) by building the pre-overhaul sources against the same
/// manifests. Kept as a reference point in `BENCH_engine.json`; see the
/// PR that introduced this file for methodology.
const PRE_OVERHAUL_RUN_LOOP_MS: f64 = 465.1;

/// One engine's measured throughput.
struct EngineResult {
    label: &'static str,
    /// Simulated CPU cycles per wall-clock second of event loop (best rep).
    cycles_per_sec: f64,
    /// Engine events delivered per wall-clock second (best rep).
    events_per_sec: f64,
    /// Event-loop wall-clock seconds of the best rep.
    run_s: f64,
    /// Construction + warm-up seconds of the best rep (engine-independent).
    build_s: f64,
    /// The report (for cross-engine equality checking).
    report: SystemReport,
}

fn run_engine(label: &'static str, baseline: bool, insts: u64, reps: u32) -> EngineResult {
    let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
    cfg.target_insts = insts;
    cfg.warmup_ops = 400_000;
    cfg.baseline_engine = baseline;
    let m = mix(1);

    let mut best_run = f64::INFINITY;
    let mut best_build = f64::INFINITY;
    let mut best: Option<SystemReport> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let sys = System::new(cfg, &m.benches);
        let t1 = Instant::now();
        let report = sys.run();
        let run = t1.elapsed().as_secs_f64();
        best_build = best_build.min((t1 - t0).as_secs_f64());
        if run < best_run {
            best_run = run;
            best = Some(report);
        }
    }
    let report = best.expect("at least one rep");
    let sim_cycles = report.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
    EngineResult {
        label,
        cycles_per_sec: sim_cycles as f64 / best_run,
        events_per_sec: report.events_processed as f64 / best_run,
        run_s: best_run,
        build_s: best_build,
        report,
    }
}

/// Fingerprint for cross-engine equality (mirrors tests/determinism.rs).
fn fingerprint(r: &SystemReport) -> Vec<u64> {
    let mut v = vec![
        r.end_time.ps(),
        r.mem_reads,
        r.mem_writes,
        r.writeback_requests,
        r.refill_requests,
        r.cache_read_hits,
        r.cache_read_misses,
        r.events_processed,
    ];
    for c in &r.cores {
        v.push(c.insts);
        v.push(c.cycles);
    }
    for ch in &r.channels {
        v.push(ch.reads);
        v.push(ch.writes);
        v.push(ch.turnarounds);
    }
    v
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let insts = env_u64("DCA_PERF_INSTS", 200_000);
    let reps = env_u64("DCA_PERF_REPS", 3) as u32;
    let out_path =
        std::env::var("DCA_PERF_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());

    println!("perf_smoke: mix 1, DCA, direct-mapped, {insts} insts/core, {reps} reps/engine\n");

    let calendar = run_engine("calendar", false, insts, reps);
    let heap = run_engine("baseline-heap", true, insts, reps);

    assert_eq!(
        fingerprint(&calendar.report),
        fingerprint(&heap.report),
        "engines must agree bit-for-bit"
    );
    println!("engines agree bit-for-bit on the workload fingerprint\n");

    for r in [&calendar, &heap] {
        println!(
            "{:<14} build {:>7.1} ms   loop {:>7.1} ms   {:>12.0} sim-cycles/s   {:>12.0} events/s",
            r.label,
            r.build_s * 1e3,
            r.run_s * 1e3,
            r.cycles_per_sec,
            r.events_per_sec
        );
    }
    let vs_heap = heap.run_s / calendar.run_s;
    let vs_pre = PRE_OVERHAUL_RUN_LOOP_MS / (calendar.run_s * 1e3);
    println!("\ncalendar event-loop speedup vs heap toggle:      {vs_heap:.3}x");
    if insts == 200_000 {
        println!("calendar event-loop speedup vs pre-overhaul ref: {vs_pre:.3}x");
    }

    // The pre-overhaul reference was measured at 200 k insts; at any
    // other scale the ratio would be meaningless, so omit it.
    let reference = if insts == 200_000 {
        format!(
            ",\n  \"pre_overhaul_reference\": {{\"run_loop_ms\": {PRE_OVERHAUL_RUN_LOOP_MS}, \
             \"speedup_vs_reference\": {vs_pre:.4}}}"
        )
    } else {
        String::new()
    };
    // Hand-rolled JSON: the workspace is offline (no serde), and the
    // schema is flat.
    let json = format!(
        "{{\n  \"workload\": {{\"mix\": 1, \"design\": \"DCA\", \"org\": \"direct-mapped\", \
         \"insts_per_core\": {insts}, \"reps\": {reps}}},\n  \"engines\": {{\n    \
         \"calendar\": {{\"run_loop_s\": {:.6}, \"sim_cycles_per_sec\": {:.0}, \"events_per_sec\": {:.0}}},\n    \
         \"baseline_heap\": {{\"run_loop_s\": {:.6}, \"sim_cycles_per_sec\": {:.0}, \"events_per_sec\": {:.0}}}\n  }},\n  \
         \"speedup_calendar_over_heap\": {vs_heap:.4}{reference},\n  \
         \"events_processed\": {},\n  \"sim_time_us\": {:.3}\n}}\n",
        calendar.run_s,
        calendar.cycles_per_sec,
        calendar.events_per_sec,
        heap.run_s,
        heap.cycles_per_sec,
        heap.events_per_sec,
        calendar.report.events_processed,
        calendar.report.end_time.ps() as f64 / 1e6,
    );
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
