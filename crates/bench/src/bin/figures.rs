//! `figures` — regenerate every table and figure of the DCA paper.
//!
//! ```text
//! cargo run -p dca-bench --bin figures --release -- --all
//! cargo run -p dca-bench --bin figures --release -- --fig8 --fig9
//! DCA_FULL=1 cargo run -p dca-bench --bin figures --release -- --all
//! ```
//!
//! Output goes to stdout and `results/<figure>.md`.

use std::fs;
use std::path::Path;
use std::time::Instant;

use dca::{Design, System, SystemConfig};
use dca_bench::{evaluate, AloneIpc, RunSpec, Scale, WarmCache};
use dca_cpu::{mix, Benchmark, TraceGen};
use dca_dram_cache::{OrgKind, TagCache};
use dca_metrics::Table;

fn out(name: &str, title: &str, table: &Table) {
    let md = format!("# {title}\n\n{}\n", table.to_markdown());
    println!("\n== {title} ==\n{}", table.to_markdown());
    fs::create_dir_all("results").ok();
    fs::write(Path::new("results").join(format!("{name}.md")), &md).ok();
    fs::write(
        Path::new("results").join(format!("{name}.csv")),
        table.to_csv(),
    )
    .ok();
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Table I: the thirty 4-core mixes.
fn table1() {
    let mut t = Table::new(vec!["mix", "benchmarks"]);
    for id in 1..=30 {
        t.row(vec![id.to_string(), mix(id).name()]);
    }
    out("table1", "Table I — workload groupings", &t);
}

/// Table II: system parameters as configured.
fn table2() {
    let cfg = SystemConfig::paper(Design::Dca, OrgKind::paper_set_assoc());
    let t_ = cfg.timing;
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec!["processor", "4 GHz, x86, 192 ROB, 8-wide"]);
    t.row(vec!["L1 I/D", "32KB/2-way, 2 cycles, private"]);
    t.row(vec!["L2", "8MB, 20 cycles, shared"]);
    t.row(vec!["L3", "DRAM cache, 256MB (240MB data), 1/15-way"]);
    t.row(vec![
        "tRCD-tCAS-tRP-tRAS".to_string(),
        format!(
            "{}-{}-{}-{} ns",
            t_.t_rcd.as_ns_f64(),
            t_.t_cas.as_ns_f64(),
            t_.t_rp.as_ns_f64(),
            t_.t_ras.as_ns_f64()
        ),
    ]);
    t.row(vec![
        "tWTR-tRTP-tRTW".to_string(),
        format!(
            "{}-{}-{} ns",
            t_.t_wtr.as_ns_f64(),
            t_.t_rtp.as_ns_f64(),
            t_.t_rtw.as_ns_f64()
        ),
    ]);
    t.row(vec![
        "tWR-tBURST".to_string(),
        format!("{}-{} ns", t_.t_wr.as_ns_f64(), t_.t_burst.as_ns_f64()),
    ]);
    t.row(vec![
        "organisation".to_string(),
        format!(
            "{} banks/rank, {} rank/ch, {} channels, 4KB row, RoBaRaChCo, open page",
            cfg.dram_org.banks_per_rank, cfg.dram_org.ranks, cfg.dram_org.channels
        ),
    ]);
    t.row(vec![
        "read queue".to_string(),
        format!(
            "{} entries/ch (32 for ROD); DCA flush 75%/85%; BLISS",
            cfg.read_q_cap
        ),
    ]);
    t.row(vec![
        "write queue".to_string(),
        format!(
            "{} entries/ch (96 for ROD); flush 50%/85%; BLISS",
            cfg.write_q_cap
        ),
    ]);
    t.row(vec!["memory latency", "50 ns + 2 GHz x 64-bit bus"]);
    out(
        "table2",
        "Table II — system and stacked-DRAM parameters",
        &t,
    );
}

/// Fig 7: service-order narrative for the three designs (abstract study).
fn fig7() {
    let mut t = Table::new(vec![
        "design",
        "first accesses issued (role/class, ! = row conflict)",
    ]);
    for design in Design::ALL {
        let mut cfg = SystemConfig::paper(design, OrgKind::paper_set_assoc());
        cfg.record_timeline = true;
        cfg.target_insts = 40_000;
        cfg.warmup_ops = 400_000;
        let r = System::new(cfg, &[Benchmark::Libquantum, Benchmark::Lbm]).run();
        let tl = r.timeline.expect("timeline");
        let line: Vec<String> = tl
            .entries()
            .iter()
            .take(10)
            .map(|e| {
                format!(
                    "{:?}/{:?}{}",
                    e.role,
                    e.class,
                    if e.outcome.is_conflict() { "!" } else { "" }
                )
            })
            .collect();
        t.row(vec![design.label().to_string(), line.join(" → ")]);
    }
    out("fig7", "Fig 7 — CD vs ROD vs DCA service behaviour", &t);
}

/// Figs 8 & 9: average normalized weighted speedup, without/with remap.
fn fig8_9(scale: &Scale) {
    for (figname, remap) in [("fig8", false), ("fig9", true)] {
        let mut t = Table::new(vec!["organisation", "CD", "ROD", "DCA"]);
        for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
            let alone = AloneIpc::new();
            alone.prime(&scale.mixes, org);
            // Baseline: CD *without* remap, as in the paper's Fig 9.
            let base = evaluate(
                RunSpec::new(Design::Cd, org),
                &scale.mixes,
                &alone,
                "CD-base",
            );
            let mut cells = vec![org.label().to_string()];
            for design in Design::ALL {
                let mut spec = RunSpec::new(design, org);
                if remap {
                    spec = spec.with_remap();
                }
                let s = evaluate(spec, &scale.mixes, &alone, design.label());
                cells.push(fmt(s.ws_geomean() / base.ws_geomean()));
            }
            t.row(cells);
        }
        let title = if remap {
            "Fig 9 — average speedup with XOR remapping (normalized to CD without remapping)"
        } else {
            "Fig 8 — average normalized weighted speedup"
        };
        out(figname, title, &t);
    }
}

/// Figs 10 & 11: per-workload speedups.
fn fig10_11(scale: &Scale) {
    for (figname, org, title) in [
        (
            "fig10",
            OrgKind::paper_set_assoc(),
            "Fig 10 — per-workload speedup (set-associative)",
        ),
        (
            "fig11",
            OrgKind::DirectMapped,
            "Fig 11 — per-workload speedup (direct-mapped)",
        ),
    ] {
        let alone = AloneIpc::new();
        alone.prime(&scale.mixes, org);
        let mut summaries = Vec::new();
        for design in Design::ALL {
            summaries.push(evaluate(
                RunSpec::new(design, org),
                &scale.mixes,
                &alone,
                design.label(),
            ));
        }
        for design in Design::ALL {
            summaries.push(evaluate(
                RunSpec::new(design, org).with_remap(),
                &scale.mixes,
                &alone,
                &format!("XOR+{}", design.label()),
            ));
        }
        let base_ws = summaries[0].ws.clone();
        let mut header = vec!["mix".to_string()];
        header.extend(summaries.iter().map(|s| s.label.clone()));
        let mut t = Table::new(header);
        for (i, &mid) in scale.mixes.iter().enumerate() {
            let mut row = vec![mix(mid).name()];
            for s in &summaries {
                row.push(fmt(s.ws[i] / base_ws[i]));
            }
            t.row(row);
        }
        out(figname, title, &t);
    }
}

/// Figs 12 & 13: L2 miss latency improvement over CD.
fn fig12_13(scale: &Scale) {
    for (figname, org, title) in [
        (
            "fig12",
            OrgKind::paper_set_assoc(),
            "Fig 12 — L2 miss latency improvement (set-associative)",
        ),
        (
            "fig13",
            OrgKind::DirectMapped,
            "Fig 13 — L2 miss latency improvement (direct-mapped)",
        ),
    ] {
        let alone = AloneIpc::new();
        let mut t = Table::new(vec![
            "design",
            "mean miss latency (ns)",
            "improvement vs CD",
        ]);
        let base = evaluate(RunSpec::new(Design::Cd, org), &scale.mixes, &alone, "CD");
        for design in Design::ALL {
            let s = evaluate(
                RunSpec::new(design, org),
                &scale.mixes,
                &alone,
                design.label(),
            );
            t.row(vec![
                design.label().to_string(),
                format!("{:.1}", s.mean_latency()),
                fmt(base.mean_latency() / s.mean_latency()),
            ]);
        }
        for design in Design::ALL {
            let s = evaluate(
                RunSpec::new(design, org).with_remap(),
                &scale.mixes,
                &alone,
                design.label(),
            );
            t.row(vec![
                format!("XOR+{}", design.label()),
                format!("{:.1}", s.mean_latency()),
                fmt(base.mean_latency() / s.mean_latency()),
            ]);
        }
        out(figname, title, &t);
    }
}

/// Figs 14 & 15: accesses per turnaround.
fn fig14_15(scale: &Scale) {
    for (figname, org, title) in [
        (
            "fig14",
            OrgKind::paper_set_assoc(),
            "Fig 14 — accesses per turnaround (set-associative)",
        ),
        (
            "fig15",
            OrgKind::DirectMapped,
            "Fig 15 — accesses per turnaround (direct-mapped)",
        ),
    ] {
        let alone = AloneIpc::new();
        let mut t = Table::new(vec!["design", "accesses/turnaround"]);
        for design in Design::ALL {
            let s = evaluate(
                RunSpec::new(design, org),
                &scale.mixes,
                &alone,
                design.label(),
            );
            t.row(vec![
                design.label().to_string(),
                format!("{:.2}", s.mean_apt()),
            ]);
        }
        out(figname, title, &t);
    }
}

/// Figs 16 & 17: read row-buffer hit rate.
fn fig16_17(scale: &Scale) {
    for (figname, org, title) in [
        (
            "fig16",
            OrgKind::paper_set_assoc(),
            "Fig 16 — row buffer hit rate (set-associative)",
        ),
        (
            "fig17",
            OrgKind::DirectMapped,
            "Fig 17 — row buffer hit rate (direct-mapped)",
        ),
    ] {
        let alone = AloneIpc::new();
        let mut t = Table::new(vec!["design", "no remap", "with remap"]);
        for design in Design::ALL {
            let s = evaluate(
                RunSpec::new(design, org),
                &scale.mixes,
                &alone,
                design.label(),
            );
            let sr = evaluate(
                RunSpec::new(design, org).with_remap(),
                &scale.mixes,
                &alone,
                design.label(),
            );
            t.row(vec![
                design.label().to_string(),
                fmt(s.mean_row_hit()),
                fmt(sr.mean_row_hit()),
            ]);
        }
        out(figname, title, &t);
    }
}

/// Fig 18: DRAM tag accesses vs tag-cache size, normalized to no tag
/// cache (offline study over the set-access stream, as in ATCache \[4\]).
fn fig18(scale: &Scale) {
    let geom = dca_dram_cache::CacheGeometry::paper(
        OrgKind::paper_set_assoc(),
        dca_dram::MappingScheme::Direct,
    );
    // Build the set-access stream a mix presents to the cache.
    let m = mix(scale.mixes[0]);
    let mut gens: Vec<TraceGen> = m
        .benches
        .iter()
        .enumerate()
        .map(|(i, b)| TraceGen::new(b.profile(), (i as u64 + 1) << 26, 7))
        .collect();
    let ops = scale.insts.max(200_000);
    let mut requests: Vec<u64> = Vec::with_capacity(ops as usize * 4);
    for _ in 0..ops {
        for g in gens.iter_mut() {
            requests.push(geom.place(g.next_op().block).set);
        }
    }
    let mut t = Table::new(vec!["tag cache size", "DRAM tag accesses (normalized)"]);
    t.row(vec!["none".to_string(), fmt(1.0)]);
    for kb in [24usize, 48, 96, 192] {
        let mut tc = TagCache::new(kb * 1024, 1);
        for (i, &set) in requests.iter().enumerate() {
            tc.access(set, i % 3 == 0);
        }
        t.row(vec![
            format!("{kb} KB"),
            fmt(tc.stats().dram_tag_accesses() as f64 / requests.len() as f64),
        ]);
    }
    out(
        "fig18",
        "Fig 18 — DRAM tag accesses vs SRAM tag-cache size (normalized to no tag cache)",
        &t,
    );
}

/// Fig 19: speedup under Lee's DRAM-aware L2 writeback (direct-mapped).
fn fig19(scale: &Scale) {
    let org = OrgKind::DirectMapped;
    let alone = AloneIpc::new();
    alone.prime(&scale.mixes, org);
    let base = evaluate(
        RunSpec::new(Design::Cd, org).with_lee(),
        &scale.mixes,
        &alone,
        "LEE+CD",
    );
    let mut t = Table::new(vec!["design (with Lee writeback)", "speedup vs LEE+CD"]);
    t.row(vec!["LEE+CD".to_string(), fmt(1.0)]);
    for design in [Design::Rod, Design::Dca] {
        let s = evaluate(
            RunSpec::new(design, org).with_lee(),
            &scale.mixes,
            &alone,
            design.label(),
        );
        t.row(vec![
            format!("LEE+{}", design.label()),
            fmt(s.ws_geomean() / base.ws_geomean()),
        ]);
    }
    out(
        "fig19",
        "Fig 19 — speedup under DRAM-aware writeback (direct-mapped)",
        &t,
    );
}

/// §IV-C ablation: flushing-factor sensitivity (FF-1..FF-5).
fn ablation_ff(scale: &Scale) {
    let org = OrgKind::paper_set_assoc();
    let alone = AloneIpc::new();
    alone.prime(&scale.mixes, org);
    let mut t = Table::new(vec!["flushing factor", "WS geomean (normalized to FF-4)"]);
    let mut results = Vec::new();
    for ff in 1..=5u8 {
        let mut spec = RunSpec::new(Design::Dca, org);
        spec.flushing_factor = ff;
        let s = evaluate(spec, &scale.mixes, &alone, &format!("FF-{ff}"));
        results.push((ff, s.ws_geomean()));
    }
    let base = results.iter().find(|(ff, _)| *ff == 4).unwrap().1;
    for (ff, ws) in results {
        t.row(vec![format!("FF-{ff}"), fmt(ws / base)]);
    }
    out(
        "ablation_ff",
        "§IV-C — flushing-factor sensitivity (DCA, set-associative)",
        &t,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag || a == "--all");
    let scale = Scale::from_env();
    eprintln!(
        "figures: insts/core={}, mixes={:?} (set DCA_FULL=1 for paper scale; \
         DCA_WARM=0 for cold warm-ups; DCA_WARM_PERSIST=1 to persist under results/warm/)",
        scale.insts, scale.mixes
    );
    let t0 = Instant::now();
    if want("--table1") {
        table1();
    }
    if want("--table2") {
        table2();
    }
    if want("--fig7") {
        fig7();
    }
    if want("--fig8") || want("--fig9") {
        fig8_9(&scale);
    }
    if want("--fig10") || want("--fig11") {
        fig10_11(&scale);
    }
    if want("--fig12") || want("--fig13") {
        fig12_13(&scale);
    }
    if want("--fig14") || want("--fig15") {
        fig14_15(&scale);
    }
    if want("--fig16") || want("--fig17") {
        fig16_17(&scale);
    }
    if want("--fig18") {
        fig18(&scale);
    }
    if want("--fig19") {
        fig19(&scale);
    }
    if want("--ff") {
        ablation_ff(&scale);
    }

    // Sweep wall-clock trajectory: how much warm-up sharing saved. Each
    // cache *build* is a warm-up actually paid; each *hit* is one a cold
    // harness would have re-run. (perf_smoke measures the cold-vs-warm
    // ratio under controlled conditions and records it, with this same
    // warm path asserted bit-identical to cold, in BENCH_engine.json.)
    let s = WarmCache::global().stats();
    eprintln!(
        "figures: wall-clock {:.1}s; warm cache: {} warm-ups built, {} reused, {} disk-loaded \
         ({} warm-ups avoided vs cold harness)",
        t0.elapsed().as_secs_f64(),
        s.builds,
        s.hits,
        s.disk_loads,
        s.hits + s.disk_loads
    );
}
