//! `figures` — regenerate every table and figure of the DCA paper.
//!
//! ```text
//! cargo run -p dca-bench --bin figures --release -- --all
//! cargo run -p dca-bench --bin figures --release -- --fig8 --fig9
//! DCA_FULL=1 cargo run -p dca-bench --bin figures --release -- --all
//! cargo run -p dca-bench --bin figures --release -- --all --jobs 8
//! ```
//!
//! Output goes to stdout and `results/<figure>.{md,csv,json}`.
//!
//! ## Sharded mode
//!
//! `--jobs N` runs the requested figures through a **persistent pool**
//! of `N` supervised `figures --worker --serve` subprocesses: figures
//! are decomposed into deterministically named jobs (see
//! `dca_bench::shard`), each worker keeps its in-process warm cache
//! hot across jobs and writes one JSON partial per job under
//! `results/partials/`, and the supervisor merges the partials into
//! the same figure files a serial run writes — bit-identical, which
//! `crates/bench/tests/shard.rs` and `tests/pool.rs` lock. Partials
//! that already validate on disk are reused (resume after a crash or
//! Ctrl-C), stale partials from an older plan are pruned, and a job
//! that keeps failing is quarantined (`results/partials/
//! quarantine.json`) instead of sinking the sweep — its cells render
//! as `—` and the run exits degraded. See `shard::pool` for the wire
//! protocol and `shard::supervisor` for deadlines, retry/backoff and
//! the drain semantics. `--chunk M` sets the mixes (and alone
//! benchmarks) per job.
//!
//! ## Fabric mode
//!
//! `--serve <addr>` runs the same sweep as a **fabric coordinator**: a
//! TCP job service (see `shard::fabric`) that leases jobs to any
//! number of `figures --agent <addr> --jobs N` processes, each
//! draining jobs through its own local persistent worker pool. The
//! coordinator journals every job transition to a write-ahead log
//! (`results/partials/fabric.journal`) so a killed `--serve` resumes
//! exactly; agents that die, hang or garble their uploads forfeit
//! their leases into the ordinary retry/backoff/quarantine machinery;
//! and if no agent is connected the coordinator falls back to local
//! workers rather than stalling. Outputs are byte-identical to a
//! serial run (locked by `crates/bench/tests/fabric.rs`).
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success — every requested figure written |
//! | 1    | hard error (bad environment, unwritable results, unreachable coordinator) |
//! | 2    | usage error |
//! | 3    | degraded — quarantined jobs; affected figure cells render as `—` |
//! | 130  | interrupted — in-flight jobs drained and flushed; re-run to resume |
//!
//! `--serve` uses the same contract (130 keeps the journal for
//! resume). `--agent` exits 0 when released by the coordinator, 1 when
//! the coordinator is unreachable or rejects the handshake, and 130
//! when drained by Ctrl-C.

use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use std::collections::HashSet;

use dca::{Design, System, SystemConfig};
use dca_bench::shard::{self, FigurePlan, PartialStore, DEFAULT_CHUNK};
use dca_bench::{Scale, WarmCache};
use dca_cpu::{mix, Benchmark, TraceGen};
use dca_dram_cache::{OrgKind, TagCache};
use dca_metrics::Table;

/// Set when any figure file failed to write; turns into exit code 1.
static WRITE_FAILED: AtomicBool = AtomicBool::new(false);

/// Every user-facing selection flag, in `--all` output order.
const FIGURE_FLAGS: &[&str] = &[
    "--table1",
    "--table2",
    "--fig7",
    "--fig8",
    "--fig9",
    "--fig10",
    "--fig11",
    "--fig12",
    "--fig13",
    "--fig14",
    "--fig15",
    "--fig16",
    "--fig17",
    "--fig18",
    "--fig19",
    "--ff",
    "--mainmem",
    "--designs",
];

fn usage() -> String {
    format!(
        "usage: figures [--all] [{}] [--jobs N] [--chunk M]\n\
         \x20      figures [figure flags] --serve <addr> [--jobs N] [--chunk M]\n\
         \x20      figures --agent <addr> [--jobs N]\n\
         \x20      figures --worker --job <id> [--job <id> ...]\n\
         \x20      figures --worker --serve\n\
         \n\
         \x20 --all          regenerate everything (default with no figure flags)\n\
         \x20 --jobs N       run through a persistent pool of N supervised workers\n\
         \x20                (with --serve/--agent: local worker count, default\n\
         \x20                available parallelism)\n\
         \x20 --chunk M      mixes per sharded job (default {DEFAULT_CHUNK})\n\
         \x20 --serve <addr> fabric coordinator: lease jobs to TCP agents, journal\n\
         \x20                transitions for crash-exact resume, fall back to local\n\
         \x20                workers when no agent is live\n\
         \x20 --agent <addr> fabric agent: drain coordinator jobs through a local\n\
         \x20                worker pool (no figure flags; scale must match)\n\
         \x20 --worker       worker mode (internal)\n\
         \x20 --job <id>     a job the worker executes, one partial each (repeatable)\n\
         \x20 --serve        (with --worker) RUN/EXIT over stdin, frames over stdout\n\
         \n\
         exit codes:\n\
         \x20   0  ok — every requested figure written\n\
         \x20   1  hard error (bad environment, unwritable results; --agent:\n\
         \x20      coordinator unreachable or handshake rejected)\n\
         \x20   2  usage\n\
         \x20   3  degraded — quarantined jobs (see results/partials/\n\
         \x20      quarantine.json); affected cells render as \"—\"\n\
         \x20 130  interrupted — in-flight jobs drained and flushed; re-run the\n\
         \x20      same command (same dir/addr for --serve) to resume\n\
         \n\
         environment: DCA_FULL, DCA_INSTS, DCA_MIXES, DCA_WARMUP, DCA_WARM*,\n\
         \x20 DCA_JOB_TIMEOUT_MS, DCA_JOB_ATTEMPTS, DCA_RETRY_BACKOFF_MS,\n\
         \x20 DCA_HEARTBEAT_MS, DCA_HEARTBEAT_TIMEOUT_MS, DCA_POOL_INFLIGHT,\n\
         \x20 DCA_FAULT_PLAN, DCA_FABRIC_GRACE_MS, DCA_AGENT_RETRY_MS",
        FIGURE_FLAGS.join("] [")
    )
}

struct Cli {
    /// Selected figure flags (without `--`); empty means all.
    figures: Vec<String>,
    /// Pool worker count; `None` is the serial in-process path.
    jobs: Option<usize>,
    /// Mixes per sharded job.
    chunk: usize,
    /// Worker mode: the jobs to drain.
    worker_jobs: Vec<String>,
    /// Pool-worker serve loop (`--worker --serve`).
    serve: bool,
    /// Fabric coordinator listen address (`--serve <addr>`).
    serve_addr: Option<String>,
    /// Fabric agent: coordinator address (`--agent <addr>`).
    agent_addr: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        figures: Vec::new(),
        jobs: None,
        chunk: DEFAULT_CHUNK,
        worker_jobs: Vec::new(),
        serve: false,
        serve_addr: None,
        agent_addr: None,
    };
    let mut all = false;
    let mut worker = false;
    let mut it = args.iter().peekable();
    let value_of = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                    flag: &str,
                    inline: Option<&str>|
     -> Result<String, String> {
        if let Some(v) = inline {
            return Ok(v.to_string());
        }
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v)),
            None => (arg.as_str(), None),
        };
        // Only --job/--jobs/--chunk take a value; an inline `=value`
        // on any other flag is a typo'd invocation, not a selection.
        let no_value = |flag: &str| -> Result<(), String> {
            match inline {
                Some(v) => Err(format!("{flag} takes no value, got {flag}={v:?}")),
                None => Ok(()),
            }
        };
        match flag {
            "--all" => {
                no_value("--all")?;
                all = true;
            }
            "--worker" => {
                no_value("--worker")?;
                worker = true;
            }
            "--serve" => {
                // Two spellings: bare `--worker --serve` is the pool
                // worker's stdin/stdout loop; `--serve <addr>` is the
                // fabric coordinator. A following token that is not a
                // flag is the listen address.
                let addr = match inline {
                    Some(v) => Some(v.to_string()),
                    None => match it.peek() {
                        Some(next) if !next.starts_with("--") => it.next().cloned(),
                        _ => None,
                    },
                };
                match addr {
                    Some(a) => {
                        if cli.serve_addr.is_some() {
                            return Err("--serve given twice".to_string());
                        }
                        cli.serve_addr = Some(a);
                    }
                    None => cli.serve = true,
                }
            }
            "--agent" => {
                let v = value_of(&mut it, "--agent", inline)?;
                if cli.agent_addr.is_some() {
                    return Err("--agent given twice".to_string());
                }
                cli.agent_addr = Some(v);
            }
            "--job" => cli.worker_jobs.push(value_of(&mut it, "--job", inline)?),
            "--jobs" => {
                let v = value_of(&mut it, "--jobs", inline)?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs wants a worker count >= 1, got {v:?}"))?;
                cli.jobs = Some(n);
            }
            "--chunk" => {
                let v = value_of(&mut it, "--chunk", inline)?;
                cli.chunk = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--chunk wants a size >= 1, got {v:?}"))?;
            }
            f if FIGURE_FLAGS.contains(&f) => {
                no_value(f)?;
                cli.figures.push(f.trim_start_matches("--").to_string())
            }
            f => return Err(format!("unrecognized flag {f:?}")),
        }
    }
    if cli.serve && !worker {
        return Err("--serve requires --worker".to_string());
    }
    if cli.serve && !cli.worker_jobs.is_empty() {
        return Err("--serve and --job are mutually exclusive".to_string());
    }
    if worker && !cli.serve && cli.worker_jobs.is_empty() {
        return Err("--worker needs --serve or at least one --job".to_string());
    }
    if !worker && !cli.worker_jobs.is_empty() {
        return Err("--job requires --worker".to_string());
    }
    if worker && (all || !cli.figures.is_empty() || cli.jobs.is_some()) {
        return Err("--worker takes no figure selection or --jobs".to_string());
    }
    if cli.serve_addr.is_some() && (worker || cli.serve || !cli.worker_jobs.is_empty()) {
        return Err("--serve <addr> excludes --worker and --job".to_string());
    }
    if let Some(addr) = &cli.agent_addr {
        if worker || cli.serve || !cli.worker_jobs.is_empty() || cli.serve_addr.is_some() {
            return Err("--agent excludes --worker, --job and --serve".to_string());
        }
        if all || !cli.figures.is_empty() {
            return Err(format!(
                "--agent {addr} takes no figure selection (the coordinator owns the plan)"
            ));
        }
    }
    if all {
        cli.figures.clear();
    }
    Ok(cli)
}

fn wanted(cli: &Cli, flag: &str) -> bool {
    cli.figures.is_empty() || cli.figures.iter().any(|f| f == flag)
}

/// Worker count when `--jobs` is not given in a fabric role.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Write one figure to stdout and `results/<name>.{md,csv,json}`.
/// A failed write is an error on stderr and a non-zero process exit —
/// never a silently missing file.
fn out(name: &str, title: &str, table: &Table) {
    let md = format!("# {title}\n\n{}\n", table.to_markdown());
    println!("\n== {title} ==\n{}", table.to_markdown());
    let results = Path::new("results");
    for (file, content) in [
        (format!("{name}.md"), md),
        (format!("{name}.csv"), table.to_csv()),
        (format!("{name}.json"), table.to_json(title)),
    ] {
        let path = results.join(file);
        if let Err(e) = fs::write(&path, &content) {
            eprintln!("figures: error: cannot write {}: {e}", path.display());
            WRITE_FAILED.store(true, Ordering::Relaxed);
        }
    }
}

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Table I: the thirty 4-core mixes.
fn table1() {
    let mut t = Table::new(vec!["mix", "benchmarks"]);
    for id in 1..=30 {
        t.row(vec![id.to_string(), mix(id).name()]);
    }
    out("table1", "Table I — workload groupings", &t);
}

/// Table II: system parameters as configured.
fn table2() {
    let cfg = SystemConfig::paper(Design::Dca, OrgKind::paper_set_assoc());
    let t_ = cfg.timing;
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec!["processor", "4 GHz, x86, 192 ROB, 8-wide"]);
    t.row(vec!["L1 I/D", "32KB/2-way, 2 cycles, private"]);
    t.row(vec!["L2", "8MB, 20 cycles, shared"]);
    t.row(vec!["L3", "DRAM cache, 256MB (240MB data), 1/15-way"]);
    t.row(vec![
        "tRCD-tCAS-tRP-tRAS".to_string(),
        format!(
            "{}-{}-{}-{} ns",
            t_.t_rcd.as_ns_f64(),
            t_.t_cas.as_ns_f64(),
            t_.t_rp.as_ns_f64(),
            t_.t_ras.as_ns_f64()
        ),
    ]);
    t.row(vec![
        "tWTR-tRTP-tRTW".to_string(),
        format!(
            "{}-{}-{} ns",
            t_.t_wtr.as_ns_f64(),
            t_.t_rtp.as_ns_f64(),
            t_.t_rtw.as_ns_f64()
        ),
    ]);
    t.row(vec![
        "tWR-tBURST".to_string(),
        format!("{}-{} ns", t_.t_wr.as_ns_f64(), t_.t_burst.as_ns_f64()),
    ]);
    t.row(vec![
        "organisation".to_string(),
        format!(
            "{} banks/rank, {} rank/ch, {} channels, 4KB row, RoBaRaChCo, open page",
            cfg.dram_org.banks_per_rank, cfg.dram_org.ranks, cfg.dram_org.channels
        ),
    ]);
    t.row(vec![
        "read queue".to_string(),
        format!(
            "{} entries/ch (32 for ROD); DCA flush 75%/85%; BLISS",
            cfg.read_q_cap
        ),
    ]);
    t.row(vec![
        "write queue".to_string(),
        format!(
            "{} entries/ch (96 for ROD); flush 50%/85%; BLISS",
            cfg.write_q_cap
        ),
    ]);
    t.row(vec!["memory latency", "50 ns + 2 GHz x 64-bit bus"]);
    out(
        "table2",
        "Table II — system and stacked-DRAM parameters",
        &t,
    );
}

/// Fig 7: service-order narrative for the three designs (abstract study).
fn fig7() {
    let mut t = Table::new(vec![
        "design",
        "first accesses issued (role/class, ! = row conflict)",
    ]);
    for design in Design::ALL {
        let mut cfg = SystemConfig::paper(design, OrgKind::paper_set_assoc());
        cfg.record_timeline = true;
        cfg.target_insts = 40_000;
        cfg.warmup_ops = 400_000;
        let r = System::new(cfg, &[Benchmark::Libquantum, Benchmark::Lbm]).run();
        let tl = r.timeline.expect("timeline");
        let line: Vec<String> = tl
            .entries()
            .iter()
            .take(10)
            .map(|e| {
                format!(
                    "{:?}/{:?}{}",
                    e.role,
                    e.class,
                    if e.outcome.is_conflict() { "!" } else { "" }
                )
            })
            .collect();
        t.row(vec![design.label().to_string(), line.join(" → ")]);
    }
    out("fig7", "Fig 7 — CD vs ROD vs DCA service behaviour", &t);
}

/// Fig 18: DRAM tag accesses vs tag-cache size, normalized to no tag
/// cache (offline study over the set-access stream, as in ATCache \[4\]).
fn fig18(scale: &Scale) {
    let geom = dca_dram_cache::CacheGeometry::paper(
        OrgKind::paper_set_assoc(),
        dca_dram::MappingScheme::Direct,
    );
    // Build the set-access stream a mix presents to the cache.
    let m = mix(scale.mixes[0]);
    let mut gens: Vec<TraceGen> = m
        .benches
        .iter()
        .enumerate()
        .map(|(i, b)| TraceGen::new(b.profile(), (i as u64 + 1) << 26, 7))
        .collect();
    let ops = scale.insts.max(200_000);
    let mut requests: Vec<u64> = Vec::with_capacity(ops as usize * 4);
    for _ in 0..ops {
        for g in gens.iter_mut() {
            requests.push(geom.place(g.next_op().block).set);
        }
    }
    let mut t = Table::new(vec!["tag cache size", "DRAM tag accesses (normalized)"]);
    t.row(vec!["none".to_string(), fmt(1.0)]);
    for kb in [24usize, 48, 96, 192] {
        let mut tc = TagCache::new(kb * 1024, 1);
        for (i, &set) in requests.iter().enumerate() {
            tc.access(set, i % 3 == 0);
        }
        t.row(vec![
            format!("{kb} KB"),
            fmt(tc.stats().dram_tag_accesses() as f64 / requests.len() as f64),
        ]);
    }
    out(
        "fig18",
        "Fig 18 — DRAM tag accesses vs SRAM tag-cache size (normalized to no tag cache)",
        &t,
    );
}

/// Cell builder that renders a missing value as an explicit hole
/// (`—`) and counts it, so a degraded run shows exactly which numbers
/// a quarantined job took with it.
struct Holes(usize);

impl Holes {
    fn cell(&mut self, v: Option<String>) -> String {
        v.unwrap_or_else(|| {
            self.0 += 1;
            "—".to_string()
        })
    }
}

/// Render one planned (shardable) figure from the merged store,
/// returning how many cells had to be rendered as holes. The unit
/// layouts here mirror `shard::figure_plan` exactly.
///
/// With `degraded` unset (the serial path, or a pool run with nothing
/// quarantined) a missing summary is a hard error — it can only mean a
/// planner/renderer mismatch, and silence would hide the bug. With
/// `degraded` set, missing summaries become holes.
fn render(
    plan: &FigurePlan,
    store: &PartialStore,
    chunk: usize,
    degraded: bool,
) -> Result<usize, String> {
    let sm = |i: usize| -> Result<Option<dca_bench::DesignSummary>, String> {
        match store.summary(&plan.units[i], &plan.mixes, chunk) {
            Ok(s) => Ok(Some(s)),
            Err(_) if degraded => Ok(None),
            Err(e) => Err(e),
        }
    };
    let mut h = Holes(0);
    match plan.name {
        "fig8" | "fig9" => {
            // Per org: [CD-base, then one unit per Design::ALL entry].
            let stride = 1 + Design::ALL.len();
            let mut header = vec!["organisation".to_string()];
            header.extend(Design::ALL.iter().map(|d| d.label().to_string()));
            let mut t = Table::new(header);
            for oi in 0..2 {
                let base = sm(oi * stride)?;
                let mut cells = vec![plan.units[oi * stride].spec.org.label().to_string()];
                for d in 0..Design::ALL.len() {
                    let x = sm(oi * stride + 1 + d)?;
                    cells.push(
                        h.cell(
                            base.as_ref()
                                .zip(x.as_ref())
                                .map(|(b, x)| fmt(x.ws_geomean() / b.ws_geomean())),
                        ),
                    );
                }
                t.row(cells);
            }
            let title = if plan.name == "fig9" {
                "Fig 9 — average speedup with XOR remapping (normalized to CD without remapping)"
            } else {
                "Fig 8 — average normalized weighted speedup"
            };
            out(plan.name, title, &t);
        }
        "fig10" | "fig11" => {
            // [CD, ROD, DCA, XOR+CD, XOR+ROD, XOR+DCA].
            let summaries: Vec<_> = (0..plan.units.len()).map(sm).collect::<Result<_, _>>()?;
            let mut header = vec!["mix".to_string()];
            header.extend(plan.units.iter().map(|u| u.label.clone()));
            let mut t = Table::new(header);
            for (i, &mid) in plan.mixes.iter().enumerate() {
                let mut row = vec![mix(mid).name()];
                for x in &summaries {
                    row.push(
                        h.cell(
                            summaries[0]
                                .as_ref()
                                .zip(x.as_ref())
                                .map(|(b, x)| fmt(x.ws[i] / b.ws[i])),
                        ),
                    );
                }
                t.row(row);
            }
            let title = if plan.name == "fig10" {
                "Fig 10 — per-workload speedup (set-associative)"
            } else {
                "Fig 11 — per-workload speedup (direct-mapped)"
            };
            out(plan.name, title, &t);
        }
        "fig12" | "fig13" => {
            // [CD-base, CD, ROD, DCA, XOR+CD, XOR+ROD, XOR+DCA].
            let base = sm(0)?;
            let mut t = Table::new(vec![
                "design",
                "mean miss latency (ns)",
                "improvement vs CD",
            ]);
            for i in 1..plan.units.len() {
                let x = sm(i)?;
                t.row(vec![
                    plan.units[i].label.clone(),
                    h.cell(x.as_ref().map(|x| format!("{:.1}", x.mean_latency()))),
                    h.cell(
                        base.as_ref()
                            .zip(x.as_ref())
                            .map(|(b, x)| fmt(b.mean_latency() / x.mean_latency())),
                    ),
                ]);
            }
            let title = if plan.name == "fig12" {
                "Fig 12 — L2 miss latency improvement (set-associative)"
            } else {
                "Fig 13 — L2 miss latency improvement (direct-mapped)"
            };
            out(plan.name, title, &t);
        }
        "fig14" | "fig15" => {
            let mut t = Table::new(vec!["design", "accesses/turnaround"]);
            for i in 0..plan.units.len() {
                let x = sm(i)?;
                t.row(vec![
                    plan.units[i].label.clone(),
                    h.cell(x.as_ref().map(|x| format!("{:.2}", x.mean_apt()))),
                ]);
            }
            let title = if plan.name == "fig14" {
                "Fig 14 — accesses per turnaround (set-associative)"
            } else {
                "Fig 15 — accesses per turnaround (direct-mapped)"
            };
            out(plan.name, title, &t);
        }
        "fig16" | "fig17" => {
            // Pairs: [CD, XOR+CD, ROD, XOR+ROD, ...] — one per design.
            let mut t = Table::new(vec!["design", "no remap", "with remap"]);
            for pair in 0..Design::ALL.len() {
                let plain = sm(pair * 2)?;
                let remap = sm(pair * 2 + 1)?;
                t.row(vec![
                    plan.units[pair * 2].label.clone(),
                    h.cell(plain.as_ref().map(|p| fmt(p.mean_row_hit()))),
                    h.cell(remap.as_ref().map(|r| fmt(r.mean_row_hit()))),
                ]);
            }
            let title = if plan.name == "fig16" {
                "Fig 16 — row buffer hit rate (set-associative)"
            } else {
                "Fig 17 — row buffer hit rate (direct-mapped)"
            };
            out(plan.name, title, &t);
        }
        "fig19" => {
            // [LEE+CD, LEE+ROD, LEE+DCA].
            let base = sm(0)?;
            let mut t = Table::new(vec!["design (with Lee writeback)", "speedup vs LEE+CD"]);
            t.row(vec!["LEE+CD".to_string(), fmt(1.0)]);
            for i in 1..plan.units.len() {
                let x = sm(i)?;
                t.row(vec![
                    plan.units[i].label.clone(),
                    h.cell(
                        base.as_ref()
                            .zip(x.as_ref())
                            .map(|(b, x)| fmt(x.ws_geomean() / b.ws_geomean())),
                    ),
                ]);
            }
            out(
                "fig19",
                "Fig 19 — speedup under DRAM-aware writeback (direct-mapped)",
                &t,
            );
        }
        "ablation_ff" => {
            // [FF-1 .. FF-5]; normalize to FF-4.
            let base = sm(3)?;
            let mut t = Table::new(vec!["flushing factor", "WS geomean (normalized to FF-4)"]);
            for i in 0..plan.units.len() {
                let x = sm(i)?;
                t.row(vec![
                    plan.units[i].label.clone(),
                    h.cell(
                        base.as_ref()
                            .zip(x.as_ref())
                            .map(|(b, x)| fmt(x.ws_geomean() / b.ws_geomean())),
                    ),
                ]);
            }
            out(
                "ablation_ff",
                "§IV-C — flushing-factor sensitivity (DCA, set-associative)",
                &t,
            );
        }
        "mainmem" => {
            // Pairs per backend: [CD, DCA]. Absolute WS geomeans (each
            // normalised to its own backend's alone-IPC baseline), plus
            // DCA/CD to show whether the paper's edge survives a real
            // (or slower) backing store, plus the CD miss latency the
            // backend implies.
            let mut t = Table::new(vec![
                "main memory",
                "CD WS",
                "DCA WS",
                "DCA/CD",
                "CD miss ns",
                "DCA miss ns",
            ]);
            for pair in 0..plan.units.len() / 2 {
                let cd = sm(pair * 2)?;
                let dca = sm(pair * 2 + 1)?;
                let backend = plan.units[pair * 2]
                    .label
                    .split('+')
                    .next()
                    .unwrap_or("?")
                    .to_string();
                t.row(vec![
                    backend,
                    h.cell(cd.as_ref().map(|c| fmt(c.ws_geomean()))),
                    h.cell(dca.as_ref().map(|d| fmt(d.ws_geomean()))),
                    h.cell(
                        cd.as_ref()
                            .zip(dca.as_ref())
                            .map(|(c, d)| fmt(d.ws_geomean() / c.ws_geomean())),
                    ),
                    h.cell(cd.as_ref().map(|c| format!("{:.1}", c.mean_latency()))),
                    h.cell(dca.as_ref().map(|d| format!("{:.1}", d.mean_latency()))),
                ]);
            }
            out(
                "mainmem",
                "Main-memory sensitivity — flat vs cycle-level DDR4 backend (direct-mapped)",
                &t,
            );
        }
        "designs" => {
            // Blocks of Design::ALL per (backend, policy) pair — see
            // shard::figure_plan. One row per pair: absolute WS per
            // design plus BAN/DCA (does fill economy pay off?).
            let n = Design::ALL.len();
            let mut header = vec!["main memory".to_string(), "policy".to_string()];
            header.extend(Design::ALL.iter().map(|d| format!("{} WS", d.label())));
            header.push("BAN/DCA".to_string());
            let mut t = Table::new(header);
            for block in 0..plan.units.len() / n {
                let mut parts = plan.units[block * n].label.split('+');
                let backend = parts.next().unwrap_or("?").to_string();
                let policy = parts.next().unwrap_or("?").to_string();
                let designs: Vec<_> = (0..n)
                    .map(|d| sm(block * n + d))
                    .collect::<Result<_, _>>()?;
                let mut row = vec![backend, policy];
                for x in &designs {
                    row.push(h.cell(x.as_ref().map(|x| fmt(x.ws_geomean()))));
                }
                let dca = designs
                    .iter()
                    .zip(&plan.units[block * n..(block + 1) * n])
                    .find(|(_, u)| u.label.ends_with("+DCA"))
                    .and_then(|(s, _)| s.as_ref());
                let ban = designs
                    .iter()
                    .zip(&plan.units[block * n..(block + 1) * n])
                    .find(|(_, u)| u.label.ends_with("+BAN"))
                    .and_then(|(s, _)| s.as_ref());
                row.push(
                    h.cell(
                        dca.zip(ban)
                            .map(|(d, b)| fmt(b.ws_geomean() / d.ws_geomean())),
                    ),
                );
                t.row(row);
            }
            out(
                "designs",
                "Design comparison — CD/ROD/DCA/BAN × replacement policy × main-memory tier \
                 (direct-mapped)",
                &t,
            );
        }
        other => return Err(format!("no renderer for figure {other:?}")),
    }
    Ok(h.0)
}

/// Which shardable figures a selection pulls in, in `--all` order.
/// `shard::figure_plan` is the single authority on shardability: names
/// it declines (tables, fig7, fig18 — the local figures) are dropped
/// by the `filter_map` at the call site.
fn planned_figures(cli: &Cli) -> Vec<&'static str> {
    FIGURE_FLAGS
        .iter()
        .map(|flag| flag.trim_start_matches("--"))
        .filter(|short| wanted(cli, short))
        .map(|short| if short == "ff" { "ablation_ff" } else { short })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("figures: error: {e}\n{}", usage());
            std::process::exit(2);
        }
    };

    // Pool-worker mode: serve RUN/EXIT commands forever (never
    // returns).
    if cli.serve {
        shard::pool::serve();
    }

    // Fabric agent: connect to the coordinator and drain its jobs
    // through a local worker pool. Everything figure-shaped (plans,
    // scale banner, results/) belongs to the coordinator.
    if let Some(addr) = &cli.agent_addr {
        let workers = cli.jobs.unwrap_or_else(default_workers);
        std::process::exit(shard::agent::run(addr, workers));
    }

    // One-shot worker mode: drain the given jobs (one partial each),
    // no banner, no figure output.
    if !cli.worker_jobs.is_empty() {
        if let Err(e) = shard::run_worker_many(&cli.worker_jobs) {
            eprintln!("figures worker: error: {e}");
            std::process::exit(1);
        }
        return;
    }

    // The output directory is load-bearing for every figure — create it
    // up front and refuse to run if that fails, instead of quietly
    // producing nothing.
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("figures: error: cannot create results/: {e}");
        std::process::exit(1);
    }

    let scale = Scale::from_env();
    eprintln!(
        "figures: insts/core={}, warmup/core={}, mixes={:?} (set DCA_FULL=1 for paper scale; \
         DCA_WARM=0 for cold warm-ups; DCA_WARM_PERSIST=1 to persist under results/warm/; \
         --jobs N to shard across processes)",
        scale.insts, scale.warmup, scale.mixes
    );
    let t0 = Instant::now();

    // Local (unsharded) figures.
    if wanted(&cli, "table1") {
        table1();
    }
    if wanted(&cli, "table2") {
        table2();
    }
    if wanted(&cli, "fig7") {
        fig7();
    }
    if wanted(&cli, "fig18") {
        fig18(&scale);
    }

    // Shardable figures: plan → execute (inline or across workers) →
    // merge → render, one shared pipeline for both modes. A name that
    // neither plans nor appears in the local list above is a wiring
    // bug — fail loudly rather than silently rendering nothing.
    const LOCAL_FIGURES: &[&str] = &["table1", "table2", "fig7", "fig18"];
    let mut plans: Vec<FigurePlan> = Vec::new();
    for name in planned_figures(&cli) {
        match shard::figure_plan(name, &scale) {
            Some(plan) => plans.push(plan),
            None => assert!(
                LOCAL_FIGURES.contains(&name),
                "figure {name} has neither a shard plan nor a local renderer"
            ),
        }
    }
    let mut degraded = false;
    if !plans.is_empty() {
        let jobs = shard::plan_jobs(&plans, cli.chunk);
        let pooled = cli.jobs.is_some() || cli.serve_addr.is_some();
        let store = if pooled {
            shard::supervisor::install_signal_handlers();
            // Partials left by an *older plan* (different scale,
            // chunking, or figure set) would linger forever; prune
            // anything the current plan cannot consume.
            let valid: HashSet<String> = jobs.iter().map(|j| j.id.clone()).collect();
            let pruned = shard::prune_orphans(&valid);
            if pruned > 0 {
                eprintln!("figures: pruned {pruned} orphan partial(s) left by a previous plan");
            }
            let workers = cli.jobs.unwrap_or_else(default_workers);
            let (outcome, mode) = match &cli.serve_addr {
                Some(addr) => (
                    shard::server::serve_run(addr, &jobs, workers, &scale),
                    format!("fabric coordinator on {addr}"),
                ),
                None => (
                    shard::supervisor::Supervisor::new(workers).run(&jobs),
                    format!("{workers} workers"),
                ),
            };
            match outcome {
                Ok(outcome) => {
                    let s = outcome.stats;
                    eprintln!(
                        "figures: pool: {} jobs run, {} reused from prior partials, \
                         {} retried, {} quarantined, {} worker respawns, {mode}",
                        s.run, s.reused, s.retried, s.quarantined, s.respawns
                    );
                    if outcome.drained {
                        eprintln!(
                            "figures: interrupted; in-flight jobs were finished and \
                             flushed — re-run the same command to resume"
                        );
                        std::process::exit(130);
                    }
                    if !outcome.quarantined.is_empty() {
                        degraded = true;
                        eprintln!(
                            "figures: error: {} job(s) quarantined after repeated \
                             failures (details in {}); affected cells render as \"—\"",
                            outcome.quarantined.len(),
                            shard::quarantine_path().display()
                        );
                    }
                    outcome.store
                }
                Err(e) => {
                    eprintln!("figures: error: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            shard::execute_inline(&jobs)
        };
        let mut holes = 0;
        for plan in &plans {
            match render(plan, &store, cli.chunk, degraded) {
                Ok(n) => holes += n,
                Err(e) => {
                    eprintln!("figures: error: {e}");
                    std::process::exit(1);
                }
            }
        }
        if holes > 0 {
            eprintln!("figures: {holes} cell(s) rendered as holes due to quarantined jobs");
        }
    }

    // Sweep wall-clock trajectory: how much warm-up sharing saved. Each
    // cache *build* is a warm-up actually paid; each *hit* is one a cold
    // harness would have re-run. (perf_smoke measures the cold-vs-warm
    // ratio under controlled conditions and records it, with this same
    // warm path asserted bit-identical to cold, in BENCH_engine.json.)
    let s = WarmCache::global().stats();
    eprintln!(
        "figures: wall-clock {:.1}s; warm cache: {} warm-ups built, {} reused, {} disk-loaded, \
         {} lock-waits ({} warm-ups avoided vs cold harness)",
        t0.elapsed().as_secs_f64(),
        s.builds,
        s.hits,
        s.disk_loads,
        s.lock_waits,
        s.hits + s.disk_loads
    );
    if WRITE_FAILED.load(Ordering::Relaxed) {
        std::process::exit(1);
    }
    if degraded {
        std::process::exit(3);
    }
}
