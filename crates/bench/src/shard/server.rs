//! Coordinator side of the sweep fabric: `figures --serve <addr>`.
//!
//! The server owns the job queue and leases work to authenticated
//! agents over [`net`] frames. Robustness is layered:
//!
//! * **Leases.** A dispatched job is owned by exactly one connection
//!   and its lease is renewed by forwarded worker heartbeats. A lease
//!   with no progress inside `DCA_JOB_TIMEOUT_MS`, an agent silent for
//!   `DCA_HEARTBEAT_TIMEOUT_MS`, or any disconnect/torn/garbage frame
//!   forfeits the lease: the job re-enters the PR-6 retry machinery
//!   (deterministic backoff, `DCA_JOB_ATTEMPTS`, quarantine). This is
//!   at-least-once dispatch — safe because partials are byte-exact and
//!   content-addressed by job id, so a duplicate completion merges
//!   idempotently.
//! * **Write-ahead journal.** Every dispatch/complete/quarantine
//!   transition is appended to [`journal`] before it takes effect, so
//!   a coordinator killed mid-sweep and restarted resumes with attempt
//!   counts and quarantine decisions intact (partials on disk already
//!   carry the results).
//! * **Verified transport.** Completions arrive as digest-trailed
//!   frames and the partial text is re-validated with
//!   [`decode_partial`](super::decode_partial) before it is persisted
//!   (atomically) and merged — a lying frame costs the connection, not
//!   the sweep.
//! * **Graceful degradation.** SIGINT drains leases and exits 130
//!   (resumable); a fabric with zero live agents for
//!   `DCA_FABRIC_GRACE_MS` (default 3000) falls back to running the
//!   remainder on local pool workers, so `--serve` is never weaker
//!   than `--jobs`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use super::journal::{Event as Jev, Journal};
use super::net::{self, Msg, RecvError};
use super::supervisor::{
    retry_delay, stop_requested, write_quarantine, Outcome, PoolConfig, PoolStats, Quarantined,
    Supervisor,
};
use super::{decode_partial, load_existing_partial, write_partial_atomic, Job, PartialStore};

/// How long a fabric may sit with zero live agents and undone work
/// before the coordinator falls back to local workers
/// (`DCA_FABRIC_GRACE_MS`, default 3000).
fn fabric_grace() -> Duration {
    let ms = std::env::var("DCA_FABRIC_GRACE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(3_000);
    Duration::from_millis(ms)
}

/// Events flowing from per-connection reader threads (and the accept
/// thread) into the control loop.
enum Ev {
    /// A new TCP connection.
    Conn(TcpStream),
    /// One decoded message from connection `conn`.
    Msg { conn: u64, msg: Msg },
    /// Connection `conn` is unusable (EOF, torn or garbage frame,
    /// undecodable message).
    Gone { conn: u64, why: String },
}

/// One connected agent.
struct AgentConn {
    stream: TcpStream,
    peer: String,
    /// Concurrent jobs granted (0 until HELLO is accepted).
    slots: usize,
    /// HELLO accepted.
    ready: bool,
    /// Leases currently held.
    leases: usize,
    /// Last frame of any kind (heartbeat-silence basis).
    last_frame_at: Instant,
}

/// One leased job.
struct Lease {
    job: Job,
    attempt: u32,
    conn: u64,
    /// Last forwarded `progress` value.
    progress: u64,
    /// When `progress` last changed (job-deadline basis).
    progress_at: Instant,
    since: Instant,
}

/// Run `jobs` over the fabric, serving on `addr`. `local_workers`
/// sizes the zero-agent fallback pool. Hard `Err` only for
/// environment-level failures (cannot bind, cannot journal); per-job
/// failures land in [`Outcome::quarantined`].
pub fn serve_run(
    addr: &str,
    jobs: &[Job],
    local_workers: usize,
    scale: &crate::Scale,
) -> Result<Outcome, String> {
    let cfg = PoolConfig::from_env(local_workers);
    let expected_config = net::config_token(scale);
    let replay = super::journal::replay();

    let mut state = ServeState {
        cfg: &cfg,
        expected_config,
        journal: None,
        by_id: jobs.iter().map(|j| (j.id.clone(), j.clone())).collect(),
        queue: VecDeque::new(),
        delayed: Vec::new(),
        agents: HashMap::new(),
        leases: HashMap::new(),
        completed: HashSet::new(),
        store: PartialStore::default(),
        stats: PoolStats::default(),
        quarantined: Vec::new(),
        drained: false,
        last_agent_at: Instant::now(),
    };

    for job in jobs {
        if let Some(result) = load_existing_partial(job) {
            state.completed.insert(job.id.clone());
            state.store.insert(job, result);
            state.stats.reused += 1;
        } else if let Some((_, attempts, error)) =
            replay.quarantined.iter().find(|(id, _, _)| *id == job.id)
        {
            // A quarantine decision is final within a sweep; restore
            // the hole instead of burning attempts again.
            state.stats.quarantined += 1;
            state.quarantined.push(Quarantined {
                job_id: job.id.clone(),
                attempts: *attempts,
                error: error.clone(),
                stderr: vec![],
            });
        } else {
            let attempt = replay.attempts.get(&job.id).copied().unwrap_or(0);
            state.queue.push_back((job.clone(), attempt));
        }
    }

    if state.queue.is_empty() {
        // Everything reused or pre-quarantined: never open a port for
        // nothing.
        write_quarantine(&state.quarantined)?;
        super::journal::remove();
        return Ok(state.into_outcome());
    }

    state.journal = Some(Journal::open()?);
    let listener = bind_with_retry(addr)?;
    eprintln!(
        "figures: fabric: serving {} job(s) on {}",
        state.queue.len(),
        listener
            .local_addr()
            .map_or_else(|_| addr.to_string(), |a| a.to_string())
    );

    let (tx, rx) = mpsc::channel();
    {
        let tx = tx.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                if tx.send(Ev::Conn(stream)).is_err() {
                    return;
                }
            }
        });
    }

    state.control_loop(&tx, &rx)?;
    state.shutdown_agents();
    write_quarantine(&state.quarantined)?;
    if state.drained {
        // Keep the journal: a re-run resumes attempt counts exactly.
        eprintln!("figures: fabric: drained; journal kept for resume");
    } else {
        super::journal::remove();
    }
    Ok(state.into_outcome())
}

/// Bind one resolved address with `SO_REUSEADDR`, so a restarted
/// coordinator reclaims its port while its previous life's accepted
/// connections still sit in TIME_WAIT (up to a minute on Linux).
/// `std::net` offers no way to set the option before binding, so this
/// goes through raw libc calls in the same spirit as
/// `install_signal_handlers`; non-Linux targets and IPv6 addresses
/// fall back to a plain bind and lean on the retry loop in
/// [`bind_with_retry`].
fn bind_reuse(sa: &std::net::SocketAddr) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    if let std::net::SocketAddr::V4(v4) = sa {
        use std::os::fd::FromRawFd;
        extern "C" {
            fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
            fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
            fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
            fn listen(fd: i32, backlog: i32) -> i32;
            fn close(fd: i32) -> i32;
        }
        const AF_INET: i32 = 2;
        const SOCK_STREAM: i32 = 1;
        const SOL_SOCKET: i32 = 1;
        const SO_REUSEADDR: i32 = 2;
        // struct sockaddr_in: family, big-endian port, big-endian
        // address, 8 bytes of padding.
        let mut sin = [0u8; 16];
        sin[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
        sin[2..4].copy_from_slice(&v4.port().to_be_bytes());
        sin[4..8].copy_from_slice(&v4.ip().octets());
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            let one: i32 = 1;
            let mut rc = setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4);
            if rc == 0 {
                rc = bind(fd, sin.as_ptr(), sin.len() as u32);
            }
            if rc == 0 {
                rc = listen(fd, 64);
            }
            if rc != 0 {
                let e = std::io::Error::last_os_error();
                close(fd);
                return Err(e);
            }
            return Ok(TcpListener::from_raw_fd(fd));
        }
    }
    TcpListener::bind(sa)
}

/// Resolve and bind, retrying `EADDRINUSE` briefly — a coordinator
/// restarted onto its old address may race lingering sockets from its
/// previous life that `SO_REUSEADDR` alone cannot clear (a listener
/// still shutting down, or a non-Linux fallback path).
fn bind_with_retry(addr: &str) -> Result<TcpListener, String> {
    use std::net::ToSocketAddrs;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut last: Option<std::io::Error> = None;
        match addr.to_socket_addrs() {
            Ok(addrs) => {
                for sa in addrs {
                    match bind_reuse(&sa) {
                        Ok(l) => return Ok(l),
                        Err(e) => last = Some(e),
                    }
                }
            }
            Err(e) => return Err(format!("cannot resolve {addr}: {e}")),
        }
        let e = last.ok_or_else(|| format!("{addr} resolves to no addresses"))?;
        if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(200));
        } else {
            return Err(format!("cannot bind {addr}: {e}"));
        }
    }
}

/// All mutable state of one `serve_run` call.
struct ServeState<'a> {
    cfg: &'a PoolConfig,
    expected_config: String,
    journal: Option<Journal>,
    by_id: HashMap<String, Job>,
    queue: VecDeque<(Job, u32)>,
    delayed: Vec<(Instant, Job, u32)>,
    agents: HashMap<u64, AgentConn>,
    leases: HashMap<String, Lease>,
    completed: HashSet<String>,
    store: PartialStore,
    stats: PoolStats,
    quarantined: Vec<Quarantined>,
    drained: bool,
    /// Last time any agent connected or disconnected (zero-agent grace
    /// basis; restarts the clock so a reconnecting agent isn't raced
    /// by the local fallback).
    last_agent_at: Instant,
}

impl ServeState<'_> {
    fn into_outcome(self) -> Outcome {
        Outcome {
            store: self.store,
            stats: self.stats,
            quarantined: self.quarantined,
            drained: self.drained,
        }
    }

    fn journal(&mut self, ev: Jev) {
        if let Some(j) = self.journal.as_mut() {
            j.append(&ev);
        }
    }

    fn pending(&self) -> usize {
        self.queue.len() + self.delayed.len()
    }

    fn control_loop(&mut self, tx: &Sender<Ev>, rx: &Receiver<Ev>) -> Result<(), String> {
        let grace = fabric_grace();
        let mut next_conn: u64 = 1;
        let mut announced_drain = false;
        loop {
            let stopping = stop_requested();
            if stopping && !announced_drain {
                announced_drain = true;
                eprintln!(
                    "figures: fabric: stop requested; draining {} leased job(s), then flushing",
                    self.leases.len()
                );
            }

            // Promote due retries.
            let now = Instant::now();
            let mut i = 0;
            while i < self.delayed.len() {
                if self.delayed[i].0 <= now {
                    let (_, job, attempt) = self.delayed.remove(i);
                    self.queue.push_back((job, attempt));
                } else {
                    i += 1;
                }
            }

            if !stopping {
                self.dispatch();
                self.maybe_local_fallback(grace)?;
            }

            if self.leases.is_empty() && (stopping || self.pending() == 0) {
                self.drained |= stopping && self.pending() > 0;
                return Ok(());
            }

            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(ev) => self.handle_event(ev, tx, &mut next_conn),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("serve_run keeps its own sender alive")
                }
            }
            while let Ok(ev) = rx.try_recv() {
                self.handle_event(ev, tx, &mut next_conn);
            }

            self.check_liveness();
        }
    }

    /// With no live agents, undone work, and the grace window spent,
    /// run the remainder on local pool workers — a fabric nobody joins
    /// must not be weaker than `--jobs`.
    fn maybe_local_fallback(&mut self, grace: Duration) -> Result<(), String> {
        if self.pending() == 0
            || !self.leases.is_empty()
            || self.agents.values().any(|a| a.ready)
            || self.last_agent_at.elapsed() < grace
        {
            return Ok(());
        }
        let mut rest: Vec<(Job, u32)> = self.queue.drain(..).collect();
        rest.extend(self.delayed.drain(..).map(|(_, j, a)| (j, a)));
        eprintln!(
            "figures: fabric: no live agents for {grace:?}; \
             running {} remaining job(s) on local workers",
            rest.len()
        );
        // The nested supervisor starts every job at attempt 0 (it has
        // its own retry budget); journal the handoff so a killed
        // coordinator still knows these jobs were dispatched.
        for (job, attempt) in &rest {
            self.journal(Jev::Dispatch {
                job: job.id.clone(),
                attempt: *attempt,
            });
        }
        let jobs: Vec<Job> = rest.into_iter().map(|(j, _)| j).collect();
        let out = Supervisor::with_config(self.cfg.clone()).run(&jobs)?;
        for job in &jobs {
            let failed = out.quarantined.iter().any(|q| q.job_id == job.id);
            if !failed && self.completed.insert(job.id.clone()) {
                self.journal(Jev::Complete {
                    job: job.id.clone(),
                });
            }
        }
        for q in &out.quarantined {
            self.journal(Jev::Quarantine {
                job: q.job_id.clone(),
                attempts: q.attempts,
                error: q.error.clone(),
            });
        }
        self.store.merge(out.store);
        self.stats.run += out.stats.run;
        self.stats.reused += out.stats.reused;
        self.stats.retried += out.stats.retried;
        self.stats.quarantined += out.stats.quarantined;
        self.stats.respawns += out.stats.respawns;
        self.quarantined.extend(out.quarantined);
        self.drained |= out.drained;
        Ok(())
    }

    /// Lease queued jobs to ready agents with free slots, most free
    /// first (spreads load across hosts of unequal size).
    fn dispatch(&mut self) {
        while !self.queue.is_empty() {
            let Some((&cid, _)) = self
                .agents
                .iter()
                .filter(|(_, a)| a.ready && a.leases < a.slots)
                .max_by_key(|(_, a)| a.slots - a.leases)
            else {
                return;
            };
            let Some((job, attempt)) = self.queue.pop_front() else {
                return;
            };
            // WAL order: journal the dispatch before the frame can
            // possibly reach an agent.
            self.journal(Jev::Dispatch {
                job: job.id.clone(),
                attempt,
            });
            let msg = Msg::Job {
                attempt,
                job_id: job.id.clone(),
            };
            let Some(agent) = self.agents.get_mut(&cid) else {
                // Selection raced with a disconnect: requeue and retry
                // the pick on the next loop iteration.
                self.queue.push_front((job, attempt));
                continue;
            };
            if net::send(&mut agent.stream, &msg).is_ok() {
                agent.leases += 1;
                let now = Instant::now();
                self.leases.insert(
                    job.id.clone(),
                    Lease {
                        job,
                        attempt,
                        conn: cid,
                        progress: 0,
                        progress_at: now,
                        since: now,
                    },
                );
            } else {
                // The frame never left: the job keeps its attempt
                // count; the connection's other leases are forfeited.
                self.queue.push_front((job, attempt));
                self.drop_conn(cid, "frame write failed", true);
                return;
            }
        }
    }

    fn handle_event(&mut self, ev: Ev, tx: &Sender<Ev>, next_conn: &mut u64) {
        match ev {
            Ev::Conn(stream) => {
                let cid = *next_conn;
                *next_conn += 1;
                let _ = stream.set_nodelay(true);
                let peer = stream
                    .peer_addr()
                    .map_or_else(|_| "?".to_string(), |a| a.to_string());
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut read_half = read_half;
                        loop {
                            match net::recv(&mut read_half) {
                                Ok(msg) => {
                                    if tx.send(Ev::Msg { conn: cid, msg }).is_err() {
                                        return;
                                    }
                                }
                                Err(RecvError::Closed) => {
                                    let _ = tx.send(Ev::Gone {
                                        conn: cid,
                                        why: "disconnected".to_string(),
                                    });
                                    return;
                                }
                                Err(e) => {
                                    let _ = tx.send(Ev::Gone {
                                        conn: cid,
                                        why: e.to_string(),
                                    });
                                    return;
                                }
                            }
                        }
                    });
                }
                self.agents.insert(
                    cid,
                    AgentConn {
                        stream,
                        peer,
                        slots: 0,
                        ready: false,
                        leases: 0,
                        last_frame_at: Instant::now(),
                    },
                );
                self.last_agent_at = Instant::now();
            }
            Ev::Msg { conn, msg } => self.handle_msg(conn, msg),
            Ev::Gone { conn, why } => self.drop_conn(conn, &why, true),
        }
    }

    fn handle_msg(&mut self, cid: u64, msg: Msg) {
        {
            let Some(agent) = self.agents.get_mut(&cid) else {
                return; // stale reader of a dropped connection
            };
            agent.last_frame_at = Instant::now();
        }
        match msg {
            Msg::Hello {
                pid,
                protocol,
                build,
                config,
                slots,
            } => self.handle_hello(cid, pid, &protocol, &build, &config, slots),
            Msg::Hb { job_id, progress } => {
                if job_id == "-" {
                    return; // idle keepalive: last_frame_at is enough
                }
                if let Some(lease) = self.leases.get_mut(&job_id) {
                    if lease.conn == cid && progress != lease.progress {
                        lease.progress = progress;
                        lease.progress_at = Instant::now();
                    }
                }
            }
            Msg::Done { job_id, partial } => self.handle_done(cid, &job_id, &partial),
            Msg::Fail { job_id, message } => {
                if self.leases.get(&job_id).is_some_and(|l| l.conn == cid) {
                    if let Some(lease) = self.release(&job_id) {
                        self.fail_job(lease.job, lease.attempt, &message);
                    }
                }
                // A FAIL for a job this connection no longer owns is a
                // stale report of a lease already forfeited: ignore.
            }
            Msg::Bye => self.drop_conn(cid, "said BYE (draining)", true),
            Msg::Welcome | Msg::Reject { .. } | Msg::Job { .. } | Msg::Exit => {
                self.drop_conn(cid, "sent a coordinator-only message", true);
            }
        }
    }

    /// Authenticate a `HELLO`: protocol, build and config token must
    /// all match, or the fabric would merge valid-looking partials
    /// from a different experiment.
    fn handle_hello(
        &mut self,
        cid: u64,
        pid: u32,
        protocol: &str,
        build: &str,
        config: &str,
        slots: usize,
    ) {
        let reason = if protocol != net::FABRIC_PROTOCOL {
            Some(format!(
                "protocol mismatch: agent {protocol}, coordinator {}",
                net::FABRIC_PROTOCOL
            ))
        } else if build != env!("CARGO_PKG_VERSION") {
            Some(format!(
                "build mismatch: agent {build}, coordinator {}",
                env!("CARGO_PKG_VERSION")
            ))
        } else if config != self.expected_config {
            Some("config mismatch: agent and coordinator scales differ".to_string())
        } else {
            None
        };
        let Some(agent) = self.agents.get_mut(&cid) else {
            return;
        };
        if let Some(reason) = reason {
            eprintln!(
                "figures: fabric: rejecting agent {} (pid {pid}): {reason}",
                agent.peer
            );
            let _ = net::send(&mut agent.stream, &Msg::Reject { reason });
            // No leases yet: drop without charging anything.
            self.drop_conn(cid, "rejected", false);
            return;
        }
        agent.ready = true;
        agent.slots = slots.max(1);
        eprintln!(
            "figures: fabric: agent {} joined (pid {pid}, {} slot(s))",
            agent.peer, agent.slots
        );
        if net::send(&mut agent.stream, &Msg::Welcome).is_err() {
            self.drop_conn(cid, "frame write failed", true);
        }
    }

    /// A completion arrived: re-validate the partial bytes, persist
    /// them atomically, merge. Duplicate completions (a forfeited
    /// lease's agent finishing anyway, then the retry finishing too)
    /// are verified-idempotent merges: the partial is byte-exact for a
    /// given job id, so the second arrival changes nothing.
    fn handle_done(&mut self, cid: u64, job_id: &str, partial: &str) {
        let Some(job) = self.by_id.get(job_id).cloned() else {
            self.drop_conn(cid, &format!("DONE for an unknown job ({job_id})"), true);
            return;
        };
        let result = match decode_partial(partial, &job) {
            Ok(r) => r,
            Err(why) => {
                self.drop_conn(cid, &format!("invalid partial for {job_id}: {why}"), true);
                return;
            }
        };
        if let Err(e) = write_partial_atomic(job_id, partial) {
            // Local disk trouble, not the agent's fault: forfeit the
            // lease into the retry machinery (a later attempt may land
            // on a healthier disk) without dropping the connection.
            let why = format!("cannot persist partial: {e}");
            eprintln!("figures: fabric: {why}");
            if let Some(lease) = self.release(job_id) {
                self.fail_job(lease.job, lease.attempt, &why);
            }
            return;
        }
        self.release(job_id);
        // A completion supersedes any pending retry of the same job.
        self.queue.retain(|(j, _)| j.id != job_id);
        self.delayed.retain(|(_, j, _)| j.id != job_id);
        if self.completed.insert(job_id.to_string()) {
            self.store.insert(&job, result);
            self.stats.run += 1;
            self.journal(Jev::Complete {
                job: job_id.to_string(),
            });
        }
    }

    /// Remove `job_id`'s lease (if any), fixing its holder's count.
    fn release(&mut self, job_id: &str) -> Option<Lease> {
        let lease = self.leases.remove(job_id)?;
        if let Some(agent) = self.agents.get_mut(&lease.conn) {
            agent.leases = agent.leases.saturating_sub(1);
        }
        Some(lease)
    }

    /// Forfeit every lease of a connection and forget it. `charge`
    /// decides whether the forfeits consume an attempt (everything
    /// except a rejected HELLO does).
    fn drop_conn(&mut self, cid: u64, why: &str, charge: bool) {
        let Some(agent) = self.agents.remove(&cid) else {
            return;
        };
        if agent.ready || charge {
            eprintln!("figures: fabric: agent {}: {why}", agent.peer);
        }
        let forfeited: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, l)| l.conn == cid)
            .map(|(id, _)| id.clone())
            .collect();
        for job_id in forfeited {
            let Some(lease) = self.leases.remove(&job_id) else {
                continue;
            };
            if charge {
                self.fail_job(lease.job, lease.attempt, &format!("agent {why}"));
            } else {
                self.queue.push_front((lease.job, lease.attempt));
            }
        }
        self.last_agent_at = Instant::now();
    }

    /// Resolve a forfeited attempt: salvage a partial that landed
    /// anyway, else retry with backoff or quarantine — the same
    /// machinery as the local supervisor's `fail_busy`.
    fn fail_job(&mut self, job: Job, attempt: u32, why: &str) {
        if self.completed.contains(&job.id) {
            return;
        }
        if let Some(result) = load_existing_partial(&job) {
            eprintln!(
                "figures: fabric: {why}, but job {} had already flushed a valid partial; \
                 keeping it",
                job.id
            );
            self.completed.insert(job.id.clone());
            self.journal(Jev::Complete {
                job: job.id.clone(),
            });
            self.store.insert(&job, result);
            self.stats.run += 1;
            return;
        }
        let attempts_used = attempt + 1;
        if attempts_used >= self.cfg.max_attempts {
            eprintln!(
                "figures: fabric: quarantining job {} after {attempts_used} attempt(s): {why}",
                job.id
            );
            self.journal(Jev::Quarantine {
                job: job.id.clone(),
                attempts: attempts_used,
                error: why.to_string(),
            });
            self.stats.quarantined += 1;
            self.quarantined.push(Quarantined {
                job_id: job.id,
                attempts: attempts_used,
                error: why.to_string(),
                stderr: vec![],
            });
        } else {
            let delay = retry_delay(self.cfg.backoff_base, &job.id, attempts_used);
            eprintln!(
                "figures: fabric: retrying job {} in {delay:?} (attempt {} of {}): {why}",
                job.id,
                attempts_used + 1,
                self.cfg.max_attempts
            );
            self.stats.retried += 1;
            self.delayed
                .push((Instant::now() + delay, job, attempts_used));
        }
    }

    /// Enforce lease deadlines and agent heartbeat silence.
    fn check_liveness(&mut self) {
        let now = Instant::now();
        let expired: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, l)| now.duration_since(l.since.max(l.progress_at)) > self.cfg.job_timeout)
            .map(|(id, _)| id.clone())
            .collect();
        for job_id in expired {
            let Some(lease) = self.release(&job_id) else {
                continue;
            };
            self.fail_job(
                lease.job,
                lease.attempt,
                &format!("lease expired: no progress for {:?}", self.cfg.job_timeout),
            );
        }
        let silent: Vec<u64> = self
            .agents
            .iter()
            .filter(|(_, a)| now.duration_since(a.last_frame_at) > self.cfg.hb_timeout)
            .map(|(&cid, _)| cid)
            .collect();
        for cid in silent {
            self.drop_conn(
                cid,
                &format!("no heartbeat for {:?}", self.cfg.hb_timeout),
                true,
            );
        }
    }

    /// Tell every surviving agent the sweep is over.
    fn shutdown_agents(&mut self) {
        for agent in self.agents.values_mut() {
            let _ = net::send(&mut agent.stream, &Msg::Exit);
        }
        self.agents.clear();
    }
}
