//! Process-sharded figure runs: jobs, JSON partials, and the
//! coordinator/worker protocol behind `figures --jobs N`.
//!
//! ## Model
//!
//! A figure run decomposes into independent **jobs**, one per
//! `(design, org, remap, lee, ff, mix-chunk)` evaluation unit plus one
//! per `(org, benchmark-chunk)` alone-IPC unit. Jobs are **named
//! deterministically and self-describingly**: the id encodes the full
//! payload (spec fields, scale, seed, mix/bench list), so a worker
//! reconstructs its work from the id alone — no side-channel job file,
//! and a job can be re-run by hand with
//! `figures --worker --job <id>`. The grammar:
//!
//! ```text
//! ev_<org>_<design>_x<0|1>_l<0|1>_ff<n>_p<policy>_i<insts>_w<warmup>_s<seed hex>_<mm>_e<engine>_m<mix>.<mix>...
//! al_<org>_i<insts>_w<warmup>_s<seed hex>_<mm>_b<bench>.<bench>...
//! ```
//!
//! with `<org>` one of `sa<ways>` / `dm`, `<design>` one of
//! `cd` / `rod` / `dca` / `ban`, `<policy>` a replacement-policy label
//! (`srrip` / `lru` / `lruc` / `lrud` — see
//! [`dca_dram_cache::ReplacementPolicy`]), `<mm>` the main-memory
//! backend token (`mmf` flat, `mmd<n>` cycle-level DDR4 at bandwidth
//! ÷ n, `mmx` the 3DXPoint-like slow tier — see [`crate::MainMemKind`]),
//! and `<engine>` the event-engine token (`heap` / `cal` / `cala` /
//! `sh<threads>` — see [`dca::EngineSel`]; a pure wall-clock knob, in
//! the id so a job names its engine reproducibly). Alone jobs carry no
//! design, policy, or engine field: the weighted-speedup denominator is
//! always the CD/SRRIP baseline on the default engine. Identical units
//! shared by several figures (e.g. the CD baseline of Figs 8 and 12)
//! collapse to one job.
//!
//! ## Partials
//!
//! A worker writes one machine-readable JSON **partial** per job to
//! `results/partials/<job>.json` (staged + atomically renamed, so a
//! killed worker never leaves a torn file that parses). Schema
//! (version [`PARTIAL_SCHEMA`]):
//!
//! ```json
//! {"schema": 1, "job": "ev_...", "kind": "eval",
//!  "points": [{"mix": 1,
//!              "ipc_bits": [u64, ...], "miss_ns_bits": u64,
//!              "apt_bits": u64, "row_hit_bits": u64,
//!              "ipc": [f, ...], "miss_ns": f, "apt": f, "row_hit": f}]}
//! {"schema": 1, "job": "al_...", "kind": "alone",
//!  "alone": [{"bench": "gcc", "ipc_bits": u64, "ipc": f}]}
//! ```
//!
//! Every float is carried twice: `*_bits` is the authoritative IEEE-754
//! bit pattern (`f64::to_bits`, exact round-trip — the reason sharded
//! figure output is *bit-identical* to serial output), the plain field
//! is a lossy human-readable mirror for debugging.
//!
//! ## Supervisor and worker pool
//!
//! `figures --jobs N` runs the job list on a **persistent worker
//! pool**: `N` long-lived `figures --worker --serve` subprocesses that
//! pull job ids over stdin and stream status frames back over stdout,
//! keeping their in-process warm cache hot across jobs (spawn-per-batch
//! paid process start + warm rebuild per batch and was a net slowdown).
//! The coordinator side lives in [`supervisor`] — dispatch with
//! warm-group affinity, per-job progress-aware deadlines, heartbeat
//! liveness, kill-and-respawn, bounded retry with deterministic
//! backoff, poison-job quarantine and graceful signal drain. The worker
//! side (wire protocol grammar, heartbeat cadence, deterministic fault
//! injection via `DCA_FAULT_PLAN`) lives in [`pool`]. Jobs whose
//! partial already exists and validates are skipped (crash-safe
//! resume — a killed run loses at most the in-flight jobs).
//!
//! The serial path (`figures` without `--jobs`) executes the *same*
//! job list in-process ([`execute_inline`]) and merges through the
//! same [`PartialStore`], so both modes share one code path from raw
//! reports to rendered tables — the bit-identity guarantee the tests
//! lock holds under every injected fault.
//!
//! ## Sweep fabric
//!
//! `figures --serve <addr>` lifts the same job service onto TCP (the
//! [`fabric`] facade): remote `figures --agent <addr> --jobs N`
//! processes authenticate with a build+config HELLO and drain jobs
//! through their own local pools, while the coordinator holds
//! lease-based ownership (a silent or disconnected agent forfeits its
//! leases back into the retry machinery), journals every transition to
//! a write-ahead log for kill/restart resume, and verifies every
//! partial twice — a digest trailer on the wire and
//! [`decode_partial`] on arrival. Because partials are byte-exact and
//! content-addressed by job id, the fabric's at-least-once delivery
//! collapses to exactly-once results: a duplicate completion is a
//! verified-idempotent merge.

pub mod agent;
pub mod journal;
pub mod net;
pub mod pool;
pub mod server;
pub mod supervisor;

/// The multi-host sweep fabric, one facade over its four layers:
/// [`net`] (verified framing + message grammar), [`journal`] (the
/// coordinator's write-ahead log), [`server`] (`figures --serve`,
/// lease-based dispatch) and [`agent`] (`figures --agent`, a remote
/// front-end to the local worker pool).
pub mod fabric {
    pub use super::{agent, journal, net, server};
}

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

use dca::{Design, EngineSel};
use dca_cpu::{mix, Benchmark};
use dca_dram_cache::{OrgKind, ReplacementPolicy};

use crate::{run_parallel, summarize, DesignSummary, MainMemKind, MixPoint, RunSpec, Scale};

/// Version tag every partial carries; a mismatch invalidates the file.
pub const PARTIAL_SCHEMA: u64 = 1;

/// Default mixes (and alone benchmarks) per job. Small enough that a
/// figure at the default 8-mix scale yields several jobs per unit for
/// the queue to balance, large enough that process spawn cost stays
/// noise.
pub const DEFAULT_CHUNK: usize = 4;

/// Directory the partials (and the quarantine record) live under,
/// relative to the harness working directory.
pub fn partials_dir() -> PathBuf {
    PathBuf::from("results").join("partials")
}

/// File the supervisor records poison jobs in (under [`partials_dir`]).
pub fn quarantine_path() -> PathBuf {
    partials_dir().join("quarantine.json")
}

// ---------------------------------------------------------------------
// Job model
// ---------------------------------------------------------------------

/// What one worker computes.
#[derive(Clone, Debug, PartialEq)]
pub enum JobPayload {
    /// Evaluate `spec` over a chunk of mixes.
    Eval {
        /// Full run specification (self-contained: scale + seed ride
        /// along in the job id).
        spec: RunSpec,
        /// Mix ids, in order.
        mixes: Vec<u32>,
    },
    /// Alone-IPC runs: each benchmark alone on the CD/no-remap baseline
    /// of `org` × `main_mem` (the weighted-speedup denominator shares
    /// the backend under test).
    Alone {
        /// Cache organisation.
        org: OrgKind,
        /// Instructions per core.
        insts: u64,
        /// Warm-up ops per core.
        warmup: u64,
        /// Experiment seed.
        seed: u64,
        /// Main-memory backend.
        main_mem: MainMemKind,
        /// Benchmarks, in order.
        benches: Vec<Benchmark>,
    },
}

/// A deterministically named unit of work.
#[derive(Clone, Debug)]
pub struct Job {
    /// Self-describing id (see module docs for the grammar).
    pub id: String,
    /// The decoded payload (always `== parse_job_id(&id)`).
    pub payload: JobPayload,
}

impl Job {
    /// Build a job from a payload (the id is derived).
    pub fn new(payload: JobPayload) -> Job {
        Job {
            id: encode_job_id(&payload),
            payload,
        }
    }
}

fn org_token(org: OrgKind) -> String {
    match org {
        OrgKind::SetAssoc { ways } => format!("sa{ways}"),
        OrgKind::DirectMapped => "dm".to_string(),
    }
}

fn parse_org_token(t: &str) -> Result<OrgKind, String> {
    if t == "dm" {
        return Ok(OrgKind::DirectMapped);
    }
    if let Some(ways) = t.strip_prefix("sa") {
        let ways: u16 = ways
            .parse()
            .map_err(|_| format!("bad org token {t:?} in job id"))?;
        return Ok(OrgKind::SetAssoc { ways });
    }
    Err(format!("bad org token {t:?} in job id"))
}

fn design_token(d: Design) -> &'static str {
    match d {
        Design::Cd => "cd",
        Design::Rod => "rod",
        Design::Dca => "dca",
        Design::Banshee => "ban",
    }
}

fn parse_design_token(t: &str) -> Result<Design, String> {
    match t {
        "cd" => Ok(Design::Cd),
        "rod" => Ok(Design::Rod),
        "dca" => Ok(Design::Dca),
        "ban" => Ok(Design::Banshee),
        _ => Err(format!("bad design token {t:?} in job id")),
    }
}

fn parse_policy_token(t: &str) -> Result<ReplacementPolicy, String> {
    ReplacementPolicy::ALL
        .into_iter()
        .find(|p| p.label() == t)
        .ok_or_else(|| format!("bad replacement-policy token {t:?} in job id"))
}

/// Canonical id for a payload (see the module-docs grammar).
pub fn encode_job_id(payload: &JobPayload) -> String {
    match payload {
        JobPayload::Eval { spec, mixes } => {
            let mixes: Vec<String> = mixes.iter().map(|m| m.to_string()).collect();
            format!(
                "ev_{}_{}_x{}_l{}_ff{}_p{}_i{}_w{}_s{:x}_{}_e{}_m{}",
                org_token(spec.org),
                design_token(spec.design),
                spec.remap as u8,
                spec.lee as u8,
                spec.flushing_factor,
                spec.policy.label(),
                spec.insts,
                spec.warmup,
                spec.seed,
                spec.main_mem.token(),
                spec.engine.token(),
                mixes.join(".")
            )
        }
        JobPayload::Alone {
            org,
            insts,
            warmup,
            seed,
            main_mem,
            benches,
        } => {
            let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
            format!(
                "al_{}_i{}_w{}_s{:x}_{}_b{}",
                org_token(*org),
                insts,
                warmup,
                seed,
                main_mem.token(),
                names.join(".")
            )
        }
    }
}

fn field<'a>(tokens: &'a [&'a str], idx: usize, what: &str) -> Result<&'a str, String> {
    tokens
        .get(idx)
        .copied()
        .ok_or_else(|| format!("job id is missing its {what} field"))
}

fn tagged<'a>(tok: &'a str, tag: &str) -> Result<&'a str, String> {
    tok.strip_prefix(tag)
        .ok_or_else(|| format!("expected a {tag}-prefixed token, got {tok:?}"))
}

/// Decode a job id back into its payload. Inverse of
/// [`encode_job_id`]; round-tripping is test-locked.
pub fn parse_job_id(id: &str) -> Result<JobPayload, String> {
    if let Some(rest) = id.strip_prefix("ev_") {
        let t: Vec<&str> = rest.split('_').collect();
        if t.len() != 12 {
            return Err(format!("eval job id has {} fields, expected 12", t.len()));
        }
        let org = parse_org_token(field(&t, 0, "org")?)?;
        let design = parse_design_token(field(&t, 1, "design")?)?;
        let remap = tagged(field(&t, 2, "remap")?, "x")? == "1";
        let lee = tagged(field(&t, 3, "lee")?, "l")? == "1";
        let ff: u8 = tagged(field(&t, 4, "flushing factor")?, "ff")?
            .parse()
            .map_err(|_| "bad flushing factor".to_string())?;
        let policy = parse_policy_token(tagged(field(&t, 5, "replacement policy")?, "p")?)?;
        let insts: u64 = tagged(field(&t, 6, "insts")?, "i")?
            .parse()
            .map_err(|_| "bad insts".to_string())?;
        let warmup: u64 = tagged(field(&t, 7, "warmup")?, "w")?
            .parse()
            .map_err(|_| "bad warmup".to_string())?;
        let seed = u64::from_str_radix(tagged(field(&t, 8, "seed")?, "s")?, 16)
            .map_err(|_| "bad seed".to_string())?;
        let main_mem = MainMemKind::parse_token(field(&t, 9, "main memory")?)?;
        let engine_tok = tagged(field(&t, 10, "engine")?, "e")?;
        let engine = EngineSel::parse_token(engine_tok)
            .ok_or_else(|| format!("bad engine token {engine_tok:?} in job id"))?;
        let mixes: Vec<u32> = tagged(field(&t, 11, "mixes")?, "m")?
            .split('.')
            .map(|m| m.parse().map_err(|_| format!("bad mix id {m:?}")))
            .collect::<Result<_, _>>()?;
        if mixes.is_empty() {
            return Err("eval job carries no mixes".to_string());
        }
        Ok(JobPayload::Eval {
            spec: RunSpec {
                design,
                org,
                remap,
                lee,
                flushing_factor: ff,
                policy,
                main_mem,
                engine,
                insts,
                warmup,
                seed,
            },
            mixes,
        })
    } else if let Some(rest) = id.strip_prefix("al_") {
        let t: Vec<&str> = rest.split('_').collect();
        if t.len() != 6 {
            // Also catches benchmark names containing '_' (registered
            // trace stems), which the grammar cannot carry.
            return Err(format!("alone job id has {} fields, expected 6", t.len()));
        }
        let org = parse_org_token(field(&t, 0, "org")?)?;
        let insts: u64 = tagged(field(&t, 1, "insts")?, "i")?
            .parse()
            .map_err(|_| "bad insts".to_string())?;
        let warmup: u64 = tagged(field(&t, 2, "warmup")?, "w")?
            .parse()
            .map_err(|_| "bad warmup".to_string())?;
        let seed = u64::from_str_radix(tagged(field(&t, 3, "seed")?, "s")?, 16)
            .map_err(|_| "bad seed".to_string())?;
        let main_mem = MainMemKind::parse_token(field(&t, 4, "main memory")?)?;
        let benches: Vec<Benchmark> = tagged(field(&t, 5, "benches")?, "b")?
            .split('.')
            .map(|n| {
                Benchmark::from_name(n).ok_or_else(|| format!("unknown benchmark {n:?} in job id"))
            })
            .collect::<Result<_, _>>()?;
        if benches.is_empty() {
            return Err("alone job carries no benchmarks".to_string());
        }
        Ok(JobPayload::Alone {
            org,
            insts,
            warmup,
            seed,
            main_mem,
            benches,
        })
    } else {
        Err(format!(
            "job id {id:?} has neither an ev_ nor an al_ prefix"
        ))
    }
}

// ---------------------------------------------------------------------
// Figure planning
// ---------------------------------------------------------------------

/// One evaluation unit a figure needs: a labelled `RunSpec` swept over
/// the scale's mixes.
#[derive(Clone, Debug)]
pub struct EvalUnit {
    /// Column/row label in the rendered figure.
    pub label: String,
    /// The spec to evaluate.
    pub spec: RunSpec,
}

impl EvalUnit {
    fn new(label: impl Into<String>, spec: RunSpec) -> EvalUnit {
        EvalUnit {
            label: label.into(),
            spec,
        }
    }
}

/// Everything the planner knows about one shardable figure.
#[derive(Clone, Debug)]
pub struct FigurePlan {
    /// Canonical figure name (`fig8`, …, `ablation_ff`).
    pub name: &'static str,
    /// Evaluation units in deterministic render order.
    pub units: Vec<EvalUnit>,
    /// Mix ids the units sweep, in order.
    pub mixes: Vec<u32>,
}

/// The shardable figures, in `--all` order. (`table1/2`, `fig7` and
/// `fig18` are cheap or structurally different and stay local to the
/// coordinator.)
pub const SHARDED_FIGURES: &[&str] = &[
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig19",
    "ablation_ff",
    "mainmem",
    "designs",
];

/// Main-memory backends the sensitivity sweep evaluates, in render
/// order: the flat seed model, then the cycle-level DDR4 device at
/// full, half and quarter data bandwidth.
pub const MAINMEM_SWEEP: &[MainMemKind] = &[
    MainMemKind::Flat,
    MainMemKind::Ddr4 { slow: 1 },
    MainMemKind::Ddr4 { slow: 2 },
    MainMemKind::Ddr4 { slow: 4 },
];

/// Main-memory backends the design-comparison table sweeps: the fast
/// DDR4 tier and the slow 3DXPoint-like tier (where fill-traffic
/// economy matters most).
pub const DESIGNS_MAINMEMS: &[MainMemKind] = &[MainMemKind::Ddr4 { slow: 1 }, MainMemKind::Xpoint];

/// Replacement policies the design-comparison table sweeps: the seed
/// SRRIP and plain LRU (the two ends of the scan-resistance spectrum;
/// `lruc`/`lrud` remain reachable via [`RunSpec::with_policy`]).
pub const DESIGNS_POLICIES: &[ReplacementPolicy] =
    &[ReplacementPolicy::Srrip, ReplacementPolicy::Lru];

/// Plan `name` at `scale`, or `None` for a figure that is not sharded.
pub fn figure_plan(name: &str, scale: &Scale) -> Option<FigurePlan> {
    let sa = OrgKind::paper_set_assoc();
    let dm = OrgKind::DirectMapped;
    let spec = |design, org| RunSpec::at_scale(design, org, scale);
    let mut units = Vec::new();
    let canonical = match name {
        "fig8" | "fig9" => {
            let remap = name == "fig9";
            for org in [sa, dm] {
                // Unit 0 of each org is the CD/no-remap baseline the
                // paper normalises both figures to.
                units.push(EvalUnit::new(
                    format!("CD-base-{}", org.label()),
                    spec(Design::Cd, org),
                ));
                for design in Design::ALL {
                    let mut s = spec(design, org);
                    if remap {
                        s = s.with_remap();
                    }
                    units.push(EvalUnit::new(design.label(), s));
                }
            }
            if remap {
                "fig9"
            } else {
                "fig8"
            }
        }
        "fig10" | "fig11" => {
            let org = if name == "fig10" { sa } else { dm };
            for design in Design::ALL {
                units.push(EvalUnit::new(design.label(), spec(design, org)));
            }
            for design in Design::ALL {
                units.push(EvalUnit::new(
                    format!("XOR+{}", design.label()),
                    spec(design, org).with_remap(),
                ));
            }
            if name == "fig10" {
                "fig10"
            } else {
                "fig11"
            }
        }
        "fig12" | "fig13" => {
            let org = if name == "fig12" { sa } else { dm };
            units.push(EvalUnit::new("CD-base", spec(Design::Cd, org)));
            for design in Design::ALL {
                units.push(EvalUnit::new(design.label(), spec(design, org)));
            }
            for design in Design::ALL {
                units.push(EvalUnit::new(
                    format!("XOR+{}", design.label()),
                    spec(design, org).with_remap(),
                ));
            }
            if name == "fig12" {
                "fig12"
            } else {
                "fig13"
            }
        }
        "fig14" | "fig15" => {
            let org = if name == "fig14" { sa } else { dm };
            for design in Design::ALL {
                units.push(EvalUnit::new(design.label(), spec(design, org)));
            }
            if name == "fig14" {
                "fig14"
            } else {
                "fig15"
            }
        }
        "fig16" | "fig17" => {
            let org = if name == "fig16" { sa } else { dm };
            for design in Design::ALL {
                units.push(EvalUnit::new(design.label(), spec(design, org)));
                units.push(EvalUnit::new(
                    format!("XOR+{}", design.label()),
                    spec(design, org).with_remap(),
                ));
            }
            if name == "fig16" {
                "fig16"
            } else {
                "fig17"
            }
        }
        "fig19" => {
            for design in Design::ALL {
                units.push(EvalUnit::new(
                    format!("LEE+{}", design.label()),
                    spec(design, dm).with_lee(),
                ));
            }
            "fig19"
        }
        "ablation_ff" => {
            for ff in 1..=5u8 {
                let mut s = spec(Design::Dca, sa);
                s.flushing_factor = ff;
                units.push(EvalUnit::new(format!("FF-{ff}"), s));
            }
            "ablation_ff"
        }
        "mainmem" => {
            // Main-memory sensitivity: CD and DCA per backend, so the
            // table shows both absolute WS and whether DCA's edge
            // survives a slower (or cycle-accurate) backing store.
            for &mm in MAINMEM_SWEEP {
                for design in [Design::Cd, Design::Dca] {
                    units.push(EvalUnit::new(
                        format!("{}+{}", mm.label(), design.label()),
                        spec(design, dm).with_main_mem(mm),
                    ));
                }
            }
            "mainmem"
        }
        "designs" => {
            // Design comparison: all four controller organisations ×
            // replacement policy × main-memory tier, on the paper's
            // direct-mapped org. The XPoint column shows whether
            // Banshee's fill economy pays off once the backing store
            // is slow; the LRU column whether the ranking is
            // policy-robust.
            for &mm in DESIGNS_MAINMEMS {
                for &policy in DESIGNS_POLICIES {
                    for design in Design::ALL {
                        units.push(EvalUnit::new(
                            format!("{}+{}+{}", mm.label(), policy.label(), design.label()),
                            spec(design, dm).with_main_mem(mm).with_policy(policy),
                        ));
                    }
                }
            }
            "designs"
        }
        _ => return None,
    };
    Some(FigurePlan {
        name: canonical,
        units,
        mixes: scale.mixes.clone(),
    })
}

fn chunked<T: Clone>(items: &[T], chunk: usize) -> Vec<Vec<T>> {
    items.chunks(chunk.max(1)).map(<[T]>::to_vec).collect()
}

/// Decompose `plans` into a deduplicated job list: per-unit eval jobs
/// over `chunk`-sized mix slices, plus per-org alone-IPC jobs over the
/// benchmarks those mixes contain. Identical units across figures
/// collapse (the id is canonical), so `--all` never runs a spec twice.
pub fn plan_jobs(plans: &[FigurePlan], chunk: usize) -> Vec<Job> {
    let mut seen = HashSet::new();
    let mut jobs = Vec::new();
    let mut push = |payload: JobPayload| {
        let job = Job::new(payload);
        if seen.insert(job.id.clone()) {
            jobs.push(job);
        }
    };
    for plan in plans {
        // Trace mixes/workloads are registered per process, so a worker
        // subprocess could never resolve them — and registered trace
        // names (file stems with '_') don't fit the id grammar. Refuse
        // loudly at planning time instead of garbling a job id.
        for &id in &plan.mixes {
            assert!(
                id < dca_cpu::CUSTOM_MIX_BASE,
                "mix {id} is a runtime-registered (trace) mix; the trace registry is \
                 process-local, so trace workloads cannot be sharded across worker processes"
            );
        }
        // Alone jobs first: the merge needs the full table anyway, and
        // scheduling them early keeps workers busy with short runs
        // while the 4-core evals stream in behind them. One alone table
        // per (org, main-memory backend) pair the plan's units touch.
        let mut keys: Vec<(OrgKind, MainMemKind)> = Vec::new();
        for u in &plan.units {
            if !keys.contains(&(u.spec.org, u.spec.main_mem)) {
                keys.push((u.spec.org, u.spec.main_mem));
            }
        }
        let mut benches: Vec<Benchmark> =
            plan.mixes.iter().flat_map(|&id| mix(id).benches).collect();
        benches.sort();
        benches.dedup();
        for (org, main_mem) in keys {
            let scale_of = &plan.units[0].spec;
            for bench_chunk in chunked(&benches, chunk) {
                push(JobPayload::Alone {
                    org,
                    insts: scale_of.insts,
                    warmup: scale_of.warmup,
                    seed: scale_of.seed,
                    main_mem,
                    benches: bench_chunk,
                });
            }
        }
        for unit in &plan.units {
            for mix_chunk in chunked(&plan.mixes, chunk) {
                push(JobPayload::Eval {
                    spec: unit.spec,
                    mixes: mix_chunk,
                });
            }
        }
    }
    jobs
}

// ---------------------------------------------------------------------
// Execution + partial encoding
// ---------------------------------------------------------------------

/// What a finished job reports.
#[derive(Clone, Debug, PartialEq)]
pub enum JobResult {
    /// Per-mix measurements, in payload mix order.
    Eval(Vec<MixPoint>),
    /// `(benchmark, alone IPC)` pairs, in payload bench order.
    Alone(Vec<(Benchmark, f64)>),
}

/// Execute one job in-process, sequentially. Workers are the unit of
/// parallelism in sharded mode, so a job deliberately does not spawn
/// threads of its own; the inline (serial) path instead parallelises
/// *across* jobs with [`run_parallel`].
pub fn execute_job(payload: &JobPayload) -> JobResult {
    match payload {
        JobPayload::Eval { spec, mixes } => {
            JobResult::Eval(mixes.iter().map(|&m| MixPoint::measure(spec, m)).collect())
        }
        JobPayload::Alone {
            org,
            insts,
            warmup,
            seed,
            main_mem,
            benches,
        } => {
            let spec = RunSpec {
                design: Design::Cd,
                org: *org,
                remap: false,
                lee: false,
                flushing_factor: 4,
                policy: ReplacementPolicy::Srrip,
                main_mem: *main_mem,
                engine: EngineSel::Calendar,
                insts: *insts,
                warmup: *warmup,
                seed: *seed,
            };
            JobResult::Alone(
                benches
                    .iter()
                    .map(|&b| (b, spec.run_benches(&[b]).cores[0].ipc))
                    .collect(),
            )
        }
    }
}

fn f64_fields(name: &str, v: f64) -> String {
    format!("\"{name}_bits\": {}, \"{name}\": {v:.6}", v.to_bits())
}

/// Render a job's partial as JSON (see the module docs for the schema).
pub fn encode_partial(job_id: &str, result: &JobResult) -> String {
    let mut out = format!("{{\n  \"schema\": {PARTIAL_SCHEMA},\n  \"job\": \"{job_id}\",\n");
    match result {
        JobResult::Eval(points) => {
            out.push_str("  \"kind\": \"eval\",\n  \"points\": [");
            for (i, p) in points.iter().enumerate() {
                let bits: Vec<String> =
                    p.core_ipc.iter().map(|v| v.to_bits().to_string()).collect();
                let readable: Vec<String> = p.core_ipc.iter().map(|v| format!("{v:.6}")).collect();
                let sep = if i + 1 < points.len() { "," } else { "" };
                out.push_str(&format!(
                    "\n    {{\"mix\": {}, \"ipc_bits\": [{}], \"ipc\": [{}], {}, {}, {}}}{}",
                    p.mix,
                    bits.join(", "),
                    readable.join(", "),
                    f64_fields("miss_ns", p.miss_latency_ns),
                    f64_fields("apt", p.apt),
                    f64_fields("row_hit", p.row_hit),
                    sep
                ));
            }
            out.push_str("\n  ]\n}\n");
        }
        JobResult::Alone(rows) => {
            out.push_str("  \"kind\": \"alone\",\n  \"alone\": [");
            for (i, (bench, ipc)) in rows.iter().enumerate() {
                let sep = if i + 1 < rows.len() { "," } else { "" };
                out.push_str(&format!(
                    "\n    {{\"bench\": \"{}\", {}}}{}",
                    bench.name(),
                    f64_fields("ipc", *ipc),
                    sep
                ));
            }
            out.push_str("\n  ]\n}\n");
        }
    }
    out
}

/// Parse and validate a partial against the job it must describe:
/// schema version, job id, result kind, and exact mix/bench coverage
/// all have to line up, or the partial is rejected (the coordinator
/// then re-runs the job — a stale or foreign file can never leak into
/// a figure).
pub fn decode_partial(text: &str, job: &Job) -> Result<JobResult, String> {
    let v = json::parse(text)?;
    if v.get_u64("schema") != Some(PARTIAL_SCHEMA) {
        return Err(format!("partial schema is not {PARTIAL_SCHEMA}"));
    }
    if v.get_str("job") != Some(&job.id) {
        return Err("partial names a different job".to_string());
    }
    match (&job.payload, v.get_str("kind")) {
        (JobPayload::Eval { mixes, .. }, Some("eval")) => {
            let points = v
                .get("points")
                .and_then(json::Value::as_arr)
                .ok_or("partial has no points array")?;
            let mut out = Vec::with_capacity(points.len());
            for p in points {
                let ipc_bits = p
                    .get("ipc_bits")
                    .and_then(json::Value::as_arr)
                    .ok_or("point has no ipc_bits")?;
                out.push(MixPoint {
                    mix: p.get_u64("mix").ok_or("point has no mix")? as u32,
                    core_ipc: ipc_bits
                        .iter()
                        .map(|b| b.as_u64().map(f64::from_bits).ok_or("bad ipc bits"))
                        .collect::<Result<_, _>>()?,
                    miss_latency_ns: p.get_f64_bits("miss_ns_bits").ok_or("bad miss_ns bits")?,
                    apt: p.get_f64_bits("apt_bits").ok_or("bad apt bits")?,
                    row_hit: p.get_f64_bits("row_hit_bits").ok_or("bad row_hit bits")?,
                });
            }
            let got: Vec<u32> = out.iter().map(|p| p.mix).collect();
            if &got != mixes {
                return Err(format!("partial covers mixes {got:?}, job wants {mixes:?}"));
            }
            Ok(JobResult::Eval(out))
        }
        (JobPayload::Alone { benches, .. }, Some("alone")) => {
            let rows = v
                .get("alone")
                .and_then(json::Value::as_arr)
                .ok_or("partial has no alone array")?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let name = r.get_str("bench").ok_or("alone row has no bench")?;
                let bench = Benchmark::from_name(name)
                    .ok_or_else(|| format!("unknown benchmark {name:?} in partial"))?;
                out.push((bench, r.get_f64_bits("ipc_bits").ok_or("bad ipc bits")?));
            }
            let got: Vec<Benchmark> = out.iter().map(|(b, _)| *b).collect();
            if &got != benches {
                return Err("partial covers different benchmarks than the job".to_string());
            }
            Ok(JobResult::Alone(out))
        }
        (_, kind) => Err(format!("partial kind {kind:?} does not match the job")),
    }
}

/// Path of `job`'s partial.
pub fn partial_path(job_id: &str) -> PathBuf {
    partials_dir().join(format!("{job_id}.json"))
}

pub(crate) fn write_partial_atomic(job_id: &str, text: &str) -> std::io::Result<()> {
    let path = partial_path(job_id);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Worker entry point behind `figures --worker --job <id>`: decode the
/// id, execute, and write the partial atomically.
pub fn run_worker(job_id: &str) -> Result<(), String> {
    let payload = parse_job_id(job_id)?;
    let result = execute_job(&payload);
    let text = encode_partial(job_id, &result);
    write_partial_atomic(job_id, &text)
        .map_err(|e| format!("cannot write partial for {job_id}: {e}"))
}

/// Worker entry point for a *batch* of jobs (`figures --worker --job a
/// --job b ...`): one process drains the whole list, amortising process
/// spawn and warm-blob decode across jobs. Each job writes its own
/// atomic partial the moment it finishes, and a failing job does not
/// abort the batch — the remaining jobs still run, the worker exits
/// non-zero naming every failure, and the coordinator retries exactly
/// the jobs that left no valid partial.
pub fn run_worker_many(job_ids: &[String]) -> Result<(), String> {
    let mut errors = Vec::new();
    for id in job_ids {
        if let Err(e) = run_worker(id) {
            errors.push(e);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}

// ---------------------------------------------------------------------
// Merged store
// ---------------------------------------------------------------------

/// All partial results of a run, merged and queryable by the figure
/// renderers. Serial and sharded modes both build one of these, so the
/// math downstream of it is shared — the heart of the bit-identity
/// guarantee.
#[derive(Default)]
pub struct PartialStore {
    eval: HashMap<String, Vec<MixPoint>>,
    alone: HashMap<(Benchmark, &'static str, MainMemKind), f64>,
}

impl PartialStore {
    /// Fold every result of `other` into `self` (the fabric's local
    /// fallback merges a nested supervisor run this way). Both sides
    /// were built from validated partials keyed by job id, so a
    /// duplicate key carries identical bytes and the overwrite is
    /// idempotent.
    pub fn merge(&mut self, other: PartialStore) {
        self.eval.extend(other.eval);
        self.alone.extend(other.alone);
    }

    /// Record one finished job.
    pub fn insert(&mut self, job: &Job, result: JobResult) {
        match (&job.payload, result) {
            (JobPayload::Eval { .. }, JobResult::Eval(points)) => {
                self.eval.insert(job.id.clone(), points);
            }
            (JobPayload::Alone { org, main_mem, .. }, JobResult::Alone(rows)) => {
                for (bench, ipc) in rows {
                    self.alone.insert((bench, org.label(), *main_mem), ipc);
                }
            }
            _ => unreachable!("decode_partial enforces kind agreement"),
        }
    }

    /// Alone IPC of `bench` under `org` × `main_mem`, if that run has
    /// been merged (it can legitimately be missing when the supervisor
    /// quarantined the alone job).
    pub fn try_alone_ipc(
        &self,
        bench: Benchmark,
        org: OrgKind,
        main_mem: MainMemKind,
    ) -> Option<f64> {
        self.alone.get(&(bench, org.label(), main_mem)).copied()
    }

    /// Alone IPC of `bench` under `org` × `main_mem`.
    ///
    /// # Panics
    /// Panics if the planner never scheduled that alone run — a plan
    /// bug, not a runtime condition.
    pub fn alone_ipc(&self, bench: Benchmark, org: OrgKind, main_mem: MainMemKind) -> f64 {
        self.try_alone_ipc(bench, org, main_mem).unwrap_or_else(|| {
            panic!(
                "no alone IPC for {}/{}/{}",
                bench.name(),
                org.label(),
                main_mem.label()
            )
        })
    }

    /// Resolve one evaluation unit into a [`DesignSummary`] by
    /// concatenating its chunk partials in mix order.
    pub fn summary(
        &self,
        unit: &EvalUnit,
        mixes: &[u32],
        chunk: usize,
    ) -> Result<DesignSummary, String> {
        let mut points = Vec::with_capacity(mixes.len());
        for mix_chunk in chunked(mixes, chunk) {
            let id = encode_job_id(&JobPayload::Eval {
                spec: unit.spec,
                mixes: mix_chunk,
            });
            points.extend_from_slice(
                self.eval
                    .get(&id)
                    .ok_or_else(|| format!("missing partial for job {id}"))?,
            );
        }
        // A quarantined alone job leaves holes in the alone table;
        // surface that as a missing summary (the renderer draws a
        // hole), not a panic.
        for &m in mixes {
            for &b in &mix(m).benches {
                if self
                    .try_alone_ipc(b, unit.spec.org, unit.spec.main_mem)
                    .is_none()
                {
                    return Err(format!(
                        "missing alone IPC for {}/{} (quarantined or unplanned alone job)",
                        b.name(),
                        unit.spec.org.label()
                    ));
                }
            }
        }
        Ok(summarize(&unit.label, unit.spec.org, &points, |b, org| {
            self.alone_ipc(b, org, unit.spec.main_mem)
        }))
    }
}

/// Execute `jobs` in-process (the serial path), parallelising across
/// jobs with [`run_parallel`]. Produces the same store a coordinator
/// merge does.
pub fn execute_inline(jobs: &[Job]) -> PartialStore {
    let results = run_parallel(jobs.to_vec(), |job| {
        let result = execute_job(&job.payload);
        (job, result)
    });
    let mut store = PartialStore::default();
    for (job, result) in results {
        store.insert(&job, result);
    }
    store
}

// ---------------------------------------------------------------------
// Warm groups, resume, and partial hygiene
// ---------------------------------------------------------------------

/// The **warm group** of a job: jobs in one group share warm-state
/// fingerprints (warm-up is design-, remap-, lee-, ff-, engine- and
/// main-memory-independent, but **policy-dependent** — warm-up evicts
/// through the replacement policy), so the supervisor routes a group to
/// one worker and that worker builds each warm state exactly once for
/// the whole group. Eval groups key on
/// `(org, policy, scale, seed, mixes)`; alone groups on
/// `(org, scale, seed, benches)` (alone runs are always SRRIP) — i.e.
/// the job id minus the fields warm-up ignores.
pub fn warm_group(payload: &JobPayload) -> String {
    match payload {
        JobPayload::Eval { spec, mixes } => {
            let m: Vec<String> = mixes.iter().map(u32::to_string).collect();
            format!(
                "ev_{}_p{}_i{}_w{}_s{:x}_m{}",
                org_token(spec.org),
                spec.policy.label(),
                spec.insts,
                spec.warmup,
                spec.seed,
                m.join(".")
            )
        }
        JobPayload::Alone {
            org,
            insts,
            warmup,
            seed,
            benches,
            ..
        } => {
            let b: Vec<&str> = benches.iter().map(|b| b.name()).collect();
            format!(
                "al_{}_i{insts}_w{warmup}_s{seed:x}_b{}",
                org_token(*org),
                b.join(".")
            )
        }
    }
}

/// A valid on-disk partial for `job`, if one exists (crash resume).
pub fn load_existing_partial(job: &Job) -> Option<JobResult> {
    let path = partial_path(&job.id);
    let text = std::fs::read_to_string(&path).ok()?;
    match decode_partial(&text, job) {
        Ok(result) => Some(result),
        Err(why) => {
            eprintln!(
                "figures: warning: ignoring invalid partial {} ({why}); re-running the job",
                path.display()
            );
            None
        }
    }
}

/// Remove partials under [`partials_dir`] whose job id is not in
/// `valid` — leftovers from an older plan or scale that would linger
/// (and mislead a future resume) forever. The quarantine record and
/// non-partial files (temporaries, locks) are never touched. Returns
/// how many files were pruned.
pub fn prune_orphans(valid: &HashSet<String>) -> usize {
    let Ok(entries) = std::fs::read_dir(partials_dir()) else {
        return 0;
    };
    let mut pruned = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".json") else {
            continue; // temporaries (.tmp.<pid>) and anything foreign
        };
        if stem == "quarantine" {
            continue;
        }
        // Only files that *are* partials of this harness are fair game:
        // a stem that doesn't parse as a job id is not ours to delete.
        if parse_job_id(stem).is_err() || valid.contains(stem) {
            continue;
        }
        if std::fs::remove_file(&path).is_ok() {
            pruned += 1;
        }
    }
    pruned
}

// ---------------------------------------------------------------------
// Minimal JSON (the workspace is offline — no serde)
// ---------------------------------------------------------------------

/// A tiny recursive-descent JSON reader, just enough for the partial
/// schema. Numbers are kept as raw text so 64-bit bit patterns round-
/// trip exactly (no intermediate f64).
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number, kept as its source text.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Member `key` of an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// String content, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Array elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The number parsed as `u64`.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        /// `get(key)` as a string.
        pub fn get_str(&self, key: &str) -> Option<&str> {
            self.get(key).and_then(Value::as_str)
        }

        /// `get(key)` as a `u64`.
        pub fn get_u64(&self, key: &str) -> Option<u64> {
            self.get(key).and_then(Value::as_u64)
        }

        /// `get(key)` as `f64::from_bits` of a `u64` member.
        pub fn get_f64_bits(&self, key: &str) -> Option<f64> {
            self.get_u64(key).map(f64::from_bits)
        }
    }

    /// Escape `s` for embedding in a JSON string literal (quotes not
    /// included). Control bytes become `\u00XX`.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Parse one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {pos:?}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let Value::Str(key) = string(b, pos)? else {
                        unreachable!()
                    };
                    expect(b, pos, b':')?;
                    fields.push((key, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                    }
                }
            }
            Some(b'"') => string(b, pos),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *pos;
                *pos += 1;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *pos += 1;
                }
                Ok(Value::Num(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| "bad number".to_string())?
                        .to_string(),
                ))
            }
            _ => Err(format!("unexpected byte at offset {pos}")),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected '\"' at offset {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(Value::Str(out)),
                b'\\' => {
                    let esc = b.get(*pos).copied().ok_or("truncated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                            *pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        _ => return Err(format!("unknown escape \\{}", esc as char)),
                    }
                }
                _ => {
                    // Re-scan the UTF-8 sequence starting at c.
                    let start = *pos - 1;
                    let mut end = *pos;
                    while end < b.len() && b[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&b[start..end]).map_err(|_| "bad utf-8")?;
                    let ch = s.chars().next().ok_or("bad utf-8")?;
                    out.push(ch);
                    *pos = start + ch.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    fn tiny_scale() -> Scale {
        Scale {
            insts: 3_000,
            warmup: 6_000,
            mixes: vec![1, 2],
        }
    }

    #[test]
    fn job_ids_round_trip() {
        let scale = tiny_scale();
        let mut payloads = Vec::new();
        for name in SHARDED_FIGURES {
            let plan = figure_plan(name, &scale).expect("shardable");
            for job in plan_jobs(&[plan], 1) {
                payloads.push((job.id.clone(), job.payload));
            }
        }
        assert!(!payloads.is_empty());
        for (id, payload) in payloads {
            assert_eq!(parse_job_id(&id).expect(&id), payload, "{id}");
            // Ids must be filesystem-safe.
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '+')),
                "unsafe id {id}"
            );
        }
    }

    #[test]
    fn bad_job_ids_are_rejected() {
        for id in [
            "",
            "zz_dm_cd",
            "ev_dm",
            "ev_qq_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmf_ecal_m1",
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmf_ecal_m",
            "al_dm_i1_w1_s0_bnosuchbench",
            // Trailing fields (e.g. a trace stem with '_') must not be
            // silently ignored.
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmf_ecal_m1_extra",
            "al_dm_i1_w1_s0_mmf_bgcc_2800",
            // Unknown / malformed tokens for the main-memory backend,
            // the replacement policy, the design, and the engine.
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmq_ecal_m1",
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmd0_ecal_m1",
            "ev_dm_cd_x0_l0_ff4_pfifo_i1_w1_s0_mmf_ecal_m1",
            "ev_dm_ban2_x0_l0_ff4_psrrip_i1_w1_s0_mmf_ecal_m1",
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmf_eturbo_m1",
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmf_esh0_m1",
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmf_esh9_m1",
            "al_dm_i1_w1_s0_mmd_bgcc",
            // Pre-refactor (11-field / 10-field / 5-field) ids must not
            // half-parse — the policy and engine fields are mandatory.
            "ev_dm_cd_x0_l0_ff4_psrrip_i1_w1_s0_mmf_m1",
            "ev_dm_cd_x0_l0_ff4_i1_w1_s0_mmf_ecal_m1",
            "ev_dm_cd_x0_l0_ff4_i1_w1_s0_m1",
            "al_dm_i1_w1_s0_bgcc",
        ] {
            assert!(parse_job_id(id).is_err(), "{id:?} should not parse");
        }
    }

    #[test]
    fn warm_group_ignores_design_remap_ff_and_backend() {
        let scale = tiny_scale();
        let plans: Vec<FigurePlan> = ["fig12", "fig14", "mainmem"]
            .iter()
            .filter_map(|n| figure_plan(n, &scale))
            .collect();
        let jobs = plan_jobs(&plans, 4);
        // All SA eval units (CD/ROD/DCA/XOR+…) share one warm group…
        let sa_eval: HashSet<String> = jobs
            .iter()
            .filter(|j| {
                matches!(&j.payload, JobPayload::Eval { spec, .. }
                    if spec.org == OrgKind::paper_set_assoc())
            })
            .map(|j| warm_group(&j.payload))
            .collect();
        assert_eq!(sa_eval.len(), 1, "{sa_eval:?}");
        // …including across main-memory backends (warm-up never touches
        // main memory timing): the DM mainmem sweep collapses too.
        let dm_eval: HashSet<String> = jobs
            .iter()
            .filter(|j| {
                matches!(&j.payload, JobPayload::Eval { spec, .. }
                    if spec.org == OrgKind::DirectMapped)
            })
            .map(|j| warm_group(&j.payload))
            .collect();
        assert_eq!(dm_eval.len(), 1, "{dm_eval:?}");
        // Eval and alone groups stay distinct (different warm shapes).
        let alone: HashSet<String> = jobs
            .iter()
            .filter(|j| matches!(j.payload, JobPayload::Alone { .. }))
            .map(|j| warm_group(&j.payload))
            .collect();
        assert!(alone
            .iter()
            .all(|g| !sa_eval.contains(g) && !dm_eval.contains(g)));
    }

    #[test]
    fn json_escape_round_trips_through_parser() {
        let nasty = "a\"b\\c\nd\te\r\u{1}ü";
        let doc = format!("{{\"k\": \"{}\"}}", json::escape(nasty));
        let v = json::parse(&doc).expect("escaped string parses");
        assert_eq!(v.get_str("k"), Some(nasty));
    }

    #[test]
    fn mainmem_plan_sweeps_backends_and_keys_alone_jobs_per_backend() {
        let scale = tiny_scale();
        let plan = figure_plan("mainmem", &scale).expect("shardable");
        assert_eq!(plan.units.len(), 2 * MAINMEM_SWEEP.len());
        // CD/DCA pairs share each backend; labels carry it.
        assert!(plan.units[0].label.starts_with("flat-50ns"));
        assert!(plan.units[2].label.starts_with("ddr4-2400+"));
        let jobs = plan_jobs(std::slice::from_ref(&plan), 4);
        let alone: Vec<&Job> = jobs
            .iter()
            .filter(|j| matches!(j.payload, JobPayload::Alone { .. }))
            .collect();
        // Alone tables exist for *every* backend (single org), so
        // speedups are normalised within their own backend.
        let mut mms: Vec<MainMemKind> = Vec::new();
        for j in &alone {
            let JobPayload::Alone { main_mem, .. } = &j.payload else {
                unreachable!()
            };
            if !mms.contains(main_mem) {
                mms.push(*main_mem);
            }
        }
        assert_eq!(mms.len(), MAINMEM_SWEEP.len());
        assert_eq!(alone.len() % MAINMEM_SWEEP.len(), 0);
    }

    #[test]
    fn designs_plan_covers_the_full_matrix_and_splits_warm_groups_by_policy() {
        let scale = tiny_scale();
        let plan = figure_plan("designs", &scale).expect("shardable");
        assert_eq!(
            plan.units.len(),
            DESIGNS_MAINMEMS.len() * DESIGNS_POLICIES.len() * Design::ALL.len()
        );
        // Every (backend, policy, design) cell is present and labelled.
        for &mm in DESIGNS_MAINMEMS {
            for &policy in DESIGNS_POLICIES {
                for design in Design::ALL {
                    let label = format!("{}+{}+{}", mm.label(), policy.label(), design.label());
                    assert!(
                        plan.units.iter().any(|u| u.label == label),
                        "missing unit {label}"
                    );
                }
            }
        }
        let jobs = plan_jobs(std::slice::from_ref(&plan), 4);
        // Warm-up evicts through the policy, so eval warm groups must
        // split by policy — but not by design or backend.
        let groups: HashSet<String> = jobs
            .iter()
            .filter(|j| matches!(j.payload, JobPayload::Eval { .. }))
            .map(|j| warm_group(&j.payload))
            .collect();
        assert_eq!(groups.len(), DESIGNS_POLICIES.len(), "{groups:?}");
        // Alone tables (always SRRIP) exist per backend.
        let mut mms: Vec<MainMemKind> = Vec::new();
        for j in &jobs {
            if let JobPayload::Alone { main_mem, .. } = &j.payload {
                if !mms.contains(main_mem) {
                    mms.push(*main_mem);
                }
            }
        }
        assert_eq!(mms.len(), DESIGNS_MAINMEMS.len());
    }

    #[test]
    fn plan_dedupes_shared_units() {
        let scale = tiny_scale();
        let plans: Vec<FigurePlan> = ["fig8", "fig12"]
            .iter()
            .filter_map(|n| figure_plan(n, &scale))
            .collect();
        let jobs = plan_jobs(&plans, 4);
        let mut ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "planner must not emit duplicate jobs");
        // fig8 and fig12 share the SA CD/ROD/DCA no-remap units; the
        // union must be smaller than the sum of the parts.
        let solo: usize = plans
            .iter()
            .map(|p| plan_jobs(std::slice::from_ref(p), 4).len())
            .sum();
        assert!(jobs.len() < solo, "{} !< {solo}", jobs.len());
    }

    #[test]
    fn partial_json_round_trips_exact_bits() {
        let job = Job::new(JobPayload::Eval {
            spec: RunSpec::at_scale(Design::Dca, OrgKind::DirectMapped, &tiny_scale()),
            mixes: vec![1, 2],
        });
        let points = vec![
            MixPoint {
                mix: 1,
                core_ipc: vec![0.1, 0.1 + 0.2, 1.0 / 3.0, 2.0_f64.sqrt()],
                miss_latency_ns: 123.456789,
                apt: std::f64::consts::PI,
                row_hit: 0.999999999999,
            },
            MixPoint {
                mix: 2,
                core_ipc: vec![1.0, 2.0, 3.0, 4.0],
                miss_latency_ns: 0.0,
                apt: f64::MIN_POSITIVE,
                row_hit: 1.0,
            },
        ];
        let text = encode_partial(&job.id, &JobResult::Eval(points.clone()));
        let decoded = decode_partial(&text, &job).expect("valid partial");
        assert_eq!(decoded, JobResult::Eval(points));
    }

    #[test]
    fn alone_partial_round_trips() {
        let job = Job::new(JobPayload::Alone {
            org: OrgKind::paper_set_assoc(),
            insts: 3_000,
            warmup: 6_000,
            seed: DEFAULT_SEED,
            main_mem: MainMemKind::Flat,
            benches: vec![Benchmark::Gcc, Benchmark::GemsFDTD],
        });
        let rows = vec![(Benchmark::Gcc, 0.7312345), (Benchmark::GemsFDTD, 1.25)];
        let text = encode_partial(&job.id, &JobResult::Alone(rows.clone()));
        assert_eq!(
            decode_partial(&text, &job).expect("valid"),
            JobResult::Alone(rows)
        );
    }

    #[test]
    fn partials_are_validated_against_the_job() {
        let scale = tiny_scale();
        let job = Job::new(JobPayload::Eval {
            spec: RunSpec::at_scale(Design::Cd, OrgKind::DirectMapped, &scale),
            mixes: vec![1, 2],
        });
        let other = Job::new(JobPayload::Eval {
            spec: RunSpec::at_scale(Design::Rod, OrgKind::DirectMapped, &scale),
            mixes: vec![1, 2],
        });
        let point = MixPoint {
            mix: 1,
            core_ipc: vec![1.0; 4],
            miss_latency_ns: 1.0,
            apt: 1.0,
            row_hit: 0.5,
        };
        let text = encode_partial(&job.id, &JobResult::Eval(vec![point.clone()]));
        // Wrong job.
        assert!(decode_partial(&text, &other).is_err());
        // Wrong mix coverage (job wants 1 and 2, partial has only 1).
        assert!(decode_partial(&text, &job).is_err());
        // Garbage.
        assert!(decode_partial("{not json", &job).is_err());
        // Wrong schema version.
        let bad = text.replacen("\"schema\": 1", "\"schema\": 99", 1);
        assert!(decode_partial(&bad, &job).is_err());
    }

    #[test]
    fn json_parser_handles_the_basics() {
        let v = json::parse(r#"{"a": [1, -2.5e3], "b": "x\n\"y\" é", "c": true}"#).unwrap();
        assert_eq!(v.get_u64("a"), None);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get_str("b"), Some("x\n\"y\" é"));
        assert_eq!(v.get("c"), Some(&json::Value::Bool(true)));
        assert!(json::parse("{\"a\": 1} trailing").is_err());
        assert!(json::parse("[1, ").is_err());
    }
}
