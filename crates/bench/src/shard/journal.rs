//! The coordinator's write-ahead journal: an append-only newline-JSON
//! log of job state transitions at `results/partials/fabric.journal`,
//! so a `figures --serve` killed mid-sweep resumes exactly where it
//! died.
//!
//! ## Discipline
//!
//! * **Dispatch is journaled before the `JOB` frame is written** (WAL
//!   order): after a crash, every job that *might* have run somewhere
//!   is charged its attempt on replay, so a lost completion costs a
//!   retry instead of a double-count.
//! * `complete` and `quarantine` records are appended when the
//!   coordinator commits the transition (partial persisted / job given
//!   up). On replay they mark the job done or restore its hole.
//! * Records are one JSON object per line; a torn final line (the
//!   coordinator died mid-append) is skipped, never fatal.
//! * The journal is removed when a sweep finishes cleanly and kept
//!   when it drains (exit 130), mirroring the partials' resume story.
//!
//! Replay is deliberately conservative: an in-flight dispatch with no
//! matching completion counts as one consumed attempt even though the
//! agent may never have received it. Partials on disk — not the
//! journal — remain the source of truth for *results*; the journal
//! only restores attempt counts and quarantine decisions, which is
//! exactly the state the partials cannot carry.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::PathBuf;

use super::json;

/// Path of the coordinator journal (under
/// [`partials_dir`](super::partials_dir)).
pub fn journal_path() -> PathBuf {
    super::partials_dir().join("fabric.journal")
}

/// One journaled transition.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Job leased out (journaled *before* the frame is sent).
    Dispatch {
        /// The job id.
        job: String,
        /// 0-based attempt index of this dispatch.
        attempt: u32,
    },
    /// Job's partial persisted and merged.
    Complete {
        /// The job id.
        job: String,
    },
    /// Job given up on after `attempts` tries.
    Quarantine {
        /// The job id.
        job: String,
        /// Attempts consumed.
        attempts: u32,
        /// The last failure reason.
        error: String,
    },
}

/// Render one event as its journal line (no trailing newline).
pub fn encode_event(ev: &Event) -> String {
    match ev {
        Event::Dispatch { job, attempt } => format!(
            "{{\"ev\": \"dispatch\", \"job\": \"{}\", \"attempt\": {attempt}}}",
            json::escape(job)
        ),
        Event::Complete { job } => {
            format!(
                "{{\"ev\": \"complete\", \"job\": \"{}\"}}",
                json::escape(job)
            )
        }
        Event::Quarantine {
            job,
            attempts,
            error,
        } => format!(
            "{{\"ev\": \"quarantine\", \"job\": \"{}\", \"attempts\": {attempts}, \
             \"error\": \"{}\"}}",
            json::escape(job),
            json::escape(error)
        ),
    }
}

/// Parse one journal line; `None` for a torn or foreign line.
pub fn parse_event(line: &str) -> Option<Event> {
    let v = json::parse(line).ok()?;
    let job = v.get_str("job")?.to_string();
    match v.get_str("ev")? {
        "dispatch" => Some(Event::Dispatch {
            job,
            attempt: u32::try_from(v.get_u64("attempt")?).ok()?,
        }),
        "complete" => Some(Event::Complete { job }),
        "quarantine" => Some(Event::Quarantine {
            job,
            attempts: u32::try_from(v.get_u64("attempts")?).ok()?,
            error: v.get_str("error")?.to_string(),
        }),
        _ => None,
    }
}

/// An open journal, appending one line per event.
pub struct Journal {
    file: std::fs::File,
    /// First append error, reported once (a sick disk must not spam
    /// a line per job).
    complained: bool,
}

impl Journal {
    /// Open (creating as needed) the journal for appending.
    pub fn open() -> Result<Journal, String> {
        let path = journal_path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        Ok(Journal {
            file,
            complained: false,
        })
    }

    /// Append one event. Best-effort: an append failure weakens resume
    /// (a re-started coordinator re-runs more) but must not kill a
    /// live sweep, so it is logged rather than propagated.
    pub fn append(&mut self, ev: &Event) {
        let line = encode_event(ev);
        if let Err(e) = writeln!(self.file, "{line}").and_then(|()| self.file.flush()) {
            if !self.complained {
                self.complained = true;
                eprintln!("figures: fabric: warning: cannot append to the journal: {e}");
            }
        }
    }
}

/// The state a journal replay reconstructs.
#[derive(Debug, Default)]
pub struct Replay {
    /// job id → attempts already consumed (next dispatch uses this
    /// as its 0-based attempt index).
    pub attempts: HashMap<String, u32>,
    /// Jobs whose completion was journaled.
    pub completed: HashSet<String>,
    /// Quarantine decisions, in journal order: `(job, attempts, error)`.
    pub quarantined: Vec<(String, u32, String)>,
}

/// Fold journal lines into a [`Replay`] (pure; the file wrapper is
/// [`replay`]).
pub fn replay_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Replay {
    let mut r = Replay::default();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_event(line) {
            Some(Event::Dispatch { job, attempt }) => {
                let used = attempt.saturating_add(1);
                let e = r.attempts.entry(job).or_insert(0);
                *e = (*e).max(used);
            }
            Some(Event::Complete { job }) => {
                r.completed.insert(job);
            }
            Some(Event::Quarantine {
                job,
                attempts,
                error,
            }) => {
                r.quarantined.retain(|(j, _, _)| *j != job);
                r.quarantined.push((job, attempts, error));
            }
            // Torn tail or foreign garbage: resume with what parsed.
            None => {}
        }
    }
    r
}

/// Replay the on-disk journal (empty state when absent/unreadable).
pub fn replay() -> Replay {
    match std::fs::read_to_string(journal_path()) {
        Ok(text) => replay_lines(text.lines()),
        Err(_) => Replay::default(),
    }
}

/// Remove the journal (sweep finished cleanly).
pub fn remove() {
    let _ = std::fs::remove_file(journal_path());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip() {
        let evs = [
            Event::Dispatch {
                job: "ev_dm_cd_x0_l0_ff4_i1_w1_s0_mmf_m1".to_string(),
                attempt: 2,
            },
            Event::Complete {
                job: "al_x".to_string(),
            },
            Event::Quarantine {
                job: "al_x".to_string(),
                attempts: 3,
                error: "worker babbled: \"quoted\"".to_string(),
            },
        ];
        for ev in evs {
            assert_eq!(parse_event(&encode_event(&ev)), Some(ev.clone()), "{ev:?}");
        }
        assert_eq!(
            parse_event("{\"ev\": \"later-schema\", \"job\": \"x\"}"),
            None
        );
        assert_eq!(parse_event("{\"ev\": \"dispatch\", \"job\": \"x\"}"), None);
        assert_eq!(parse_event("not json"), None);
    }

    #[test]
    fn replay_restores_attempts_completions_and_quarantine() {
        let a = Event::Dispatch {
            job: "a".to_string(),
            attempt: 0,
        };
        let a1 = Event::Dispatch {
            job: "a".to_string(),
            attempt: 1,
        };
        let b = Event::Dispatch {
            job: "b".to_string(),
            attempt: 0,
        };
        let bq = Event::Quarantine {
            job: "b".to_string(),
            attempts: 3,
            error: "gave up".to_string(),
        };
        let c = Event::Complete {
            job: "c".to_string(),
        };
        let lines: Vec<String> = [&a, &a1, &b, &bq, &c]
            .iter()
            .map(|e| encode_event(e))
            .collect();
        // A torn final line (crash mid-append) is skipped, not fatal.
        let mut text = lines.join("\n");
        text.push_str("\n{\"ev\": \"disp");
        let r = replay_lines(text.lines());
        assert_eq!(r.attempts.get("a"), Some(&2), "max(attempt)+1");
        assert_eq!(r.attempts.get("b"), Some(&1));
        assert!(r.completed.contains("c"));
        assert_eq!(
            r.quarantined,
            vec![("b".to_string(), 3, "gave up".to_string())]
        );
    }
}
