//! Worker side of the persistent pool: the wire protocol, the serve
//! loop behind `figures --worker --serve`, and the deterministic
//! fault-injection plan both sides of the tests lean on.
//!
//! ## Wire protocol
//!
//! One frame per line, fields separated by single spaces. The
//! coordinator writes to the worker's stdin:
//!
//! ```text
//! RUN <attempt> <job_id>    dispatch one job; <attempt> is the
//!                           0-based try index (fault plans key on it)
//! EXIT                      finish up and exit 0
//! ```
//!
//! The worker answers on stdout:
//!
//! ```text
//! HELLO <pid> v1            once, immediately after start
//! HB <seq> <progress>       heartbeat, every DCA_HEARTBEAT_MS
//!                           (default 250 ms); <progress> is a
//!                           monotonic work counter (jobs finished +
//!                           warm-lock wait ticks), so a worker
//!                           legitimately waiting on another process's
//!                           warm-up keeps its job deadline alive
//! OK <job_id>               job done, partial written
//! ERR <job_id> <message>    job failed (the worker lives on)
//! BYE                       acknowledges EXIT (or stdin EOF)
//! ```
//!
//! Anything else arriving on the coordinator's side of the pipe is a
//! *babbling* worker: the supervisor kills and respawns it, and the
//! in-flight job consumes one attempt. Human-facing chatter belongs on
//! stderr, which the supervisor captures per worker (the tail is
//! attached to quarantine records).
//!
//! ## Exit codes
//!
//! A serve worker exits `0` after `EXIT`/EOF, [`FAULT_EXIT`] on an
//! injected crash, and `1` on an internal error (unusable stdio).
//!
//! ## Fault plan (`DCA_FAULT_PLAN`)
//!
//! A comma-separated list of `<mode>:<glob>@<attempt>` rules, e.g.
//! `crash:ev_*_m2@1,hang:al_*@0,garbage:*@*`. `<mode>` is one of
//! `crash` (exit [`FAULT_EXIT`] before running the job), `hang`
//! (never finish the job but keep heartbeating — exercises the job
//! deadline), `garbage` (emit a truncated frame plus binary-ish noise
//! on stdout — exercises babble detection). `<glob>` matches the whole
//! job id with `*` wildcards; `<attempt>` is a 0-based try index or
//! `*` for every attempt. The first matching rule wins. Matching is a
//! pure function of `(job id, attempt)`, so runs are deterministic and
//! a plan like `crash:…@0` means "crash the first try, succeed on the
//! retry" — which the integration tests use to assert byte-identical
//! output under every failure mode.
//!
//! Three further modes are **network faults** injected by a fabric
//! *agent* (see `shard::agent`) at the moment it would upload a
//! finished partial, instead of by a pool worker: `drop` (close the
//! connection without sending the result), `torn` (send a truncated
//! frame, then close) and `garbage-frame` (send a frame whose digest
//! trailer lies, then close). Worker-side matching
//! ([`FaultPlan::fault_for`]) ignores network rules and agent-side
//! matching ([`FaultPlan::net_fault_for`]) ignores worker rules, so
//! one plan string can script both layers at once.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Protocol version tag carried by `HELLO`.
pub const PROTOCOL_VERSION: &str = "v1";

/// Exit code of an injected `crash` fault (distinct from `1` so a real
/// worker bug is distinguishable from a planned one in CI logs).
pub const FAULT_EXIT: i32 = 101;

/// Environment variable naming the fault plan.
pub const FAULT_PLAN_ENV: &str = "DCA_FAULT_PLAN";

/// Heartbeat cadence (`DCA_HEARTBEAT_MS`, default 250 ms).
pub fn heartbeat_period() -> Duration {
    let ms = std::env::var("DCA_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v >= 10)
        .unwrap_or(250);
    Duration::from_millis(ms)
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// A worker→coordinator frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// `HELLO <pid> <version>`
    Hello {
        /// Worker process id.
        pid: u32,
        /// Protocol version token.
        version: String,
    },
    /// `HB <seq> <progress>`
    Hb {
        /// Monotonic heartbeat sequence number.
        seq: u64,
        /// Monotonic work counter (see module docs).
        progress: u64,
    },
    /// `OK <job_id>`
    Ok {
        /// The finished job.
        job_id: String,
    },
    /// `ERR <job_id> <message>`
    Err {
        /// The failed job.
        job_id: String,
        /// One-line failure description.
        message: String,
    },
    /// `BYE`
    Bye,
}

/// Parse one stdout line into a [`Frame`]. `Err` carries the offending
/// line — the supervisor treats it as a babbling worker.
pub fn parse_frame(line: &str) -> Result<Frame, String> {
    let mut it = line.splitn(2, ' ');
    let head = it.next().unwrap_or("");
    let rest = it.next().unwrap_or("");
    match head {
        "HELLO" => {
            let mut f = rest.split(' ');
            let pid = f
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| line.to_string())?;
            let version = f.next().ok_or_else(|| line.to_string())?.to_string();
            if f.next().is_some() {
                return Err(line.to_string());
            }
            Ok(Frame::Hello { pid, version })
        }
        "HB" => {
            let mut f = rest.split(' ');
            let seq = f
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| line.to_string())?;
            let progress = f
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| line.to_string())?;
            if f.next().is_some() {
                return Err(line.to_string());
            }
            Ok(Frame::Hb { seq, progress })
        }
        "OK" => {
            if rest.is_empty() || rest.contains(' ') {
                return Err(line.to_string());
            }
            Ok(Frame::Ok {
                job_id: rest.to_string(),
            })
        }
        "ERR" => {
            let mut f = rest.splitn(2, ' ');
            let job_id = f
                .next()
                .filter(|j| !j.is_empty())
                .ok_or_else(|| line.to_string())?;
            let message = f.next().unwrap_or("(no message)").to_string();
            Ok(Frame::Err {
                job_id: job_id.to_string(),
                message,
            })
        }
        "BYE" if rest.is_empty() => Ok(Frame::Bye),
        _ => Err(line.to_string()),
    }
}

// ---------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------

/// What an injected fault does to the worker (or, for the `Net*`
/// modes, to the fabric agent's upload of a finished partial).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Exit [`FAULT_EXIT`] before running the job.
    Crash,
    /// Never finish the job; heartbeats continue.
    Hang,
    /// Emit garbage frames on stdout, then stall.
    Garbage,
    /// Agent: close the fabric connection instead of sending the
    /// finished partial (`drop`).
    NetDrop,
    /// Agent: send a truncated result frame, then close (`torn`).
    NetTorn,
    /// Agent: send a result frame whose digest trailer lies, then
    /// close (`garbage-frame`).
    NetGarbage,
}

impl FaultMode {
    /// Whether this mode is injected by a fabric agent at the network
    /// layer (as opposed to by a pool worker).
    pub fn is_net(self) -> bool {
        matches!(
            self,
            FaultMode::NetDrop | FaultMode::NetTorn | FaultMode::NetGarbage
        )
    }
}

/// One `<mode>:<glob>@<attempt>` rule.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// What to do on a match.
    pub mode: FaultMode,
    /// `*`-glob over the whole job id.
    pub glob: String,
    /// 0-based attempt to fire on; `None` = every attempt.
    pub attempt: Option<u32>,
}

/// A parsed `DCA_FAULT_PLAN`. An empty plan matches nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Rules in plan order; the first match wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a plan string (see module docs for the grammar).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (mode, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault rule {part:?} is missing the ':' after its mode"))?;
            let mode = match mode {
                "crash" => FaultMode::Crash,
                "hang" => FaultMode::Hang,
                "garbage" => FaultMode::Garbage,
                "drop" => FaultMode::NetDrop,
                "torn" => FaultMode::NetTorn,
                "garbage-frame" => FaultMode::NetGarbage,
                other => {
                    return Err(format!(
                        "unknown fault mode {other:?} \
                         (want crash, hang, garbage, drop, torn or garbage-frame)"
                    ))
                }
            };
            let (glob, attempt) = rest
                .split_once('@')
                .ok_or_else(|| format!("fault rule {part:?} is missing the '@<attempt>' part"))?;
            if glob.is_empty() {
                return Err(format!("fault rule {part:?} has an empty job glob"));
            }
            let attempt = if attempt == "*" {
                None
            } else {
                Some(
                    attempt
                        .parse()
                        .map_err(|_| format!("bad attempt {attempt:?} in fault rule {part:?}"))?,
                )
            };
            rules.push(FaultRule {
                mode,
                glob: glob.to_string(),
                attempt,
            });
        }
        Ok(FaultPlan { rules })
    }

    /// The plan from [`FAULT_PLAN_ENV`]; a malformed plan is a hard
    /// error (a test harness typo must not silently run fault-free).
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(text) => FaultPlan::parse(&text),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// The worker-side fault to inject for `(job_id, attempt)`, if
    /// any. Network rules are invisible here.
    pub fn fault_for(&self, job_id: &str, attempt: u32) -> Option<FaultMode> {
        self.matching(job_id, attempt, false)
    }

    /// The agent-side network fault to inject when uploading the
    /// finished partial of `(job_id, attempt)`, if any. Worker rules
    /// are invisible here.
    pub fn net_fault_for(&self, job_id: &str, attempt: u32) -> Option<FaultMode> {
        self.matching(job_id, attempt, true)
    }

    fn matching(&self, job_id: &str, attempt: u32, net: bool) -> Option<FaultMode> {
        self.rules
            .iter()
            .filter(|r| r.mode.is_net() == net)
            .find(|r| r.attempt.is_none_or(|a| a == attempt) && glob_match(&r.glob, job_id))
            .map(|r| r.mode)
    }
}

/// `*`-wildcard match of `pat` against the whole of `text`.
pub fn glob_match(pat: &str, text: &str) -> bool {
    // Iterative backtracking matcher (bytes: job ids are ASCII).
    let (p, t) = (pat.as_bytes(), text.as_bytes());
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

// ---------------------------------------------------------------------
// Serve loop
// ---------------------------------------------------------------------

#[cfg(unix)]
fn ignore_sigint() {
    // The controlling terminal delivers Ctrl-C to the whole foreground
    // process group; workers must ignore it so the supervisor can drain
    // in-flight jobs instead of losing its pool mid-flush. No libc in
    // the workspace — bind signal(2) directly.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIG_IGN: usize = 1;
    unsafe {
        signal(SIGINT, SIG_IGN);
    }
}

#[cfg(not(unix))]
fn ignore_sigint() {}

/// The `figures --worker --serve` entry point: read `RUN`/`EXIT`
/// commands from stdin forever, keeping the process's warm cache hot
/// across jobs. Never returns.
pub fn serve() -> ! {
    ignore_sigint();
    let plan = match FaultPlan::from_env() {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("figures worker: error: bad {FAULT_PLAN_ENV}: {e}");
            std::process::exit(1);
        }
    };

    let progress = Arc::new(AtomicU64::new(0));
    {
        let out = std::io::stdout();
        let mut out = out.lock();
        let _ = writeln!(out, "HELLO {} {PROTOCOL_VERSION}", std::process::id());
    }
    // Heartbeat thread. Each writeln! is one write_fmt under stdout's
    // internal lock, so frames never tear across threads; stdout is
    // line-buffered, so every frame flushes at its newline.
    {
        let progress = Arc::clone(&progress);
        let period = heartbeat_period();
        std::thread::spawn(move || {
            let mut seq = 0u64;
            loop {
                std::thread::sleep(period);
                let p = progress.load(Ordering::Relaxed) + crate::warm::wait_ticks();
                let mut out = std::io::stdout();
                if writeln!(out, "HB {seq} {p}").is_err() {
                    return; // coordinator is gone; the main loop will see EOF
                }
                seq += 1;
            }
        });
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim_end();
        if line == "EXIT" {
            break;
        }
        let Some(rest) = line.strip_prefix("RUN ") else {
            if !line.is_empty() {
                eprintln!("figures worker: warning: ignoring unknown command {line:?}");
            }
            continue;
        };
        let Some((attempt, job_id)) = rest.split_once(' ') else {
            eprintln!("figures worker: warning: malformed RUN {rest:?}");
            continue;
        };
        let attempt: u32 = match attempt.parse() {
            Ok(a) => a,
            Err(_) => {
                eprintln!("figures worker: warning: malformed attempt in RUN {rest:?}");
                continue;
            }
        };
        match plan.fault_for(job_id, attempt) {
            Some(FaultMode::Crash) => {
                eprintln!("figures worker: fault plan: crashing on {job_id} (attempt {attempt})");
                std::process::exit(FAULT_EXIT);
            }
            Some(FaultMode::Hang) => {
                eprintln!("figures worker: fault plan: hanging on {job_id} (attempt {attempt})");
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            Some(FaultMode::Garbage) => {
                eprintln!("figures worker: fault plan: babbling on {job_id} (attempt {attempt})");
                let mut out = std::io::stdout();
                let _ = writeln!(out, "OK"); // truncated result frame
                let _ = writeln!(out, "\u{1}\u{2} not a frame \u{7f}");
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            // Net modes are filtered out by `fault_for` — they belong
            // to the agent's upload path, not the worker.
            Some(m) if m.is_net() => unreachable!("net fault {m:?} reached the worker"),
            Some(_) | None => {}
        }
        let reply = match super::run_worker(job_id) {
            Ok(()) => format!("OK {job_id}"),
            // Frames are line-oriented; fold any multi-line error.
            Err(e) => format!("ERR {job_id} {}", e.replace('\n', "; ")),
        };
        progress.fetch_add(1, Ordering::Relaxed);
        let mut out = std::io::stdout();
        if writeln!(out, "{reply}").is_err() {
            break;
        }
    }
    let mut out = std::io::stdout();
    let _ = writeln!(out, "BYE");
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        assert_eq!(
            parse_frame("HELLO 1234 v1"),
            Ok(Frame::Hello {
                pid: 1234,
                version: "v1".into()
            })
        );
        assert_eq!(
            parse_frame("HB 7 42"),
            Ok(Frame::Hb {
                seq: 7,
                progress: 42
            })
        );
        assert_eq!(
            parse_frame("OK ev_dm_cd_x0_l0_ff4_i1_w1_s0_mmf_m1"),
            Ok(Frame::Ok {
                job_id: "ev_dm_cd_x0_l0_ff4_i1_w1_s0_mmf_m1".into()
            })
        );
        assert_eq!(
            parse_frame("ERR al_x cannot write partial: disk full"),
            Ok(Frame::Err {
                job_id: "al_x".into(),
                message: "cannot write partial: disk full".into()
            })
        );
        assert_eq!(parse_frame("BYE"), Ok(Frame::Bye));
    }

    #[test]
    fn garbage_lines_are_rejected() {
        for line in [
            "",
            "OK",
            "OK two ids",
            "HB 7",
            "HB x y",
            "HELLO 12",
            "BYE now",
            "\u{1}\u{2} not a frame \u{7f}",
            "ok lowercase",
            "ERR ",
        ] {
            assert!(parse_frame(line).is_err(), "{line:?} must not parse");
        }
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("ev_*", "ev_sa15_cd"));
        assert!(!glob_match("ev_*", "al_sa15"));
        assert!(glob_match("ev_*_m2", "ev_sa15_cd_m2"));
        assert!(!glob_match("ev_*_m2", "ev_sa15_cd_m2.3"));
        assert!(glob_match("*dca*", "ev_sa15_dca_x0"));
        assert!(glob_match("a*b*c", "a__b__b_c"));
        assert!(!glob_match("a*b*c", "a__b__b_d"));
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abcd"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("", ""));
    }

    #[test]
    fn fault_plans_parse_and_match() {
        let plan = FaultPlan::parse("crash:ev_*_m2@1, hang:al_*@0,garbage:*dca*@*").expect("plan");
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.fault_for("ev_x_m2", 1), Some(FaultMode::Crash));
        assert_eq!(plan.fault_for("ev_x_m2", 0), None);
        assert_eq!(plan.fault_for("al_x", 0), Some(FaultMode::Hang));
        assert_eq!(plan.fault_for("al_x", 1), None);
        assert_eq!(plan.fault_for("ev_dca_m9", 5), Some(FaultMode::Garbage));
        // First match wins: a crash rule shadows a later catch-all.
        let plan = FaultPlan::parse("crash:a*@*,garbage:*@*").expect("plan");
        assert_eq!(plan.fault_for("abc", 3), Some(FaultMode::Crash));
        assert_eq!(plan.fault_for("zzz", 3), Some(FaultMode::Garbage));
        assert_eq!(FaultPlan::parse("").expect("empty").rules.len(), 0);
        for bad in [
            "crash",
            "crash:ev_*",
            "boom:ev_*@1",
            "crash:@1",
            "crash:ev_*@x",
            "drop:ev_*",
            "torn",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn net_faults_parse_and_stay_in_their_layer() {
        let plan = FaultPlan::parse("drop:ev_*@0,torn:al_*@1,garbage-frame:*dca*@*").expect("plan");
        assert_eq!(plan.net_fault_for("ev_x", 0), Some(FaultMode::NetDrop));
        assert_eq!(plan.net_fault_for("ev_x", 1), None);
        assert_eq!(plan.net_fault_for("al_x", 1), Some(FaultMode::NetTorn));
        assert_eq!(
            plan.net_fault_for("ev_dca_m9", 7),
            Some(FaultMode::NetGarbage)
        );
        // Network rules never reach the worker layer, and vice versa.
        assert_eq!(plan.fault_for("ev_x", 0), None);
        let mixed = FaultPlan::parse("drop:*@*,crash:*@*").expect("plan");
        assert_eq!(mixed.fault_for("ev_x", 0), Some(FaultMode::Crash));
        assert_eq!(mixed.net_fault_for("ev_x", 0), Some(FaultMode::NetDrop));
        assert!(FaultMode::NetDrop.is_net() && !FaultMode::Crash.is_net());
    }
}
