//! Agent side of the sweep fabric: `figures --agent <addr> --jobs N`.
//!
//! An agent is a thin remote front-end to the same persistent worker
//! pool `--jobs` runs locally: it connects to a coordinator,
//! authenticates with a `HELLO` (protocol + build + config token),
//! and drains leased jobs through `N` local `figures --worker --serve`
//! subprocesses, forwarding their heartbeats so the coordinator's
//! leases stay alive. Results are read back as the partial's exact
//! bytes and uploaded in a digest-trailed frame.
//!
//! Robustness properties:
//!
//! * **The pool outlives the connection.** A lost session (coordinator
//!   killed, network fault) never kills running workers: the agent
//!   reconnects (retrying for `DCA_AGENT_RETRY_MS`, default 10 000)
//!   and, when the coordinator re-dispatches a job that meanwhile
//!   finished locally, answers instantly from the on-disk partial.
//! * **At-least-once, locally deduplicated.** A re-dispatch of a job
//!   the pool is already running just refreshes the attempt index —
//!   no duplicate computation on this host.
//! * **Deterministic network faults.** `DCA_FAULT_PLAN` rules with
//!   modes `drop`/`torn`/`garbage-frame` fire at the moment a finished
//!   partial would be uploaded (keyed on `(job id, attempt)` like all
//!   fault rules), exercising the coordinator's verified transport.
//! * **Graceful drain.** SIGINT/SIGTERM stops accepting work, lets
//!   in-flight jobs finish and upload, then says `BYE` and exits 130.
//!
//! ## Exit codes
//!
//! `0` sweep complete (coordinator sent `EXIT`); `1` coordinator
//! unreachable, `REJECT`ed HELLO, or an unusable environment; `130`
//! drained after a stop request.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use super::net::{self, Msg};
use super::pool::{parse_frame, FaultMode, FaultPlan, Frame};
use super::supervisor::{install_signal_handlers, stop_requested};
use super::{load_existing_partial, parse_job_id, partial_path, Job};

/// How long the agent keeps retrying a dead coordinator address before
/// giving up (`DCA_AGENT_RETRY_MS`, default 10 000).
fn retry_window() -> Duration {
    let ms = std::env::var("DCA_AGENT_RETRY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(10_000);
    Duration::from_millis(ms)
}

/// Events from the connection reader and the worker readers.
enum AEv {
    /// A coordinator message (on connection generation `gen`).
    Net { gen: u64, msg: Msg },
    /// The connection died (EOF, torn/garbage frame, I/O error).
    NetGone { gen: u64, why: String },
    /// One stdout line from worker `slot` (at generation `gen`).
    WLine { slot: usize, gen: u64, line: String },
    /// Worker `slot`'s stdout closed.
    WEof { slot: usize, gen: u64 },
}

/// What an event handler decided about the session.
enum Flow {
    /// Keep going.
    Continue,
    /// The connection is unusable; reconnect.
    Reconnect,
    /// Terminal: exit the agent with this code.
    Exit(i32),
}

/// One local worker slot (a pared-down supervisor slot: the
/// coordinator owns deadlines, retries and quarantine — the agent only
/// tracks busy/idle and babble).
struct Slot {
    /// Bumped on every (re)spawn and kill; stale reader events are
    /// dropped.
    gen: u64,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// The leased job this slot is running.
    busy: Option<String>,
    /// Last heartbeat `progress` seen (forwarded upstream).
    progress: u64,
}

/// The agent's persistent local pool.
struct Pool {
    exe: PathBuf,
    tx: Sender<AEv>,
    slots: Vec<Slot>,
    max: usize,
}

impl Pool {
    fn busy_count(&self) -> usize {
        self.slots.iter().filter(|s| s.busy.is_some()).count()
    }

    fn is_running(&self, job_id: &str) -> bool {
        self.slots.iter().any(|s| s.busy.as_deref() == Some(job_id))
    }

    /// An idle live slot, respawning or growing the pool as needed.
    fn acquire_idle(&mut self) -> Option<usize> {
        if let Some(si) = self
            .slots
            .iter()
            .position(|s| s.child.is_some() && s.busy.is_none())
        {
            return Some(si);
        }
        if let Some(si) = self.slots.iter().position(|s| s.child.is_none()) {
            return self.spawn_into(si).then_some(si);
        }
        if self.slots.len() < self.max {
            let si = self.slots.len();
            self.slots.push(Slot {
                gen: 0,
                child: None,
                stdin: None,
                busy: None,
                progress: 0,
            });
            return self.spawn_into(si).then_some(si);
        }
        None
    }

    fn spawn_into(&mut self, si: usize) -> bool {
        let gen = self.slots[si].gen + 1;
        // Worker chatter goes straight to the agent's stderr; the
        // coordinator keeps no per-agent stderr tail (FAIL messages
        // carry the one-line cause instead).
        let child = Command::new(&self.exe)
            .args(["--worker", "--serve"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        let mut child = match child {
            Ok(c) => c,
            Err(e) => {
                eprintln!("figures agent: cannot spawn pool worker: {e}");
                return false;
            }
        };
        let (Some(stdin), Some(stdout)) = (child.stdin.take(), child.stdout.take()) else {
            // Pipes we asked for are missing: treat it like a failed
            // spawn so the caller respawns or fails the job cleanly.
            eprintln!("figures agent: pool worker spawned without stdio pipes");
            let _ = child.kill();
            let _ = child.wait();
            return false;
        };
        let tx = self.tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if tx
                    .send(AEv::WLine {
                        slot: si,
                        gen,
                        line,
                    })
                    .is_err()
                {
                    return;
                }
            }
            let _ = tx.send(AEv::WEof { slot: si, gen });
        });
        self.slots[si] = Slot {
            gen,
            child: Some(child),
            stdin: Some(stdin),
            busy: None,
            progress: 0,
        };
        true
    }

    /// Write a `RUN` frame to slot `si`.
    fn run(&mut self, si: usize, attempt: u32, job_id: &str) -> bool {
        let wrote = self.slots[si]
            .stdin
            .as_mut()
            .is_some_and(|w| writeln!(w, "RUN {attempt} {job_id}").is_ok() && w.flush().is_ok());
        if wrote {
            self.slots[si].busy = Some(job_id.to_string());
        }
        wrote
    }

    fn kill(&mut self, si: usize) {
        let slot = &mut self.slots[si];
        slot.gen += 1;
        slot.stdin = None;
        slot.busy = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// EXIT every worker, give the pool a moment, then force it.
    fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if let Some(w) = slot.stdin.as_mut() {
                let _ = writeln!(w, "EXIT");
            }
            slot.stdin = None;
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let mut all_gone = true;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => slot.child = None,
                        _ => all_gone = false,
                    }
                }
            }
            if all_gone || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Everything that survives across reconnects.
struct AgentState {
    plan: FaultPlan,
    pool: Pool,
    /// Leased jobs waiting for a free slot.
    backlog: VecDeque<String>,
    /// Latest attempt index per leased job (fault rules key on it).
    attempts: HashMap<String, u32>,
}

impl AgentState {
    fn handle(&mut self, ev: AEv, gen: u64, w: &mut TcpStream, welcomed: &mut bool) -> Flow {
        match ev {
            AEv::Net { gen: g, .. } | AEv::NetGone { gen: g, .. } if g != gen => Flow::Continue,
            AEv::Net { msg, .. } => match msg {
                Msg::Welcome => {
                    *welcomed = true;
                    Flow::Continue
                }
                Msg::Reject { reason } => {
                    eprintln!("figures agent: coordinator rejected this agent: {reason}");
                    Flow::Exit(1)
                }
                Msg::Job { attempt, job_id } => self.handle_job(attempt, job_id, w),
                Msg::Exit => {
                    eprintln!("figures agent: sweep complete");
                    Flow::Exit(0)
                }
                other => {
                    eprintln!("figures agent: coordinator sent an agent-only message {other:?}");
                    Flow::Reconnect
                }
            },
            AEv::NetGone { why, .. } => {
                eprintln!("figures agent: connection lost: {why}");
                Flow::Reconnect
            }
            AEv::WLine { slot, gen, line } => self.handle_worker_line(slot, gen, &line, w),
            AEv::WEof { slot, gen } => {
                if self.pool.slots[slot].gen != gen {
                    return Flow::Continue;
                }
                if let Some(child) = self.pool.slots[slot].child.as_mut() {
                    let _ = child.wait();
                }
                self.pool.slots[slot].child = None;
                self.pool.slots[slot].stdin = None;
                self.pool.slots[slot].gen += 1;
                match self.pool.slots[slot].busy.take() {
                    Some(job_id) => self.send_fail(w, &job_id, "worker exited mid-run"),
                    None => Flow::Continue,
                }
            }
        }
    }

    fn handle_job(&mut self, attempt: u32, job_id: String, w: &mut TcpStream) -> Flow {
        // Always refresh the attempt index: a re-dispatch of work
        // already running here must key later fault rules (and FAIL
        // reports) on the coordinator's current attempt.
        self.attempts.insert(job_id.clone(), attempt);
        if stop_requested() {
            return self.send_fail(w, &job_id, "agent is draining");
        }
        let job = match parse_job_id(&job_id) {
            Ok(payload) => Job {
                id: job_id.clone(),
                payload,
            },
            Err(e) => return self.send_fail(w, &job_id, &format!("unusable job id: {e}")),
        };
        if load_existing_partial(&job).is_some() {
            // Finished during an earlier connection (or an earlier
            // sweep in this directory): answer from disk.
            return self.send_done(w, &job_id);
        }
        if self.pool.is_running(&job_id) || self.backlog.contains(&job_id) {
            return Flow::Continue; // duplicate lease; work is already on its way
        }
        match self.pool.acquire_idle() {
            Some(si) => {
                if self.pool.run(si, attempt, &job_id) {
                    Flow::Continue
                } else {
                    self.pool.kill(si);
                    self.send_fail(w, &job_id, "worker pipe failed")
                }
            }
            None => {
                self.backlog.push_back(job_id);
                Flow::Continue
            }
        }
    }

    fn handle_worker_line(&mut self, si: usize, gen: u64, line: &str, w: &mut TcpStream) -> Flow {
        if self.pool.slots[si].gen != gen {
            return Flow::Continue;
        }
        match parse_frame(line) {
            Err(bad) => self.babble(si, w, &format!("unparseable frame {bad:?}")),
            Ok(Frame::Hello { .. }) | Ok(Frame::Bye) => Flow::Continue,
            Ok(Frame::Hb { progress, .. }) => {
                let slot = &mut self.pool.slots[si];
                if progress == slot.progress {
                    return Flow::Continue;
                }
                slot.progress = progress;
                match slot.busy.clone() {
                    // Forward only *changing* progress: the coordinator
                    // renews the lease on change, so a hung worker
                    // still blows its lease deadline upstream.
                    Some(job_id) => self.send(w, &Msg::Hb { job_id, progress }),
                    None => Flow::Continue,
                }
            }
            Ok(Frame::Ok { job_id }) => {
                if self.pool.slots[si].busy.as_deref() != Some(job_id.as_str()) {
                    return self.babble(
                        si,
                        w,
                        &format!("OK for a job it was not given ({job_id})"),
                    );
                }
                self.pool.slots[si].busy = None;
                match self.pull_backlog(w) {
                    Flow::Continue => self.send_done(w, &job_id),
                    other => other,
                }
            }
            Ok(Frame::Err { job_id, message }) => {
                if self.pool.slots[si].busy.as_deref() != Some(job_id.as_str()) {
                    return self.babble(
                        si,
                        w,
                        &format!("ERR for a job it was not given ({job_id})"),
                    );
                }
                self.pool.slots[si].busy = None;
                match self.pull_backlog(w) {
                    Flow::Continue => self.send_fail(w, &job_id, &message),
                    other => other,
                }
            }
        }
    }

    fn babble(&mut self, si: usize, w: &mut TcpStream, what: &str) -> Flow {
        eprintln!("figures agent: worker {si} is babbling: {what}; killing it");
        let job = self.pool.slots[si].busy.clone();
        self.pool.kill(si);
        match job {
            Some(job_id) => self.send_fail(w, &job_id, &format!("worker babbled: {what}")),
            None => Flow::Continue,
        }
    }

    /// Move backlogged jobs onto idle slots.
    fn pull_backlog(&mut self, w: &mut TcpStream) -> Flow {
        while !self.backlog.is_empty() {
            let Some(si) = self.pool.acquire_idle() else {
                return Flow::Continue;
            };
            let Some(job_id) = self.backlog.pop_front() else {
                return Flow::Continue;
            };
            let attempt = self.attempts.get(&job_id).copied().unwrap_or(0);
            if !self.pool.run(si, attempt, &job_id) {
                self.pool.kill(si);
                match self.send_fail(w, &job_id, "worker pipe failed") {
                    Flow::Continue => {}
                    other => return other,
                }
            }
        }
        Flow::Continue
    }

    /// Upload a finished job's partial — or inject the planned network
    /// fault at exactly this moment.
    fn send_done(&mut self, w: &mut TcpStream, job_id: &str) -> Flow {
        let partial = match std::fs::read_to_string(partial_path(job_id)) {
            Ok(text) => text,
            Err(e) => {
                return self.send_fail(w, job_id, &format!("cannot read finished partial: {e}"))
            }
        };
        let attempt = self.attempts.get(job_id).copied().unwrap_or(0);
        let msg = Msg::Done {
            job_id: job_id.to_string(),
            partial,
        };
        match self.plan.net_fault_for(job_id, attempt) {
            Some(FaultMode::NetDrop) => {
                eprintln!(
                    "figures agent: fault plan: dropping the connection instead of \
                     sending {job_id} (attempt {attempt})"
                );
                let _ = w.shutdown(Shutdown::Both);
                Flow::Reconnect
            }
            Some(FaultMode::NetTorn) => {
                eprintln!(
                    "figures agent: fault plan: tearing the result frame of {job_id} \
                     (attempt {attempt})"
                );
                let _ = net::write_torn_frame(w, &net::encode(&msg));
                let _ = w.shutdown(Shutdown::Both);
                Flow::Reconnect
            }
            Some(FaultMode::NetGarbage) => {
                eprintln!(
                    "figures agent: fault plan: corrupting the result frame of {job_id} \
                     (attempt {attempt})"
                );
                let _ = net::write_garbage_frame(w, &net::encode(&msg));
                let _ = w.shutdown(Shutdown::Both);
                Flow::Reconnect
            }
            Some(_) | None => self.send(w, &msg),
        }
    }

    fn send_fail(&mut self, w: &mut TcpStream, job_id: &str, message: &str) -> Flow {
        self.send(
            w,
            &Msg::Fail {
                job_id: job_id.to_string(),
                message: message.to_string(),
            },
        )
    }

    fn send(&mut self, w: &mut TcpStream, msg: &Msg) -> Flow {
        if net::send(w, msg).is_err() {
            Flow::Reconnect
        } else {
            Flow::Continue
        }
    }

    /// Wait (disconnected) for in-flight jobs to finish and flush
    /// their partials locally, consuming only worker events.
    fn drain_pool_locally(&mut self, rx: &Receiver<AEv>) {
        while self.pool.busy_count() > 0 {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(AEv::WLine { slot, gen, line }) => {
                    if self.pool.slots[slot].gen != gen {
                        continue;
                    }
                    match parse_frame(&line) {
                        Ok(Frame::Ok { job_id }) | Ok(Frame::Err { job_id, .. })
                            if self.pool.slots[slot].busy.as_deref() == Some(job_id.as_str()) =>
                        {
                            self.pool.slots[slot].busy = None;
                        }
                        _ => {}
                    }
                }
                Ok(AEv::WEof { slot, gen }) => {
                    if self.pool.slots[slot].gen == gen {
                        self.pool.slots[slot].child = None;
                        self.pool.slots[slot].stdin = None;
                        self.pool.slots[slot].busy = None;
                    }
                }
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// The `figures --agent <addr> --jobs N` entry point. Returns the
/// process exit code (see the module docs for the contract).
pub fn run(addr: &str, workers: usize) -> i32 {
    install_signal_handlers();
    let plan = match FaultPlan::from_env() {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("figures agent: error: bad DCA_FAULT_PLAN: {e}");
            return 1;
        }
    };
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("figures agent: cannot locate the figures binary: {e}");
            return 1;
        }
    };
    let config = net::config_token(&crate::Scale::from_env());
    let workers = workers.max(1);
    let window = retry_window();

    let (tx, rx) = mpsc::channel();
    let mut state = AgentState {
        plan,
        pool: Pool {
            exe,
            tx: tx.clone(),
            slots: Vec::new(),
            max: workers,
        },
        backlog: VecDeque::new(),
        attempts: HashMap::new(),
    };
    let mut conn_gen: u64 = 0;
    let mut keep_seq: u64 = 0;
    let mut announced_drain = false;

    let code = 'outer: loop {
        // -- connect (with a bounded retry window) --------------------
        let mut first_failure: Option<Instant> = None;
        let stream = loop {
            if stop_requested() {
                // `break 'outer` follows, so no need to flip the flag.
                if !announced_drain {
                    eprintln!(
                        "figures agent: stop requested; draining {} in-flight job(s)",
                        state.pool.busy_count()
                    );
                }
                state.drain_pool_locally(&rx);
                break 'outer 130;
            }
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    let since = *first_failure.get_or_insert_with(Instant::now);
                    if since.elapsed() > window {
                        eprintln!("figures agent: cannot reach coordinator {addr}: {e}");
                        break 'outer 1;
                    }
                    std::thread::sleep(Duration::from_millis(300));
                }
            }
        };
        conn_gen += 1;
        let gen = conn_gen;
        let _ = stream.set_nodelay(true);
        let mut w = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        {
            let tx = tx.clone();
            let mut r = stream;
            std::thread::spawn(move || loop {
                match net::recv(&mut r) {
                    Ok(msg) => {
                        if tx.send(AEv::Net { gen, msg }).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(AEv::NetGone {
                            gen,
                            why: e.to_string(),
                        });
                        return;
                    }
                }
            });
        }
        let hello = Msg::Hello {
            pid: std::process::id(),
            protocol: net::FABRIC_PROTOCOL.to_string(),
            build: env!("CARGO_PKG_VERSION").to_string(),
            config: config.clone(),
            slots: workers,
        };
        if net::send(&mut w, &hello).is_err() {
            continue; // the coordinator vanished between connect and HELLO
        }
        let mut welcomed = false;
        let mut last_keepalive = Instant::now();

        // -- session --------------------------------------------------
        'session: loop {
            let stopping = stop_requested();
            if stopping && !announced_drain {
                announced_drain = true;
                eprintln!(
                    "figures agent: stop requested; draining {} in-flight job(s)",
                    state.pool.busy_count()
                );
                // Backlogged leases never started: hand them straight
                // back instead of sitting on them.
                while let Some(job_id) = state.backlog.pop_front() {
                    if let Flow::Reconnect = state.send_fail(&mut w, &job_id, "agent is draining") {
                        break 'session;
                    }
                }
            }
            if stopping && state.pool.busy_count() == 0 {
                let _ = net::send(&mut w, &Msg::Bye);
                break 'outer 130;
            }

            let first = match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(ev) => Some(ev),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("the agent keeps its own sender alive")
                }
            };
            let mut pending = first.into_iter().collect::<Vec<_>>();
            while let Ok(ev) = rx.try_recv() {
                pending.push(ev);
            }
            for ev in pending {
                match state.handle(ev, gen, &mut w, &mut welcomed) {
                    Flow::Continue => {}
                    Flow::Reconnect => break 'session,
                    Flow::Exit(code) => break 'outer code,
                }
            }

            // Idle keepalive: a leaseless agent must still prove
            // liveness or the coordinator reaps it as silent.
            if welcomed && last_keepalive.elapsed() >= Duration::from_millis(1_000) {
                keep_seq += 1;
                let hb = Msg::Hb {
                    job_id: "-".to_string(),
                    progress: keep_seq,
                };
                if net::send(&mut w, &hb).is_err() {
                    break 'session;
                }
                last_keepalive = Instant::now();
            }
        }
        // Session lost: workers keep running; reconnect and let the
        // coordinator re-lease (finished work answers from disk).
    };
    state.pool.shutdown();
    code
}
