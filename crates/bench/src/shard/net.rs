//! Verified framing for the sweep fabric: length-prefixed,
//! digest-trailed byte frames over any `Read`/`Write` pair, plus the
//! coordinator↔agent message grammar that rides inside them.
//!
//! ## Frame layout
//!
//! ```text
//! ┌───────────────┬──────────────────┬──────────────────────────┐
//! │ len: u32 BE   │ payload (len B)  │ digest64(payload): u64 BE │
//! └───────────────┴──────────────────┴──────────────────────────┘
//! ```
//!
//! The digest trailer makes the transport *verified*: a frame whose
//! trailer does not match its payload (bit rot, a lying middlebox, an
//! injected `garbage-frame` fault) is rejected as [`RecvError::Garbage`]
//! without ever being parsed, and a connection that dies mid-frame
//! surfaces as [`RecvError::Torn`] rather than a silently short read.
//! Clean EOF exactly on a frame boundary is [`RecvError::Closed`].
//!
//! ## Messages
//!
//! A frame's payload is a UTF-8 header line, optionally followed by
//! `\n` and a body (only `DONE` has one — the partial's JSON text,
//! byte-exact as staged on the agent's disk, so the coordinator can
//! re-validate it with [`decode_partial`](super::decode_partial) and
//! write it atomically unchanged):
//!
//! ```text
//! agent → coordinator
//!   HELLO <pid> <protocol> <build> <config> <slots>
//!   HB <job_id|-> <progress>      lease renewal; "-" is an idle
//!                                 keepalive (progress = a counter)
//!   DONE <job_id>\n<partial…>     finished job + its partial bytes
//!   FAIL <job_id> <message>       job failed on the agent
//!   BYE                           draining; leases may be re-dispatched
//!
//! coordinator → agent
//!   WELCOME                       HELLO accepted
//!   REJECT <reason>               HELLO refused; agent exits 1
//!   JOB <attempt> <job_id>        lease one job to the agent
//!   EXIT                          sweep complete; agent exits 0
//! ```
//!
//! `HELLO` authenticates the pairing: `<protocol>` must equal
//! [`FABRIC_PROTOCOL`], `<build>` the coordinator's crate version, and
//! `<config>` the [`config_token`] of the coordinator's scale — a
//! fabric quietly mixing binaries or `DCA_INSTS` values would merge
//! partials that are *valid* but from a different experiment, which
//! byte-identity can never survive.

use std::io::{Read, Write};

use dca_sim_core::digest64;

/// Fabric protocol tag carried by `HELLO` (distinct from the worker
/// pipe protocol's `v1`).
pub const FABRIC_PROTOCOL: &str = "fabric-v1";

/// Upper bound on a frame payload; anything larger is [`RecvError::Garbage`]
/// (a real partial is a few KiB — a huge length prefix means a corrupt
/// or hostile peer, and must not trigger a giant allocation).
pub const MAX_FRAME: usize = 64 << 20;

/// Why a frame could not be received.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// Clean EOF exactly on a frame boundary.
    Closed,
    /// The stream died mid-frame (EOF or I/O error inside one).
    Torn(String),
    /// The frame is self-inconsistent: oversized/zero length prefix or
    /// a digest trailer that does not match the payload.
    Garbage(String),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed"),
            RecvError::Torn(e) => write!(f, "torn frame: {e}"),
            RecvError::Garbage(e) => write!(f, "garbage frame: {e}"),
        }
    }
}

/// Write one verified frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.write_all(&digest64(payload).to_be_bytes())?;
    w.flush()
}

/// Write a deliberately truncated frame (the `torn` network fault): a
/// correct length prefix, then only half the payload, then nothing.
pub fn write_torn_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&payload[..payload.len() / 2])?;
    w.flush()
}

/// Write a frame whose digest trailer lies (the `garbage-frame` fault).
pub fn write_garbage_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.write_all(&(digest64(payload) ^ 0x5a5a_5a5a_5a5a_5a5a).to_be_bytes())?;
    w.flush()
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], started: bool) -> Result<(), RecvError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !started {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Torn("EOF mid-frame".to_string()))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RecvError::Torn(e.to_string())),
        }
    }
    Ok(())
}

/// Read and verify one frame, returning its payload.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, RecvError> {
    let mut len = [0u8; 4];
    read_exact_or(r, &mut len, false)?;
    let len = u32::from_be_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(RecvError::Garbage(format!(
            "length prefix {len} outside (0, {MAX_FRAME}]"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, true)?;
    let mut trailer = [0u8; 8];
    read_exact_or(r, &mut trailer, true)?;
    let want = u64::from_be_bytes(trailer);
    let got = digest64(&payload);
    if want != got {
        return Err(RecvError::Garbage(format!(
            "digest trailer {want:#018x} != digest64(payload) {got:#018x}"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// One fabric message (see the module docs for the grammar and
/// direction of each variant).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Agent introduction + authentication.
    Hello {
        /// Agent process id (log decoration only).
        pid: u32,
        /// Must equal [`FABRIC_PROTOCOL`].
        protocol: String,
        /// Must equal the coordinator's crate version.
        build: String,
        /// Must equal the coordinator's [`config_token`].
        config: String,
        /// Concurrent jobs the agent will accept.
        slots: usize,
    },
    /// HELLO accepted.
    Welcome,
    /// HELLO refused; the reason is human-facing.
    Reject {
        /// Why the agent was turned away.
        reason: String,
    },
    /// Lease one job to the agent.
    Job {
        /// 0-based attempt index (fault plans key on it).
        attempt: u32,
        /// The job to run.
        job_id: String,
    },
    /// Lease renewal / idle keepalive (`job_id == "-"`).
    Hb {
        /// The leased job, or `-` when idle.
        job_id: String,
        /// Monotonic work counter (same basis as the pool protocol).
        progress: u64,
    },
    /// Finished job; `partial` is the partial file's exact text.
    Done {
        /// The finished job.
        job_id: String,
        /// Byte-exact partial JSON.
        partial: String,
    },
    /// The agent could not finish the job.
    Fail {
        /// The failed job.
        job_id: String,
        /// One-line failure description.
        message: String,
    },
    /// Sweep complete; the agent should exit 0.
    Exit,
    /// The agent is draining; its leases may be re-dispatched.
    Bye,
}

/// Serialise a message into a frame payload.
pub fn encode(msg: &Msg) -> Vec<u8> {
    // Headers are single lines: fold any stray newlines in free-text
    // fields rather than corrupt the grammar.
    let line = |s: &str| s.replace('\n', "; ");
    match msg {
        Msg::Hello {
            pid,
            protocol,
            build,
            config,
            slots,
        } => format!("HELLO {pid} {protocol} {build} {config} {slots}").into_bytes(),
        Msg::Welcome => b"WELCOME".to_vec(),
        Msg::Reject { reason } => format!("REJECT {}", line(reason)).into_bytes(),
        Msg::Job { attempt, job_id } => format!("JOB {attempt} {job_id}").into_bytes(),
        Msg::Hb { job_id, progress } => format!("HB {job_id} {progress}").into_bytes(),
        Msg::Done { job_id, partial } => format!("DONE {job_id}\n{partial}").into_bytes(),
        Msg::Fail { job_id, message } => format!("FAIL {job_id} {}", line(message)).into_bytes(),
        Msg::Exit => b"EXIT".to_vec(),
        Msg::Bye => b"BYE".to_vec(),
    }
}

/// Parse a frame payload back into a [`Msg`].
pub fn decode(payload: &[u8]) -> Result<Msg, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let (head, body) = match text.split_once('\n') {
        Some((h, b)) => (h, Some(b)),
        None => (text, None),
    };
    let mut it = head.splitn(2, ' ');
    let verb = it.next().unwrap_or("");
    let rest = it.next().unwrap_or("");
    if body.is_some() && verb != "DONE" {
        return Err(format!("{verb} carries an unexpected body"));
    }
    let bad = || format!("malformed {verb} header {head:?}");
    match verb {
        "HELLO" => {
            let f: Vec<&str> = rest.split(' ').collect();
            let [pid, protocol, build, config, slots] = f[..] else {
                return Err(bad());
            };
            Ok(Msg::Hello {
                pid: pid.parse().map_err(|_| bad())?,
                protocol: protocol.to_string(),
                build: build.to_string(),
                config: config.to_string(),
                slots: slots.parse().map_err(|_| bad())?,
            })
        }
        "WELCOME" if rest.is_empty() => Ok(Msg::Welcome),
        "REJECT" => Ok(Msg::Reject {
            reason: if rest.is_empty() {
                "(no reason)".to_string()
            } else {
                rest.to_string()
            },
        }),
        "JOB" => {
            let (attempt, job_id) = rest.split_once(' ').ok_or_else(bad)?;
            if job_id.is_empty() || job_id.contains(' ') {
                return Err(bad());
            }
            Ok(Msg::Job {
                attempt: attempt.parse().map_err(|_| bad())?,
                job_id: job_id.to_string(),
            })
        }
        "HB" => {
            let (job_id, progress) = rest.split_once(' ').ok_or_else(bad)?;
            if job_id.is_empty() || job_id.contains(' ') {
                return Err(bad());
            }
            Ok(Msg::Hb {
                job_id: job_id.to_string(),
                progress: progress.parse().map_err(|_| bad())?,
            })
        }
        "DONE" => {
            if rest.is_empty() || rest.contains(' ') {
                return Err(bad());
            }
            Ok(Msg::Done {
                job_id: rest.to_string(),
                partial: body
                    .ok_or_else(|| "DONE without a partial body".to_string())?
                    .to_string(),
            })
        }
        "FAIL" => {
            let mut f = rest.splitn(2, ' ');
            let job_id = f.next().filter(|j| !j.is_empty()).ok_or_else(bad)?;
            Ok(Msg::Fail {
                job_id: job_id.to_string(),
                message: f.next().unwrap_or("(no message)").to_string(),
            })
        }
        "EXIT" if rest.is_empty() => Ok(Msg::Exit),
        "BYE" if rest.is_empty() => Ok(Msg::Bye),
        _ => Err(format!("unknown message {head:?}")),
    }
}

/// Send one message as a verified frame.
pub fn send(w: &mut impl Write, msg: &Msg) -> std::io::Result<()> {
    write_frame(w, &encode(msg))
}

/// Receive one message from a verified frame.
pub fn recv(r: &mut impl Read) -> Result<Msg, RecvError> {
    let payload = read_frame(r)?;
    decode(&payload).map_err(RecvError::Garbage)
}

/// The configuration fingerprint an agent must present in `HELLO`:
/// a digest over everything that changes what a job id *means* —
/// the scale knobs and the partial schema. Two processes with equal
/// tokens produce byte-identical partials for the same job id.
pub fn config_token(scale: &crate::Scale) -> String {
    let text = format!(
        "insts={}|warmup={}|mixes={:?}|schema={}",
        scale.insts,
        scale.warmup,
        scale.mixes,
        super::PARTIAL_SCHEMA
    );
    format!("{:016x}", digest64(text.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_and_close_cleanly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"HELLO 1 fabric-v1").expect("write");
        write_frame(&mut buf, b"WELCOME").expect("write");
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).expect("frame 1"), b"HELLO 1 fabric-v1");
        assert_eq!(read_frame(&mut r).expect("frame 2"), b"WELCOME");
        assert_eq!(read_frame(&mut r), Err(RecvError::Closed));
    }

    #[test]
    fn torn_and_garbage_frames_are_told_apart() {
        let mut torn = Vec::new();
        write_torn_frame(&mut torn, b"DONE al_x\n{}").expect("write");
        assert!(matches!(
            read_frame(&mut Cursor::new(torn)),
            Err(RecvError::Torn(_))
        ));

        let mut lying = Vec::new();
        write_garbage_frame(&mut lying, b"DONE al_x\n{}").expect("write");
        assert!(matches!(
            read_frame(&mut Cursor::new(lying)),
            Err(RecvError::Garbage(_))
        ));

        // EOF inside the digest trailer is torn, not closed.
        let mut short = Vec::new();
        write_frame(&mut short, b"BYE").expect("write");
        short.truncate(short.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(short)),
            Err(RecvError::Torn(_))
        ));

        // An absurd length prefix is garbage before any allocation.
        let huge = ((MAX_FRAME as u32) + 1).to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(huge)),
            Err(RecvError::Garbage(_))
        ));
        let zero = 0u32.to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(zero)),
            Err(RecvError::Garbage(_))
        ));
    }

    #[test]
    fn messages_round_trip() {
        let msgs = [
            Msg::Hello {
                pid: 42,
                protocol: FABRIC_PROTOCOL.to_string(),
                build: "0.1.0".to_string(),
                config: "00ff00ff00ff00ff".to_string(),
                slots: 8,
            },
            Msg::Welcome,
            Msg::Reject {
                reason: "build mismatch".to_string(),
            },
            Msg::Job {
                attempt: 2,
                job_id: "ev_dm_cd_x0_l0_ff4_i1_w1_s0_mmf_m1".to_string(),
            },
            Msg::Hb {
                job_id: "-".to_string(),
                progress: 17,
            },
            Msg::Done {
                job_id: "al_x".to_string(),
                partial: "{\n  \"schema\": 1\n}\n".to_string(),
            },
            Msg::Fail {
                job_id: "al_x".to_string(),
                message: "worker exited mid-run".to_string(),
            },
            Msg::Exit,
            Msg::Bye,
        ];
        for msg in msgs {
            assert_eq!(decode(&encode(&msg)).expect("decode"), msg, "{msg:?}");
        }
    }

    #[test]
    fn bad_messages_are_rejected() {
        for bad in [
            &b""[..],
            b"NOPE",
            b"HELLO 1 fabric-v1",
            b"HELLO x fabric-v1 0.1.0 aa 2",
            b"WELCOME now",
            b"JOB 1",
            b"JOB x al_y",
            b"JOB 1 two ids",
            b"HB -",
            b"HB - x",
            b"DONE",
            b"DONE al_x",
            b"EXIT 0",
            b"BYE bye",
            b"WELCOME\nbody",
            b"\xff\xfe",
        ] {
            assert!(decode(bad).is_err(), "{:?} must not decode", bad);
        }
    }

    #[test]
    fn newlines_in_free_text_cannot_corrupt_headers() {
        let msg = Msg::Fail {
            job_id: "al_x".to_string(),
            message: "line one\nline two".to_string(),
        };
        match decode(&encode(&msg)).expect("decode") {
            Msg::Fail { message, .. } => assert_eq!(message, "line one; line two"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn config_token_tracks_the_scale() {
        let a = crate::Scale {
            insts: 1_000,
            warmup: 2_000,
            mixes: vec![1, 2],
        };
        let mut b = a.clone();
        assert_eq!(config_token(&a), config_token(&b));
        b.insts = 1_001;
        assert_ne!(config_token(&a), config_token(&b));
    }
}
