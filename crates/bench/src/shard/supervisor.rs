//! Coordinator side of the persistent pool: a supervisor that owns N
//! long-lived `figures --worker --serve` subprocesses and drives a job
//! queue through them with deadlines, retries and quarantine.
//!
//! ## Supervisor state machine
//!
//! Each worker *slot* is in one of three states:
//!
//! ```text
//!            spawn                 RUN frame written
//!   dead ───────────────▶ idle ─────────────────────▶ busy
//!     ▲                    ▲                            │
//!     │   kill (deadline,  │        OK/ERR frame        │
//!     └────────────────────┴────────────────────────────┘
//!         babble, heartbeat silence, EOF)
//! ```
//!
//! * **dead → idle**: [`Supervisor::run`] respawns dead slots whenever
//!   undone work remains (initial spawn is the same transition).
//! * **idle → busy**: the dispatcher writes `RUN <attempt> <job_id>`.
//!   Dispatch prefers a job's *warm-affinity* slot — the slot that last
//!   ran its [`warm_group`](super::warm_group) — so a group's warm-up
//!   is built once and stays hot in that worker; otherwise the
//!   lowest-index idle slot wins, which consolidates work onto few
//!   workers instead of faulting fresh address spaces for no benefit.
//!   At most [`PoolConfig::inflight`] slots are busy at once (default:
//!   `min(workers, cores)`; the remaining workers are hot spares).
//! * **busy → idle**: an `OK` frame whose partial validates records the
//!   job; an `ERR` frame (or an `OK` with no valid partial behind it)
//!   consumes one attempt.
//! * **busy/idle → dead**: the supervisor kills a worker that (a) blew
//!   the per-job deadline — `DCA_JOB_TIMEOUT_MS` measured from the last
//!   *progress change* in its heartbeats, so warm-lock waits don't
//!   count against it, (b) went heartbeat-silent for
//!   `DCA_HEARTBEAT_TIMEOUT_MS`, (c) *babbled* (an unparseable stdout
//!   line, or a result frame for a job it wasn't given), or (d) hit
//!   EOF/a failed pipe write. A killed slot's generation counter is
//!   bumped so late events from its old reader threads are discarded.
//!
//! A failed job is retried with exponential backoff plus deterministic
//! jitter derived from `digest64(job id) ^ attempt` — no wall-clock
//! entropy, so a given plan replays identically. After
//! `DCA_JOB_ATTEMPTS` total attempts the job is **quarantined**: its
//! id, last error and the worker's captured stderr tail (bounded by
//! lines *and* bytes) are recorded in
//! `results/partials/quarantine.json`, and the sweep carries on —
//! figures render the missing cells as explicit holes and `figures`
//! exits degraded instead of aborting a multi-hour sweep for one
//! poisoned job. The record is cross-session: writing it keeps prior
//! entries that are still holes and prunes any whose job has since
//! landed a valid partial, so a job quarantined in one session and
//! completed in a later one stops rendering as a hole.
//!
//! On Ctrl-C/SIGTERM ([`install_signal_handlers`]) the supervisor
//! **drains**: it stops dispatching, lets in-flight jobs finish and
//! flush their partials, shuts the pool down, and reports
//! [`Outcome::drained`] — a re-run resumes from the partials on disk.
//!
//! ## Environment knobs
//!
//! | knob | default | meaning |
//! |---|---|---|
//! | `DCA_JOB_TIMEOUT_MS` | 600 000 | per-job deadline, from last progress change |
//! | `DCA_HEARTBEAT_TIMEOUT_MS` | 10 000 | kill a worker silent this long |
//! | `DCA_JOB_ATTEMPTS` | 3 | total attempts before quarantine |
//! | `DCA_RETRY_BACKOFF_MS` | 25 | backoff base (doubles per attempt) |
//! | `DCA_POOL_INFLIGHT` | min(workers, cores) | concurrent busy slots |
//!
//! (`DCA_HEARTBEAT_MS` and `DCA_FAULT_PLAN` are worker-side; see
//! [`pool`](super::pool).)

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dca_sim_core::digest64;

use super::pool::{parse_frame, Frame};
use super::{json, load_existing_partial, quarantine_path, warm_group, Job, PartialStore};

/// Lines of worker stderr retained per worker for quarantine records.
const STDERR_TAIL_LINES: usize = 50;

/// Total bytes of stderr retained per worker. Bounds the tail by size
/// as well as by line count, so 50 huge lines cannot bloat
/// `quarantine.json`.
const STDERR_TAIL_BYTES: usize = 16 * 1024;

/// Bytes kept of any single stderr line; the excess is replaced by a
/// truncation marker (one pathological multi-megabyte line must not
/// consume the whole byte budget, let alone the record).
const STDERR_LINE_BYTES: usize = 2 * 1024;

/// Append `line` to a bounded stderr tail, enforcing all three caps:
/// per-line bytes (truncate, marking how much was cut), total lines
/// and total bytes (evict oldest first; the newest line always stays).
fn push_stderr_tail(tail: &mut VecDeque<String>, line: String) {
    let line = if line.len() > STDERR_LINE_BYTES {
        let mut cut = STDERR_LINE_BYTES;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}… [+{} bytes]", &line[..cut], line.len() - cut)
    } else {
        line
    };
    tail.push_back(line);
    while tail.len() > 1
        && (tail.len() > STDERR_TAIL_LINES
            || tail.iter().map(String::len).sum::<usize>() > STDERR_TAIL_BYTES)
    {
        tail.pop_front();
    }
}

// ---------------------------------------------------------------------
// Stop flag + signal handlers
// ---------------------------------------------------------------------

static STOP: AtomicBool = AtomicBool::new(false);

/// Whether a drain has been requested (signal or [`request_stop`]).
pub fn stop_requested() -> bool {
    STOP.load(Ordering::SeqCst)
}

/// Programmatic drain request (what the signal handlers call; exposed
/// for tests).
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that request a graceful drain.
/// Workers ignore SIGINT themselves (see `pool::serve`), so a terminal
/// Ctrl-C reaches only the supervisor and the pool drains cleanly.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        STOP.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// No-op off Unix; `stop_requested` can still be driven by
/// [`request_stop`].
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Supervisor policy, latched once per run (see the module-docs knob
/// table).
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker slots to maintain.
    pub workers: usize,
    /// Maximum concurrently busy slots; the rest are hot spares.
    pub inflight: usize,
    /// Total attempts per job before quarantine.
    pub max_attempts: u32,
    /// Per-job deadline, measured from the last progress change.
    pub job_timeout: Duration,
    /// Kill a worker whose stdout has been silent this long.
    pub hb_timeout: Duration,
    /// Retry backoff base; doubles per attempt, plus deterministic
    /// jitter.
    pub backoff_base: Duration,
}

fn env_pos_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "warning: {name}={v:?} is not a positive integer; using the default {default}"
                );
                default
            }
        },
        Err(_) => default,
    }
}

impl PoolConfig {
    /// Policy for `workers` slots, with every knob read from the
    /// environment exactly once.
    pub fn from_env(workers: usize) -> PoolConfig {
        let workers = workers.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // More busy lanes than cores buys nothing but context-switch
        // and allocator-fault overhead for this CPU-bound work; extra
        // workers still earn their keep as pre-spawned failover spares.
        let inflight = match std::env::var("DCA_POOL_INFLIGHT") {
            Ok(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!(
                        "warning: DCA_POOL_INFLIGHT={v:?} is not a positive integer; \
                         using min(workers, cores)"
                    );
                    workers.min(cores)
                }
            },
            Err(_) => workers.min(cores),
        }
        .clamp(1, workers);
        PoolConfig {
            workers,
            inflight,
            max_attempts: env_pos_u64("DCA_JOB_ATTEMPTS", 3) as u32,
            job_timeout: Duration::from_millis(env_pos_u64("DCA_JOB_TIMEOUT_MS", 600_000)),
            hb_timeout: Duration::from_millis(env_pos_u64("DCA_HEARTBEAT_TIMEOUT_MS", 10_000)),
            backoff_base: Duration::from_millis(env_pos_u64("DCA_RETRY_BACKOFF_MS", 25)),
        }
    }
}

/// Deterministic retry delay before `attempt` (1-based retry index):
/// `base · 2^(attempt-1)` plus jitter below one base period, derived
/// from the job id — stable across runs, different across jobs, so a
/// burst of same-cause failures still de-synchronises.
pub fn retry_delay(base: Duration, job_id: &str, attempt: u32) -> Duration {
    let base_ms = base.as_millis().max(1) as u64;
    let backoff = base_ms << (attempt.saturating_sub(1)).min(10);
    let jitter = (digest64(job_id.as_bytes()) ^ u64::from(attempt)) % base_ms;
    Duration::from_millis(backoff + jitter)
}

// ---------------------------------------------------------------------
// Outcome types
// ---------------------------------------------------------------------

/// What the pool did, for the end-of-run stats line.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Jobs executed to a valid partial this run.
    pub run: usize,
    /// Jobs satisfied by a pre-existing valid partial.
    pub reused: usize,
    /// Failed attempts that were re-queued.
    pub retried: usize,
    /// Jobs given up on after `max_attempts`.
    pub quarantined: usize,
    /// Workers killed and replaced (initial spawns not counted).
    pub respawns: usize,
}

/// One poison job: what failed, how often, and what the worker said.
#[derive(Clone, Debug)]
pub struct Quarantined {
    /// The job id.
    pub job_id: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// The last failure reason.
    pub error: String,
    /// Tail of the last worker's stderr.
    pub stderr: Vec<String>,
}

/// Result of a supervised run. `store` holds every job that finished
/// (this run or reused); `quarantined` lists the holes.
pub struct Outcome {
    /// Merged results for all completed jobs.
    pub store: PartialStore,
    /// Counters for the stats line.
    pub stats: PoolStats,
    /// Poison jobs, in quarantine order.
    pub quarantined: Vec<Quarantined>,
    /// True when a stop request ended the run with work left undone
    /// (in-flight jobs were finished and flushed; a re-run resumes).
    pub drained: bool,
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

/// Events flowing from per-worker reader threads to the control loop.
enum Event {
    /// One stdout line from worker `slot` (at generation `gen`).
    Line { slot: usize, gen: u64, line: String },
    /// Worker `slot`'s stdout closed.
    Eof { slot: usize, gen: u64 },
}

/// A dispatched job riding on a busy slot.
struct Busy {
    job: Job,
    /// 0-based attempt index (echoed in the `RUN` frame).
    attempt: u32,
    started: Instant,
    /// Last `progress` value seen in a heartbeat.
    progress: u64,
    /// When `progress` last changed (deadline basis).
    progress_at: Instant,
}

/// One worker slot (see the module-docs state machine).
struct WorkerSlot {
    /// Bumped on every (re)spawn and kill; events carrying an older
    /// generation are stale and dropped.
    gen: u64,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    busy: Option<Busy>,
    /// Last time any frame arrived (heartbeat-silence basis).
    last_frame_at: Instant,
}

impl WorkerSlot {
    fn empty() -> WorkerSlot {
        WorkerSlot {
            gen: 0,
            child: None,
            stdin: None,
            stderr_tail: Arc::new(Mutex::new(VecDeque::new())),
            busy: None,
            last_frame_at: Instant::now(),
        }
    }

    fn alive(&self) -> bool {
        self.child.is_some()
    }

    fn idle(&self) -> bool {
        self.alive() && self.busy.is_none()
    }
}

/// The persistent-pool coordinator. Construct with [`Supervisor::new`]
/// and call [`Supervisor::run`] once per job list.
pub struct Supervisor {
    cfg: PoolConfig,
}

impl Supervisor {
    /// A supervisor for `workers` slots, configured from the
    /// environment.
    pub fn new(workers: usize) -> Supervisor {
        Supervisor::with_config(PoolConfig::from_env(workers))
    }

    /// A supervisor with an explicit policy (tests).
    pub fn with_config(cfg: PoolConfig) -> Supervisor {
        Supervisor { cfg }
    }

    /// Run `jobs` to completion (or drain). Hard `Err` only for
    /// environment-level failures (cannot spawn workers at all);
    /// per-job failures land in [`Outcome::quarantined`] instead.
    pub fn run(&self, jobs: &[Job]) -> Result<Outcome, String> {
        let mut state = RunState {
            cfg: &self.cfg,
            exe: std::env::current_exe()
                .map_err(|e| format!("cannot locate the figures binary: {e}"))?,
            tx: None,
            slots: Vec::new(),
            queue: VecDeque::new(),
            delayed: Vec::new(),
            affinity: HashMap::new(),
            store: PartialStore::default(),
            stats: PoolStats::default(),
            quarantined: Vec::new(),
        };

        for job in jobs {
            if let Some(result) = load_existing_partial(job) {
                state.store.insert(job, result);
                state.stats.reused += 1;
            } else {
                state.queue.push_back((job.clone(), 0));
            }
        }

        let drained = if state.queue.is_empty() {
            false // everything reused; never spawn a pool for nothing
        } else {
            let (tx, rx) = mpsc::channel();
            state.tx = Some(tx);
            let n = self.cfg.workers.min(state.queue.len()).max(1);
            state.slots = (0..n).map(|_| WorkerSlot::empty()).collect();
            let drained = state.control_loop(&rx);
            state.shutdown();
            drained?
        };

        write_quarantine(&state.quarantined)?;
        Ok(Outcome {
            store: state.store,
            stats: state.stats,
            quarantined: state.quarantined,
            drained,
        })
    }
}

/// All mutable state of one `run` call.
struct RunState<'a> {
    cfg: &'a PoolConfig,
    exe: PathBuf,
    /// Kept alive so `recv_timeout` can never observe disconnection.
    tx: Option<Sender<Event>>,
    slots: Vec<WorkerSlot>,
    queue: VecDeque<(Job, u32)>,
    delayed: Vec<(Instant, Job, u32)>,
    /// warm group → slot that last ran a job of that group.
    affinity: HashMap<String, usize>,
    store: PartialStore,
    stats: PoolStats,
    quarantined: Vec<Quarantined>,
}

impl RunState<'_> {
    /// The main event loop; returns whether the run drained early.
    fn control_loop(&mut self, rx: &Receiver<Event>) -> Result<bool, String> {
        let mut announced_drain = false;
        loop {
            let stopping = stop_requested();
            if stopping && !announced_drain {
                announced_drain = true;
                eprintln!(
                    "figures: stop requested; draining {} in-flight job(s), then flushing",
                    self.inflight()
                );
            }

            // Promote due retries.
            let now = Instant::now();
            let mut i = 0;
            while i < self.delayed.len() {
                if self.delayed[i].0 <= now {
                    let (_, job, attempt) = self.delayed.remove(i);
                    self.queue.push_back((job, attempt));
                } else {
                    i += 1;
                }
            }

            if !stopping {
                self.ensure_workers()?;
                self.dispatch();
            }

            if self.inflight() == 0
                && (stopping || (self.queue.is_empty() && self.delayed.is_empty()))
            {
                return Ok(stopping && !(self.queue.is_empty() && self.delayed.is_empty()));
            }

            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(ev) => self.handle_event(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("supervisor keeps its own sender alive")
                }
            }
            while let Ok(ev) = rx.try_recv() {
                self.handle_event(ev);
            }

            self.check_deadlines();
        }
    }

    fn inflight(&self) -> usize {
        self.slots.iter().filter(|s| s.busy.is_some()).count()
    }

    /// Respawn dead slots while undone work remains, never exceeding
    /// what that work can use.
    fn ensure_workers(&mut self) -> Result<(), String> {
        let pending = self.queue.len() + self.delayed.len();
        if pending == 0 {
            return Ok(());
        }
        let want = (self.inflight() + pending).min(self.slots.len());
        let mut alive = self.slots.iter().filter(|s| s.alive()).count();
        for si in 0..self.slots.len() {
            if alive >= want {
                break;
            }
            if !self.slots[si].alive() {
                self.spawn_into(si)?;
                alive += 1;
            }
        }
        Ok(())
    }

    fn spawn_into(&mut self, si: usize) -> Result<(), String> {
        debug_assert!(self.slots[si].busy.is_none(), "respawn of a busy slot");
        let gen = self.slots[si].gen + 1;
        // Workers inherit the whole environment — scale knobs, fault
        // plan, and (only if the *user* configured one) a shared warm
        // dir. The pool deliberately does not force warm persistence:
        // its whole point is warm state staying hot in-process.
        let mut child = Command::new(&self.exe)
            .args(["--worker", "--serve"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn pool worker: {e}"))?;
        let (Some(stdin), Some(stdout), Some(stderr)) =
            (child.stdin.take(), child.stdout.take(), child.stderr.take())
        else {
            // Pipes we asked for are missing: reap the child and report
            // it as a spawn failure so the retry budget applies.
            let _ = child.kill();
            let _ = child.wait();
            return Err("pool worker spawned without stdio pipes".to_string());
        };

        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| "pool event channel closed while spawning".to_string())?
            .clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if tx
                    .send(Event::Line {
                        slot: si,
                        gen,
                        line,
                    })
                    .is_err()
                {
                    return;
                }
            }
            let _ = tx.send(Event::Eof { slot: si, gen });
        });

        let tail = Arc::new(Mutex::new(VecDeque::new()));
        {
            let tail = Arc::clone(&tail);
            std::thread::spawn(move || {
                let reader = BufReader::new(stderr);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    eprintln!("[worker {si}] {line}");
                    // A poisoned tail mutex only ever holds log lines;
                    // keep collecting rather than killing the reader.
                    push_stderr_tail(&mut tail.lock().unwrap_or_else(|p| p.into_inner()), line);
                }
            });
        }

        if gen > 1 {
            self.stats.respawns += 1;
        }
        self.slots[si] = WorkerSlot {
            gen,
            child: Some(child),
            stdin: Some(stdin),
            stderr_tail: tail,
            busy: None,
            last_frame_at: Instant::now(),
        };
        Ok(())
    }

    /// Fill busy lanes up to the in-flight cap, warm-affinity first.
    fn dispatch(&mut self) {
        loop {
            if self.inflight() >= self.cfg.inflight || self.queue.is_empty() {
                return;
            }
            // Prefer the first queued job whose warm group already has
            // an idle home slot; otherwise take the queue head.
            let pos = self
                .queue
                .iter()
                .position(|(job, _)| {
                    self.affinity
                        .get(&warm_group(&job.payload))
                        .is_some_and(|&s| self.slots[s].idle())
                })
                .unwrap_or(0);
            let group = warm_group(&self.queue[pos].0.payload);
            let slot = self
                .affinity
                .get(&group)
                .copied()
                .filter(|&s| self.slots[s].idle())
                .or_else(|| self.slots.iter().position(|s| s.idle()));
            let Some(si) = slot else { return };
            let Some((job, attempt)) = self.queue.remove(pos) else {
                return;
            };
            let wrote = self.slots[si].stdin.as_mut().is_some_and(|w| {
                writeln!(w, "RUN {attempt} {}", job.id).is_ok() && w.flush().is_ok()
            });
            if wrote {
                self.affinity.insert(group, si);
                let now = Instant::now();
                self.slots[si].busy = Some(Busy {
                    job,
                    attempt,
                    started: now,
                    progress: 0,
                    progress_at: now,
                });
            } else {
                // The worker died while idle; the job never started, so
                // it keeps its attempt count.
                eprintln!("figures: worker {si}: pipe write failed; replacing the worker");
                self.queue.push_front((job, attempt));
                self.kill_worker(si);
                return; // ensure_workers respawns on the next tick
            }
        }
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Eof { slot: si, gen } => {
                if self.slots[si].gen != gen {
                    return; // stale reader of a killed generation
                }
                let status = self.slots[si]
                    .child
                    .take()
                    .and_then(|mut c| c.wait().ok())
                    .map_or_else(|| "unknown status".to_string(), |s| s.to_string());
                self.slots[si].stdin = None;
                self.slots[si].gen += 1;
                self.fail_busy(si, &format!("worker exited mid-run ({status})"));
            }
            Event::Line {
                slot: si,
                gen,
                line,
            } => {
                if self.slots[si].gen != gen {
                    return;
                }
                self.slots[si].last_frame_at = Instant::now();
                match parse_frame(&line) {
                    Err(bad) => self.babble(si, &format!("unparseable frame {bad:?}")),
                    Ok(Frame::Hello { .. }) | Ok(Frame::Bye) => {}
                    Ok(Frame::Hb { progress, .. }) => {
                        if let Some(busy) = self.slots[si].busy.as_mut() {
                            if progress != busy.progress {
                                busy.progress = progress;
                                busy.progress_at = Instant::now();
                            }
                        }
                    }
                    Ok(Frame::Ok { job_id }) => {
                        let matches = self.slots[si]
                            .busy
                            .as_ref()
                            .is_some_and(|b| b.job.id == job_id);
                        if !matches {
                            self.babble(si, &format!("OK for a job it was not given ({job_id})"));
                            return;
                        }
                        let Some(busy) = self.slots[si].busy.take() else {
                            return;
                        };
                        match load_existing_partial(&busy.job) {
                            Some(result) => {
                                self.store.insert(&busy.job, result);
                                self.stats.run += 1;
                            }
                            None => {
                                self.slots[si].busy = Some(busy);
                                self.fail_busy(si, "worker reported OK but left no valid partial");
                            }
                        }
                    }
                    Ok(Frame::Err { job_id, message }) => {
                        let matches = self.slots[si]
                            .busy
                            .as_ref()
                            .is_some_and(|b| b.job.id == job_id);
                        if matches {
                            self.fail_busy(si, &message);
                        } else {
                            self.babble(si, &format!("ERR for a job it was not given ({job_id})"));
                        }
                    }
                }
            }
        }
    }

    /// A worker sent something the protocol forbids: kill it, charge
    /// the in-flight job (if any) one attempt.
    fn babble(&mut self, si: usize, what: &str) {
        eprintln!("figures: worker {si} is babbling: {what}; killing it");
        self.kill_worker(si);
        self.fail_busy(si, &format!("worker babbled: {what}"));
    }

    /// Kill a worker process and invalidate its event generation.
    fn kill_worker(&mut self, si: usize) {
        let slot = &mut self.slots[si];
        slot.gen += 1;
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Resolve a failed in-flight job: salvage a flushed partial if the
    /// worker got that far, else retry with backoff or quarantine.
    fn fail_busy(&mut self, si: usize, why: &str) {
        let Some(busy) = self.slots[si].busy.take() else {
            return;
        };
        // A worker can die between flushing the partial and saying OK;
        // the partial is self-validating, so judge by the disk.
        if let Some(result) = load_existing_partial(&busy.job) {
            eprintln!(
                "figures: worker {si}: {why}, but job {} had already flushed a valid partial; \
                 keeping it",
                busy.job.id
            );
            self.store.insert(&busy.job, result);
            self.stats.run += 1;
            return;
        }
        let attempts_used = busy.attempt + 1;
        if attempts_used >= self.cfg.max_attempts {
            eprintln!(
                "figures: quarantining job {} after {attempts_used} attempt(s): {why}",
                busy.job.id
            );
            // A poisoned tail mutex still holds usable log lines.
            let stderr = self.slots[si]
                .stderr_tail
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .cloned()
                .collect();
            self.stats.quarantined += 1;
            self.quarantined.push(Quarantined {
                job_id: busy.job.id,
                attempts: attempts_used,
                error: why.to_string(),
                stderr,
            });
        } else {
            let delay = retry_delay(self.cfg.backoff_base, &busy.job.id, attempts_used);
            eprintln!(
                "figures: retrying job {} in {delay:?} (attempt {} of {}): {why}",
                busy.job.id,
                attempts_used + 1,
                self.cfg.max_attempts
            );
            self.stats.retried += 1;
            self.delayed
                .push((Instant::now() + delay, busy.job, busy.attempt + 1));
        }
    }

    /// Enforce per-job deadlines and heartbeat silence.
    fn check_deadlines(&mut self) {
        let now = Instant::now();
        for si in 0..self.slots.len() {
            if !self.slots[si].alive() {
                continue;
            }
            if let Some(busy) = &self.slots[si].busy {
                let basis = busy.started.max(busy.progress_at);
                if now.duration_since(basis) > self.cfg.job_timeout {
                    let why = format!("no progress for {:?} (job deadline)", self.cfg.job_timeout);
                    self.kill_worker(si);
                    self.fail_busy(si, &why);
                    continue;
                }
            }
            if now.duration_since(self.slots[si].last_frame_at) > self.cfg.hb_timeout {
                let why = format!("no heartbeat for {:?}", self.cfg.hb_timeout);
                eprintln!("figures: worker {si}: {why}; killing it");
                self.kill_worker(si);
                self.fail_busy(si, &why);
            }
        }
    }

    /// Ask every live worker to exit, give the pool a moment, then
    /// force the stragglers.
    fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if let Some(w) = slot.stdin.as_mut() {
                let _ = writeln!(w, "EXIT");
            }
            slot.stdin = None;
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let mut all_gone = true;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => slot.child = None,
                        _ => all_gone = false,
                    }
                }
            }
            if all_gone || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Parse `results/partials/quarantine.json` back into records. Absent
/// or unreadable files yield an empty list (the record is advisory —
/// partials are the source of truth for results).
pub(crate) fn read_quarantine() -> Vec<Quarantined> {
    let Ok(text) = std::fs::read_to_string(quarantine_path()) else {
        return Vec::new();
    };
    let Ok(v) = json::parse(&text) else {
        return Vec::new();
    };
    let Some(list) = v.get("quarantined").and_then(json::Value::as_arr) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for q in list {
        let (Some(job_id), Some(attempts), Some(error)) =
            (q.get_str("job"), q.get_u64("attempts"), q.get_str("error"))
        else {
            continue;
        };
        let stderr = q
            .get("stderr")
            .and_then(json::Value::as_arr)
            .map(|lines| {
                lines
                    .iter()
                    .filter_map(|l| l.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        out.push(Quarantined {
            job_id: job_id.to_string(),
            attempts: attempts.min(u64::from(u32::MAX)) as u32,
            error: error.to_string(),
            stderr,
        });
    }
    out
}

/// Retain the prior-session quarantine entries that are still holes:
/// drop entries superseded by a `current` record for the same job and
/// — the heal path — entries whose job `healed` (a valid partial now
/// exists, e.g. a later session re-ran it successfully). Entries with
/// ids a current binary cannot even parse are treated as healed too:
/// they can never match a planned job again.
fn prune_quarantine(
    prior: Vec<Quarantined>,
    current: &[Quarantined],
    healed: impl Fn(&str) -> bool,
) -> Vec<Quarantined> {
    prior
        .into_iter()
        .filter(|q| !current.iter().any(|c| c.job_id == q.job_id) && !healed(&q.job_id))
        .collect()
}

/// Whether `job_id` now has a valid partial on disk (unparseable ids
/// count as healed; see [`prune_quarantine`]).
fn healed_on_disk(job_id: &str) -> bool {
    match super::parse_job_id(job_id) {
        Ok(payload) => load_existing_partial(&Job {
            id: job_id.to_string(),
            payload,
        })
        .is_some(),
        Err(_) => true,
    }
}

/// Write `results/partials/quarantine.json`: this run's records plus
/// every prior entry that is still an unhealed hole (a job quarantined
/// by one figure's session must survive another figure's clean run —
/// but must disappear the moment any session lands a valid partial
/// for it). When nothing remains, the file is removed.
pub(crate) fn write_quarantine(quarantined: &[Quarantined]) -> Result<(), String> {
    let path = quarantine_path();
    let kept = prune_quarantine(read_quarantine(), quarantined, healed_on_disk);
    let all: Vec<&Quarantined> = kept.iter().chain(quarantined.iter()).collect();
    if all.is_empty() {
        // A clean slate must not leave a stale quarantine behind.
        let _ = std::fs::remove_file(&path);
        return Ok(());
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let mut text = String::from("{\n  \"schema\": 1,\n  \"quarantined\": [\n");
    for (i, q) in all.iter().enumerate() {
        let stderr: Vec<String> = q
            .stderr
            .iter()
            .map(|l| format!("\"{}\"", json::escape(l)))
            .collect();
        text.push_str(&format!(
            "    {{\"job\": \"{}\", \"attempts\": {}, \"error\": \"{}\", \"stderr\": [{}]}}{}\n",
            json::escape(&q.job_id),
            q.attempts,
            json::escape(&q.error),
            stderr.join(", "),
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    text.push_str("  ]\n}\n");
    // Same atomicity discipline as partials: stage + rename.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &text)
        .and_then(|()| std::fs::rename(&tmp, &path))
        .map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cannot write {}: {e}", path.display())
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_is_deterministic_and_grows() {
        let base = Duration::from_millis(25);
        let a1 = retry_delay(base, "ev_sa15_cd_x0", 1);
        assert_eq!(
            a1,
            retry_delay(base, "ev_sa15_cd_x0", 1),
            "same inputs, same delay"
        );
        let a2 = retry_delay(base, "ev_sa15_cd_x0", 2);
        let a3 = retry_delay(base, "ev_sa15_cd_x0", 3);
        // Exponential envelope: attempt n sits in [base·2^(n-1), base·2^(n-1) + base).
        for (n, d) in [(1u32, a1), (2, a2), (3, a3)] {
            let lo = 25u64 << (n - 1);
            let ms = d.as_millis() as u64;
            assert!(
                (lo..lo + 25).contains(&ms),
                "attempt {n}: {ms} ms outside [{lo}, {})",
                lo + 25
            );
        }
        // Different jobs de-synchronise (jitter differs with overwhelming
        // likelihood for these two ids; locked here as a regression).
        assert_ne!(
            retry_delay(base, "ev_sa15_cd_x0", 1),
            retry_delay(base, "al_sa15_bgcc", 1)
        );
    }

    #[test]
    fn stop_flag_round_trips() {
        assert!(!stop_requested());
        request_stop();
        assert!(stop_requested());
        STOP.store(false, Ordering::SeqCst);
    }

    #[test]
    fn retry_delay_is_a_pure_function_with_the_documented_shape() {
        // Exact construction: base·2^min(attempt-1, 10) plus
        // digest-derived jitter below one base period. Locking the
        // formula (digest64 is platform-stable) locks the jitter
        // across runs and platforms.
        let base = Duration::from_millis(25);
        for id in ["ev_sa15_cd_x0", "al_dm_bgcc", "ev_dm_dca_x1_l1"] {
            for attempt in [1u32, 2, 3, 9, 10, 11, 64, u32::MAX] {
                let want = (25u64 << attempt.saturating_sub(1).min(10))
                    + (digest64(id.as_bytes()) ^ u64::from(attempt)) % 25;
                assert_eq!(
                    retry_delay(base, id, attempt),
                    Duration::from_millis(want),
                    "{id} attempt {attempt}"
                );
                assert_eq!(
                    retry_delay(base, id, attempt),
                    retry_delay(base, id, attempt),
                    "same inputs, same delay"
                );
            }
        }
    }

    #[test]
    fn retry_delay_base_is_monotone_to_the_shift_cap_and_never_overflows() {
        let base = Duration::from_millis(25);
        let id = "ev_sa15_rod_x0";
        let mut prev_lo = 0u64;
        for attempt in 1..=11u32 {
            let lo = 25u64 << (attempt - 1).min(10);
            let ms = retry_delay(base, id, attempt).as_millis() as u64;
            assert!(
                (lo..lo + 25).contains(&ms),
                "attempt {attempt}: {ms} ms outside [{lo}, {})",
                lo + 25
            );
            assert!(lo >= prev_lo, "base must be monotone non-decreasing");
            prev_lo = lo;
        }
        // Past the shift cap the base saturates at 2^10·base: attempts
        // 11, 12, 10^6 and u32::MAX all sit in the same envelope — no
        // shift overflow, no wrap back to short delays.
        let cap_lo = 25u64 << 10;
        for attempt in [11u32, 12, 100, 1_000_000, u32::MAX] {
            let ms = retry_delay(base, id, attempt).as_millis() as u64;
            assert!(
                (cap_lo..cap_lo + 25).contains(&ms),
                "attempt {attempt}: {ms} ms escaped the cap envelope"
            );
        }
        // attempt 0 (defensive: retries are 1-based) must not shift by
        // -1; it shares attempt 1's envelope.
        let ms = retry_delay(base, id, 0).as_millis() as u64;
        assert!((25..75).contains(&ms), "attempt 0: {ms} ms");
    }

    #[test]
    fn stderr_tail_is_bounded_by_lines_and_bytes() {
        // Line-count cap (short lines never hit the byte caps).
        let mut tail = VecDeque::new();
        for i in 0..200 {
            push_stderr_tail(&mut tail, format!("line {i}"));
        }
        assert_eq!(tail.len(), STDERR_TAIL_LINES);
        assert_eq!(tail.back().map(String::as_str), Some("line 199"));
        assert_eq!(tail.front().map(String::as_str), Some("line 150"));

        // One pathological multi-megabyte line is truncated with a
        // marker instead of swallowing the budget.
        let mut tail = VecDeque::new();
        push_stderr_tail(&mut tail, "x".repeat(5 * 1024 * 1024));
        assert_eq!(tail.len(), 1);
        let kept = tail.back().expect("kept line");
        assert!(
            kept.len() < STDERR_LINE_BYTES + 64,
            "kept {} bytes",
            kept.len()
        );
        assert!(
            kept.ends_with("bytes]"),
            "truncation marker missing: {kept:?}"
        );

        // Total bytes cap: many near-cap lines evict oldest-first and
        // the retained tail stays within the byte budget.
        let mut tail = VecDeque::new();
        for i in 0..100 {
            push_stderr_tail(&mut tail, format!("{i:04} {}", "y".repeat(1024)));
        }
        let bytes: usize = tail.iter().map(String::len).sum();
        assert!(bytes <= STDERR_TAIL_BYTES, "{bytes} bytes retained");
        assert!(
            tail.len() < STDERR_TAIL_LINES,
            "byte cap must bite first here"
        );
        assert!(tail.back().expect("newest").starts_with("0099"));

        // Truncation never splits a UTF-8 character.
        let mut tail = VecDeque::new();
        push_stderr_tail(&mut tail, "é".repeat(STDERR_LINE_BYTES));
        assert!(tail.back().expect("kept").is_char_boundary(0));
    }

    #[test]
    fn prune_quarantine_heals_and_deduplicates() {
        let q = |id: &str| Quarantined {
            job_id: id.to_string(),
            attempts: 3,
            error: "gave up".to_string(),
            stderr: vec![],
        };
        let prior = vec![
            q("healed"),
            q("still_bad"),
            q("superseded"),
            q("unparseable"),
        ];
        let current = vec![q("superseded")];
        let kept = prune_quarantine(prior, &current, |id| id == "healed" || id == "unparseable");
        let ids: Vec<&str> = kept.iter().map(|k| k.job_id.as_str()).collect();
        assert_eq!(ids, vec!["still_bad"]);
    }
}
