//! # dca-bench — harness regenerating every table and figure of the paper
//!
//! Shared machinery for the Criterion benches and the `figures` binary:
//! run specifications, the weighted-speedup protocol (§V), parallel
//! execution over the Table I mixes, and result tables.
//!
//! ## Scaling
//!
//! The paper simulates 500 M instructions per core over 30 mixes; a full
//! regeneration at that scale is hours of CPU. The harness defaults to a
//! calibrated reduced scale (400 k instructions, 8 mixes) that preserves
//! the figures' *shapes*, and reads three environment variables:
//!
//! * `DCA_FULL=1` — paper scale (2 M instructions/core, all 30 mixes).
//! * `DCA_INSTS=n` — instructions per core.
//! * `DCA_MIXES=a,b,c` — explicit mix ids (1..=30).
//! * `DCA_WARMUP=n` — warm-up ops per core (default: `insts/2` clamped
//!   to 400 k..=1 M; the override exists so tiny CI/shard smoke runs
//!   don't pay a 400 k-op functional warm-up per key).
//!
//! ## Process sharding
//!
//! The `figures` binary can split a figure run across worker
//! *subprocesses* (`figures --jobs N`): the run is decomposed into
//! deterministically named jobs, a supervised pool of persistent
//! workers (`figures --worker --serve`, one spawn per worker, not per
//! job) executes them and flushes machine-readable JSON partials under
//! `results/partials/`, and the supervisor merges them into the same
//! per-figure outputs a single-process run writes — bit-identical, by
//! construction and by test, including under injected crashes, hangs,
//! and protocol garbage (`DCA_FAULT_PLAN`). Jobs that keep failing are
//! quarantined rather than aborting the sweep. See [`shard`] for the
//! job model, the partial schema, and the crash-safety rules,
//! [`shard::pool`] for the worker wire protocol and fault injection,
//! [`shard::supervisor`] for deadlines/retry/quarantine policy, and
//! [`warm`] for how concurrent workers coordinate warm-ups through the
//! shared `DCA_WARM_DIR`.
//!
//! ## Sweep fabric
//!
//! The same job model also runs *distributed*: `figures --serve <addr>`
//! is a TCP coordinator leasing jobs to any number of
//! `figures --agent <addr>` processes, each draining its leases through
//! a local worker pool. The fabric layers four robustness mechanisms on
//! the pool: lease ownership with forwarded heartbeats (a silent or
//! disconnected agent forfeits its leases into the ordinary
//! retry/backoff/quarantine machinery), a write-ahead journal so a
//! killed coordinator resumes exactly, digest-verified length-prefixed
//! transport (torn or corrupt uploads are rejected and retried), and
//! graceful degradation (SIGINT drains, zero live agents falls back to
//! local workers). See [`shard::fabric`].
//!
//! ## `figures` exit-code contract
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success — every requested figure written |
//! | 1    | hard error (bad environment, unwritable `results/`; for `--agent`: coordinator unreachable or handshake rejected) |
//! | 2    | usage error |
//! | 3    | degraded — quarantined jobs; affected cells render as `—` |
//! | 130  | interrupted — in-flight jobs drained and flushed; re-running the same command resumes (`--serve` keeps its journal) |
//!
//! `--serve` follows the same table; `--agent` exits `0` when the
//! coordinator releases it, `1` on unreachable/rejected, `130` when
//! drained.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dca::{Design, EngineSel, System, SystemConfig, SystemReport};
use dca_cpu::{mix, Benchmark};
use dca_dram::MappingScheme;
use dca_dram_cache::{OrgKind, ReplacementPolicy};
use dca_mem_hier::MainMemConfig;
use dca_metrics::{geomean, weighted_speedup};

pub mod shard;
pub mod warm;

pub use warm::{WarmCache, WarmCacheStats};

/// The experiment seed shared by every harness entry point.
pub const DEFAULT_SEED: u64 = 0xDCA_2016;

/// Main-memory backend a [`RunSpec`] selects — compact enough to ride
/// in a shard job id (see `shard`'s grammar: `mmf` / `mmd<slow>` /
/// `mmx`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MainMemKind {
    /// The flat 50 ns + bus seed model (the default everywhere).
    Flat,
    /// Cycle-level DDR4 with its data bandwidth divided by `slow`
    /// (`slow == 1` is the full-rate device) — the sensitivity knob.
    Ddr4 {
        /// Bandwidth divisor (≥ 1).
        slow: u8,
    },
    /// Cycle-level 3DXPoint-like slow tier (asymmetric read/write
    /// media timings behind a DDR4-like link).
    Xpoint,
}

impl MainMemKind {
    /// The [`MainMemConfig`] this selector stands for.
    pub fn config(self) -> MainMemConfig {
        match self {
            MainMemKind::Flat => MainMemConfig::paper_flat(),
            MainMemKind::Ddr4 { slow } => MainMemConfig::ddr4_bandwidth_div(slow.max(1) as u32),
            MainMemKind::Xpoint => MainMemConfig::xpoint(),
        }
    }

    /// Human-readable label for tables.
    pub fn label(self) -> String {
        match self {
            MainMemKind::Flat => "flat-50ns".to_string(),
            MainMemKind::Ddr4 { slow: 1 } => "ddr4-2400".to_string(),
            MainMemKind::Ddr4 { slow } => format!("ddr4-2400/{slow}"),
            MainMemKind::Xpoint => "xpoint".to_string(),
        }
    }

    /// Job-id token (`mmf` / `mmd<slow>` / `mmx`), kept here so the
    /// shard grammar and this type cannot drift apart.
    pub fn token(self) -> String {
        match self {
            MainMemKind::Flat => "mmf".to_string(),
            MainMemKind::Ddr4 { slow } => format!("mmd{slow}"),
            MainMemKind::Xpoint => "mmx".to_string(),
        }
    }

    /// Inverse of [`MainMemKind::token`].
    pub fn parse_token(t: &str) -> Result<MainMemKind, String> {
        if t == "mmf" {
            return Ok(MainMemKind::Flat);
        }
        if t == "mmx" {
            return Ok(MainMemKind::Xpoint);
        }
        if let Some(slow) = t.strip_prefix("mmd") {
            let slow: u8 = slow
                .parse()
                .ok()
                .filter(|&s| s >= 1)
                .ok_or_else(|| format!("bad main-mem token {t:?}"))?;
            return Ok(MainMemKind::Ddr4 { slow });
        }
        Err(format!("bad main-mem token {t:?}"))
    }
}

/// Everything that defines one simulation run (minus the workload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Controller design.
    pub design: Design,
    /// Cache organisation.
    pub org: OrgKind,
    /// XOR remapping on/off.
    pub remap: bool,
    /// Lee DRAM-aware L2 writeback on/off (Fig 19).
    pub lee: bool,
    /// DCA flushing factor (ablation; paper default 4).
    pub flushing_factor: u8,
    /// DRAM-cache replacement policy (default SRRIP — the seed
    /// behaviour).
    pub policy: ReplacementPolicy,
    /// Main-memory backend (default flat — the seed model).
    pub main_mem: MainMemKind,
    /// Event engine (default calendar). A pure wall-clock knob: every
    /// engine is locked bit-identical by `tests/engine_equivalence.rs`,
    /// so it rides in job ids for reproducibility, not for results.
    pub engine: EngineSel,
    /// Instructions per core.
    pub insts: u64,
    /// Warm-up ops per core.
    pub warmup: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl RunSpec {
    /// Paper-default spec at the harness scale.
    pub fn new(design: Design, org: OrgKind) -> Self {
        Self::at_scale(design, org, &Scale::from_env())
    }

    /// Paper-default spec at an explicit scale (the sharded planner and
    /// its tests build specs without consulting the environment).
    pub fn at_scale(design: Design, org: OrgKind, scale: &Scale) -> Self {
        RunSpec {
            design,
            org,
            remap: false,
            lee: false,
            flushing_factor: 4,
            policy: ReplacementPolicy::Srrip,
            main_mem: MainMemKind::Flat,
            engine: EngineSel::Calendar,
            insts: scale.insts,
            warmup: scale.warmup,
            seed: DEFAULT_SEED,
        }
    }

    /// Enable the XOR remapping.
    pub fn with_remap(mut self) -> Self {
        self.remap = true;
        self
    }

    /// Enable Lee DRAM-aware writeback.
    pub fn with_lee(mut self) -> Self {
        self.lee = true;
        self
    }

    /// Select a main-memory backend.
    pub fn with_main_mem(mut self, mm: MainMemKind) -> Self {
        self.main_mem = mm;
        self
    }

    /// Select a DRAM-cache replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Select an event engine.
    pub fn with_engine(mut self, engine: EngineSel) -> Self {
        self.engine = engine;
        self
    }

    /// Materialise the system configuration.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::paper(self.design, self.org);
        if self.remap {
            cfg.mapping = MappingScheme::XorRemap;
        }
        cfg.lee_writeback = self.lee;
        cfg.dca.flushing_factor = self.flushing_factor;
        cfg.replacement = self.policy;
        cfg.main_mem = self.main_mem.config();
        cfg.engine = self.engine;
        cfg.target_insts = self.insts;
        cfg.warmup_ops = self.warmup;
        cfg.seed = self.seed;
        cfg
    }

    /// Run one Table I mix under this spec, sharing the functional
    /// warm-up with every other design/remap variant of the same
    /// `(mix, org, warmup, seed)` tuple through the global [`WarmCache`]
    /// (bit-for-bit identical to a cold run; `DCA_WARM=0` opts out).
    pub fn run_mix(&self, mix_id: u32) -> SystemReport {
        let m = mix(mix_id);
        self.run_benches(&m.benches)
    }

    /// Run one Table I mix with a fresh, uncached warm-up.
    pub fn run_mix_cold(&self, mix_id: u32) -> SystemReport {
        let m = mix(mix_id);
        self.run_benches_cold(&m.benches)
    }

    /// Run an explicit benchmark list (1–4 cores), warm-cached like
    /// [`RunSpec::run_mix`].
    pub fn run_benches(&self, benches: &[Benchmark]) -> SystemReport {
        let cfg = self.config();
        if WarmCache::enabled() {
            let warm = WarmCache::global().get_or_build(&cfg, benches);
            System::from_warm(cfg, benches, &warm).run()
        } else {
            System::new(cfg, benches).run()
        }
    }

    /// Run an explicit benchmark list with a fresh, uncached warm-up.
    pub fn run_benches_cold(&self, benches: &[Benchmark]) -> SystemReport {
        System::new(self.config(), benches).run()
    }
}

/// Harness scale, from the environment.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Instructions per core.
    pub insts: u64,
    /// Warm-up ops per core.
    pub warmup: u64,
    /// Mix ids to evaluate.
    pub mixes: Vec<u32>,
}

impl Scale {
    /// Read `DCA_FULL` / `DCA_INSTS` / `DCA_MIXES` / `DCA_WARMUP`.
    pub fn from_env() -> Scale {
        let full = std::env::var("DCA_FULL").map(|v| v == "1").unwrap_or(false);
        let insts = std::env::var("DCA_INSTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 2_000_000 } else { 400_000 });
        let warmup = std::env::var("DCA_WARMUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&w: &u64| w > 0)
            .unwrap_or((insts / 2).clamp(400_000, 1_000_000));
        let mixes = std::env::var("DCA_MIXES")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect::<Vec<u32>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| {
                if full {
                    (1..=30).collect()
                } else {
                    // A representative slice: streaming-heavy, chase-heavy
                    // and mixed mixes, including GemsFDTD/bwaves aliasing.
                    vec![1, 2, 6, 13, 17, 22, 25, 27]
                }
            });
        Scale {
            insts,
            warmup,
            mixes,
        }
    }
}

/// Alone-IPC table for the weighted-speedup protocol: each benchmark's
/// IPC running alone on the **CD / no-remap** baseline of the same
/// organisation (the denominator is shared by all designs so design
/// deltas come from the shared runs only).
pub struct AloneIpc {
    cache: Mutex<HashMap<(Benchmark, &'static str, MainMemKind), f64>>,
    insts: u64,
    warmup: u64,
    seed: u64,
}

impl AloneIpc {
    /// Empty table at the harness scale.
    pub fn new() -> Self {
        let scale = Scale::from_env();
        AloneIpc {
            cache: Mutex::new(HashMap::new()),
            insts: scale.insts,
            warmup: scale.warmup,
            seed: 0xDCA_2016,
        }
    }

    /// Alone IPC of `bench` under organisation `org` with the flat
    /// main-memory backend (cached).
    pub fn get(&self, bench: Benchmark, org: OrgKind) -> f64 {
        self.get_with(bench, org, MainMemKind::Flat)
    }

    /// Alone IPC of `bench` under `org` × main-memory backend `mm`
    /// (cached) — the baseline shares the backend under test so
    /// main-memory sensitivity does not leak into the denominator.
    pub fn get_with(&self, bench: Benchmark, org: OrgKind, mm: MainMemKind) -> f64 {
        let key = (bench, org.label(), mm);
        if let Some(&v) = self.cache.lock().unwrap().get(&key) {
            return v;
        }
        let spec = RunSpec {
            design: Design::Cd,
            org,
            remap: false,
            lee: false,
            flushing_factor: 4,
            policy: ReplacementPolicy::Srrip,
            main_mem: mm,
            engine: EngineSel::Calendar,
            insts: self.insts,
            warmup: self.warmup,
            seed: self.seed,
        };
        let r = spec.run_benches(&[bench]);
        let v = r.cores[0].ipc;
        self.cache.lock().unwrap().insert(key, v);
        v
    }

    /// Pre-compute alone IPCs for every benchmark of the given mixes, in
    /// parallel.
    pub fn prime(&self, mixes: &[u32], org: OrgKind) {
        let mut benches: Vec<Benchmark> = mixes.iter().flat_map(|&id| mix(id).benches).collect();
        benches.sort();
        benches.dedup();
        run_parallel(benches, |b| {
            self.get(b, org);
        });
    }
}

impl Default for AloneIpc {
    fn default() -> Self {
        Self::new()
    }
}

/// Run `f` over `items` with bounded std::thread parallelism, preserving
/// input order in the result.
///
/// A panic inside `f` is re-raised on the calling thread with its
/// **original payload** (via `std::panic::resume_unwind`), after all
/// other workers have drained — not wrapped in a confusing join/lock
/// error. `assert!` messages and `panic!` strings from worker closures
/// therefore surface to the caller exactly as they would single-
/// threaded.
///
/// Work distribution is chunked and atomic: items are pre-split into
/// small index-tagged chunks, workers claim chunks through one
/// `fetch_add` counter, and each worker accumulates `(index, result)`
/// pairs privately, merged once at join. No per-item mutex on either
/// side (the old design paid one `Mutex<Option<R>>` per result and a
/// LIFO work stack), items are processed in roughly input order (better
/// warm-cache locality), and chunks stay small enough that uneven item
/// costs — one slow mix — still balance across workers.
pub fn run_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    // One claimable unit of work: the chunk's starting index + items.
    // The mutex is never contended — the atomic counter hands each
    // chunk to exactly one worker; it only makes the take() Sync.
    type Chunk<T> = Mutex<Option<(usize, Vec<T>)>>;
    // Several chunks per worker so a straggler chunk cannot serialise
    // the tail; chunk boundaries keep input order within each chunk.
    let chunk_len = n.div_ceil(threads * 4).max(1);
    let chunks: Vec<Chunk<T>> = {
        let mut items = items;
        let mut start = n;
        let mut out = Vec::with_capacity(n.div_ceil(chunk_len));
        while !items.is_empty() {
            let tail = items.split_off(items.len().saturating_sub(chunk_len));
            start -= tail.len();
            out.push(Mutex::new(Some((start, tail))));
        }
        out.reverse();
        out
    };
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = chunks.get(c) else { break };
                        let (start, chunk) = slot
                            .lock()
                            .unwrap()
                            .take()
                            .expect("chunk claimed exactly once");
                        for (off, item) in chunk.into_iter().enumerate() {
                            local.push((start + off, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        // Join every worker before re-raising, so a panic in one
        // closure cannot leave siblings running detached; the first
        // panic payload (in worker order) is the one propagated.
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

/// The raw, serialisable measurement one mix contributes to a figure:
/// everything a worker must report so the coordinator can finish the
/// figure math (weighted speedups need the alone-IPC table, which lives
/// in separate jobs, so workers ship per-core IPCs instead of WS).
#[derive(Clone, Debug, PartialEq)]
pub struct MixPoint {
    /// Mix id the point was measured on.
    pub mix: u32,
    /// Per-core shared-run IPC, in core order.
    pub core_ipc: Vec<f64>,
    /// Mean L2 miss latency (ns).
    pub miss_latency_ns: f64,
    /// Accesses per bus turnaround.
    pub apt: f64,
    /// Read row-buffer hit rate.
    pub row_hit: f64,
}

impl MixPoint {
    /// Measure one mix under `spec` (warm-cached like
    /// [`RunSpec::run_mix`]).
    pub fn measure(spec: &RunSpec, mix_id: u32) -> MixPoint {
        let r = spec.run_mix(mix_id);
        MixPoint {
            mix: mix_id,
            core_ipc: r.cores.iter().map(|c| c.ipc).collect(),
            miss_latency_ns: r.l2_miss_latency.mean_ns(),
            apt: r.accesses_per_turnaround(),
            row_hit: r.read_row_hit_rate(),
        }
    }
}

/// Fold measured [`MixPoint`]s into a [`DesignSummary`], resolving each
/// benchmark's alone IPC through `alone` (an [`AloneIpc`] table in
/// single-process mode, a merged partial store in sharded mode). Both
/// paths run the exact same float operations in the exact same order,
/// which is what makes sharded output bit-identical to serial output.
pub fn summarize<F>(label: &str, org: OrgKind, points: &[MixPoint], alone: F) -> DesignSummary
where
    F: Fn(Benchmark, OrgKind) -> f64,
{
    let mut ws = Vec::new();
    let mut lat = Vec::new();
    let mut apt = Vec::new();
    let mut rhr = Vec::new();
    for p in points {
        let m = mix(p.mix);
        let alone_ipc: Vec<f64> = m.benches.iter().map(|&b| alone(b, org)).collect();
        ws.push(weighted_speedup(&p.core_ipc, &alone_ipc));
        lat.push(p.miss_latency_ns);
        apt.push(p.apt);
        rhr.push(p.row_hit);
    }
    DesignSummary {
        label: label.to_string(),
        ws,
        miss_latency_ns: lat,
        apt,
        row_hit: rhr,
    }
}

/// Per-design summary over a set of mixes.
#[derive(Clone, Debug)]
pub struct DesignSummary {
    /// Design label (possibly with remap prefix, e.g. "XOR+DCA").
    pub label: String,
    /// Per-mix weighted speedups, in mix order.
    pub ws: Vec<f64>,
    /// Per-mix mean L2 miss latency (ns).
    pub miss_latency_ns: Vec<f64>,
    /// Per-mix accesses per turnaround.
    pub apt: Vec<f64>,
    /// Per-mix read row-buffer hit rate.
    pub row_hit: Vec<f64>,
}

impl DesignSummary {
    /// Geometric-mean weighted speedup.
    pub fn ws_geomean(&self) -> f64 {
        geomean(&self.ws)
    }

    /// Arithmetic-mean miss latency.
    pub fn mean_latency(&self) -> f64 {
        self.miss_latency_ns.iter().sum::<f64>() / self.miss_latency_ns.len().max(1) as f64
    }

    /// Arithmetic-mean accesses per turnaround.
    pub fn mean_apt(&self) -> f64 {
        self.apt.iter().sum::<f64>() / self.apt.len().max(1) as f64
    }

    /// Arithmetic-mean read row-buffer hit rate.
    pub fn mean_row_hit(&self) -> f64 {
        self.row_hit.iter().sum::<f64>() / self.row_hit.len().max(1) as f64
    }
}

/// Evaluate `spec` over `mixes` (parallel), producing a summary. The
/// weighted-speedup baseline runs on the spec's own main-memory
/// backend.
pub fn evaluate(spec: RunSpec, mixes: &[u32], alone: &AloneIpc, label: &str) -> DesignSummary {
    let points = run_parallel(mixes.to_vec(), |id| MixPoint::measure(&spec, id));
    summarize(label, spec.org, &points, |b, org| {
        alone.get_with(b, org, spec.main_mem)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let out = run_parallel((0..32).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn run_parallel_handles_edge_sizes() {
        assert_eq!(run_parallel(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(run_parallel(vec![7], |x| x + 1), vec![8]);
        // Sizes that don't divide evenly into chunks, across a span
        // bigger than any plausible thread count.
        for n in [2usize, 3, 5, 17, 63, 64, 65, 257] {
            let input: Vec<usize> = (0..n).collect();
            let out = run_parallel(input, |x| x * x);
            assert_eq!(out, (0..n).map(|x| x * x).collect::<Vec<usize>>(), "n={n}");
        }
    }

    #[test]
    fn run_parallel_balances_uneven_work() {
        // One pathologically slow item must not serialise the rest:
        // correctness-only check here (timing is the microbench's job),
        // but it exercises the chunk-claim path under real contention.
        let out = run_parallel((0..100u64).collect(), |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "simulated worker failure on item 13")]
    fn run_parallel_propagates_the_original_panic_payload() {
        // The payload must surface verbatim on the caller — not as a
        // "worker panicked" join error or a poisoned-lock unwrap.
        run_parallel((0..64u64).collect(), |x| {
            if x == 13 {
                panic!("simulated worker failure on item {x}");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "simulated worker failure")]
    fn run_parallel_propagates_panics_from_multiple_workers() {
        // Several failing items: still a clean, original-payload panic.
        run_parallel((0..64u64).collect(), |x| {
            if x % 2 == 0 {
                panic!("simulated worker failure on item {x}");
            }
            x
        });
    }

    #[test]
    fn scale_defaults_are_sane() {
        let s = Scale::from_env();
        assert!(s.insts >= 50_000);
        assert!(!s.mixes.is_empty());
        assert!(s.mixes.iter().all(|&m| (1..=30).contains(&m)));
    }

    #[test]
    fn spec_config_round_trips() {
        let spec = RunSpec::new(Design::Dca, OrgKind::DirectMapped)
            .with_remap()
            .with_lee();
        let cfg = spec.config();
        assert_eq!(cfg.design, Design::Dca);
        assert!(cfg.lee_writeback);
        assert_eq!(cfg.mapping, MappingScheme::XorRemap);
    }
}
