//! Process-wide cache of [`WarmState`] checkpoints, so every design and
//! remap variant of a `(mix, org, warmup, seed)` tuple in a sweep pays
//! for exactly one functional warm-up.
//!
//! Lookup is keyed by [`WarmState::fingerprint_for`]; concurrent
//! requests for the *same* key rendezvous on a per-key [`OnceLock`]
//! (one thread warms, the rest block on that key only), while requests
//! for different keys warm in parallel — exactly what
//! [`run_parallel`](crate::run_parallel) sweeps need.
//!
//! The cache is bounded (insertion-order eviction; a warm state for the
//! default organisation is tens of MB) and optionally persisted:
//!
//! * `DCA_WARM=0` — disable warm reuse entirely; every run warms cold.
//! * `DCA_WARM_CAP=n` — keep at most `n` states in memory (default 48,
//!   sized to one organisation's full paper-scale pass; see
//!   `DEFAULT_CAP`).
//! * `DCA_WARM_PERSIST=1` — also write/read blobs under `results/warm/`.
//! * `DCA_WARM_DIR=path` — persist under `path` instead.
//!
//! Every `DCA_WARM*` knob is **latched once, at cache construction**
//! (for the shared instance: first use of [`WarmCache::global`]).
//! Flipping the environment mid-process can therefore never split one
//! sweep into cached and cold halves — a sweep sees exactly the policy
//! it started under.
//!
//! On-disk blobs are validated by magic, format version, digest *and*
//! fingerprint before use (see `dca::warm` for the format and the
//! invalidation rules); anything stale, truncated or corrupt — e.g. a
//! blob torn by a crashed writer — is logged as a warning and treated
//! as a cache miss, falling back to a cold warm-up rather than an
//! error. Writers stage into a uniquely named temp file and atomically
//! rename it into place, so concurrent `run_parallel` workers (or
//! whole processes) persisting the same fingerprint can never
//! interleave partial writes into one visible blob — reuse can only
//! ever be a cache hit of the exact bytes a cold warm-up would
//! produce.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dca::{System, SystemConfig, WarmState};
use dca_cpu::Benchmark;
use dca_sim_core::FastHashMap;

/// Monotonic counters describing what the cache did so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmCacheStats {
    /// Warm-ups actually executed.
    pub builds: u64,
    /// Lookups served from an already-resident state.
    pub hits: u64,
    /// States loaded from a valid on-disk blob.
    pub disk_loads: u64,
}

/// One per-key rendezvous point: same-key builders serialise on the
/// `OnceLock`, everyone shares the resulting `Arc<WarmState>`.
type WarmSlot = Arc<OnceLock<Arc<WarmState>>>;

/// A bounded, fingerprint-keyed store of warm states.
pub struct WarmCache {
    /// Resident slots by fingerprint, plus insertion order for eviction.
    slots: Mutex<(FastHashMap<u64, WarmSlot>, VecDeque<u64>)>,
    cap: usize,
    disk_dir: Option<PathBuf>,
    /// `DCA_WARM` latched at construction: whether callers should reuse
    /// warm state at all.
    reuse: bool,
    builds: AtomicU64,
    hits: AtomicU64,
    disk_loads: AtomicU64,
}

impl Default for WarmCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Default residency cap. Sized for the harness's worst working set:
/// figure sweeps are *design-major* (every design re-walks all mixes in
/// the same order), so the cap must cover one organisation's full
/// paper-scale pass — 30 mixes + 11 alone-IPC single-bench states = 41
/// keys — or a cyclic scan against a smaller FIFO yields zero reuse on
/// the second and later designs. 48 leaves headroom; at ~30 MB per
/// state that bounds residency near 1.4 GB at `DCA_FULL=1` (tune with
/// `DCA_WARM_CAP`; the default 8-mix scale stays under ~600 MB).
const DEFAULT_CAP: usize = 48;

impl WarmCache {
    /// A cache configured from the environment (see module docs). All
    /// `DCA_WARM*` knobs are read here, exactly once — the returned
    /// cache's policy is immutable for its lifetime.
    pub fn new() -> Self {
        let cap = std::env::var("DCA_WARM_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(DEFAULT_CAP);
        let disk_dir = std::env::var("DCA_WARM_DIR")
            .ok()
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var("DCA_WARM_PERSIST")
                    .map(|v| v == "1")
                    .unwrap_or(false)
                    .then(|| PathBuf::from("results/warm"))
            });
        let reuse = std::env::var("DCA_WARM").map(|v| v != "0").unwrap_or(true);
        Self::with_policy(cap, disk_dir, reuse)
    }

    /// A cache with an explicit policy, bypassing the environment
    /// (tests and embedders that must not depend on process-global
    /// state).
    pub fn with_policy(cap: usize, disk_dir: Option<PathBuf>, reuse: bool) -> Self {
        WarmCache {
            slots: Mutex::new((FastHashMap::default(), VecDeque::new())),
            cap: cap.max(1),
            disk_dir,
            reuse,
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
        }
    }

    /// The process-wide shared instance. Environment knobs are latched
    /// the first time this is called and never re-read.
    pub fn global() -> &'static WarmCache {
        static GLOBAL: OnceLock<WarmCache> = OnceLock::new();
        GLOBAL.get_or_init(WarmCache::new)
    }

    /// Whether warm reuse is enabled for this cache (`DCA_WARM=0` at
    /// construction opts out; anything else opts in).
    pub fn reuse_enabled(&self) -> bool {
        self.reuse
    }

    /// Whether warm reuse is enabled for the process-wide instance.
    /// Latched once at [`WarmCache::global`] construction: flipping
    /// `DCA_WARM` mid-process cannot make one sweep mix cached and
    /// cold runs.
    pub fn enabled() -> bool {
        Self::global().reuse_enabled()
    }

    /// Counters so far.
    pub fn stats(&self) -> WarmCacheStats {
        WarmCacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
        }
    }

    /// The warm state for `(cfg, benches)`, built (or disk-loaded) on
    /// first request and shared thereafter.
    pub fn get_or_build(&self, cfg: &SystemConfig, benches: &[Benchmark]) -> Arc<WarmState> {
        let fp = WarmState::fingerprint_for(cfg, benches);
        let slot = {
            let mut guard = self.slots.lock().unwrap();
            let (map, order) = &mut *guard;
            if let Some(slot) = map.get(&fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.clone()
            } else {
                let slot = Arc::new(OnceLock::new());
                map.insert(fp, slot.clone());
                order.push_back(fp);
                // Bound residency; in-flight users keep their Arc alive.
                while map.len() > self.cap {
                    if let Some(old) = order.pop_front() {
                        map.remove(&old);
                    }
                }
                slot
            }
        };
        slot.get_or_init(|| {
            if let Some(state) = self.try_disk_load(fp) {
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                return Arc::new(state);
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            let state = System::capture_warm(*cfg, benches);
            self.try_disk_store(&state);
            Arc::new(state)
        })
        .clone()
    }

    fn blob_path(&self, fp: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{fp:016x}.warm")))
    }

    /// Load and fully validate an on-disk blob. A missing file is a
    /// silent miss; a file that *exists* but fails validation
    /// (truncated, bit-rotted, torn, or carrying the wrong
    /// fingerprint) is a **logged** miss — the caller falls back to a
    /// cold warm-up instead of erroring, and the next store replaces
    /// the bad blob.
    fn try_disk_load(&self, fp: u64) -> Option<WarmState> {
        let path = self.blob_path(fp)?;
        let bytes = std::fs::read(&path).ok()?;
        match WarmState::decode(&bytes) {
            Ok(state) if state.fingerprint() == fp => Some(state),
            Ok(state) => {
                eprintln!(
                    "warning: warm blob {} carries fingerprint {:#018x}, expected {:#018x}; \
                     ignoring it and warming cold",
                    path.display(),
                    state.fingerprint(),
                    fp
                );
                None
            }
            Err(e) => {
                eprintln!(
                    "warning: warm blob {} is truncated or corrupt ({e}); \
                     ignoring it and warming cold",
                    path.display()
                );
                None
            }
        }
    }

    /// Best-effort persistence; I/O failure only costs future reuse.
    fn try_disk_store(&self, state: &WarmState) {
        let Some(path) = self.blob_path(state.fingerprint()) else {
            return;
        };
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        // Exclusive staging + atomic rename: the temp name is unique
        // per (process, store) so two workers — threads or whole
        // processes — racing on the same fingerprint each write their
        // own complete file, and whichever renames last wins with a
        // whole blob. A reader can never observe a partial write.
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Whether the write failed (partial file) or the rename did,
        // never leave the uniquely named staging file behind.
        if std::fs::write(&tmp, state.encode()).is_err() || std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca::Design;
    use dca_dram_cache::OrgKind;

    fn tiny_cfg(seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(5_000, 10_000);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn same_key_builds_once_and_shares() {
        let cache = WarmCache::new();
        let cfg = tiny_cfg(1);
        let benches = [Benchmark::Gcc];
        let a = cache.get_or_build(&cfg, &benches);
        let b = cache.get_or_build(&cfg, &benches);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn design_variants_share_one_warmup() {
        let cache = WarmCache::new();
        let benches = [Benchmark::Gcc];
        for design in Design::ALL {
            let mut cfg = tiny_cfg(2);
            cfg.design = design;
            cache.get_or_build(&cfg, &benches);
        }
        assert_eq!(cache.stats().builds, 1, "one warm-up for three designs");
    }

    #[test]
    fn different_seeds_build_separately() {
        let cache = WarmCache::new();
        let benches = [Benchmark::Gcc];
        cache.get_or_build(&tiny_cfg(3), &benches);
        cache.get_or_build(&tiny_cfg(4), &benches);
        assert_eq!(cache.stats().builds, 2);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dca-warm-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn disk_persistence_round_trips_across_cache_instances() {
        let dir = scratch_dir("roundtrip");
        let cfg = tiny_cfg(20);
        let benches = [Benchmark::Gcc];
        let writer = WarmCache::with_policy(4, Some(dir.clone()), true);
        writer.get_or_build(&cfg, &benches);
        assert_eq!(writer.stats().builds, 1);
        // A fresh cache (think: next process) loads from disk, no build.
        let reader = WarmCache::with_policy(4, Some(dir.clone()), true);
        reader.get_or_build(&cfg, &benches);
        let s = reader.stats();
        assert_eq!((s.builds, s.disk_loads), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_blobs_fall_back_to_cold_warmup() {
        let dir = scratch_dir("corrupt");
        let cfg = tiny_cfg(21);
        let benches = [Benchmark::Gcc];
        let fp = dca::WarmState::fingerprint_for(&cfg, &benches);
        let blob_path = dir.join(format!("{fp:016x}.warm"));

        // Pure garbage where a blob should be.
        std::fs::write(&blob_path, b"not a warm state at all").expect("write garbage");
        let cache = WarmCache::with_policy(4, Some(dir.clone()), true);
        let state = cache.get_or_build(&cfg, &benches);
        let s = cache.stats();
        assert_eq!(
            (s.builds, s.disk_loads),
            (1, 0),
            "garbage blob must rebuild"
        );

        // The rebuild replaced the garbage with a valid blob.
        let healed = WarmCache::with_policy(4, Some(dir.clone()), true);
        assert!(Arc::ptr_eq(
            &healed.get_or_build(&cfg, &benches),
            &healed.get_or_build(&cfg, &benches)
        ));
        assert_eq!(healed.stats().disk_loads, 1, "store healed the blob");

        // A torn write: truncate the now-valid blob mid-payload.
        let bytes = std::fs::read(&blob_path).expect("read blob");
        std::fs::write(&blob_path, &bytes[..bytes.len() / 2]).expect("truncate");
        let torn = WarmCache::with_policy(4, Some(dir.clone()), true);
        let rebuilt = torn.get_or_build(&cfg, &benches);
        assert_eq!(torn.stats().builds, 1, "truncated blob must rebuild");
        assert_eq!(rebuilt.fingerprint(), state.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_is_latched_at_construction() {
        // `with_policy` freezes the reuse decision; the instance cannot
        // be re-configured afterwards (the env equivalents are read
        // exactly once, in `new`).
        let on = WarmCache::with_policy(4, None, true);
        let off = WarmCache::with_policy(4, None, false);
        assert!(on.reuse_enabled());
        assert!(!off.reuse_enabled());
    }

    #[test]
    fn concurrent_same_key_requests_build_once() {
        let cache = WarmCache::new();
        let cfg = tiny_cfg(5);
        let benches = [Benchmark::Gcc];
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_build(&cfg, &benches);
                });
            }
        });
        assert_eq!(cache.stats().builds, 1);
    }
}
