//! Process-wide cache of [`WarmState`] checkpoints, so every design and
//! remap variant of a `(mix, org, warmup, seed)` tuple in a sweep pays
//! for exactly one functional warm-up.
//!
//! Lookup is keyed by [`WarmState::fingerprint_for`]; concurrent
//! requests for the *same* key rendezvous on a per-key [`OnceLock`]
//! (one thread warms, the rest block on that key only), while requests
//! for different keys warm in parallel — exactly what
//! [`run_parallel`](crate::run_parallel) sweeps need.
//!
//! The cache is bounded (insertion-order eviction; a warm state for the
//! default organisation is tens of MB) and optionally persisted:
//!
//! * `DCA_WARM=0` — disable warm reuse entirely; every run warms cold.
//! * `DCA_WARM_CAP=n` — keep at most `n` states in memory (default 48,
//!   sized to one organisation's full paper-scale pass; see
//!   `DEFAULT_CAP`).
//! * `DCA_WARM_PERSIST=1` — also write/read blobs under `results/warm/`.
//! * `DCA_WARM_DIR=path` — persist under `path` instead.
//!
//! Every `DCA_WARM*` knob is **latched once, at cache construction**
//! (for the shared instance: first use of [`WarmCache::global`]).
//! Flipping the environment mid-process can therefore never split one
//! sweep into cached and cold halves — a sweep sees exactly the policy
//! it started under.
//!
//! On-disk blobs are validated by magic, format version, digest *and*
//! fingerprint before use (see `dca::warm` for the format and the
//! invalidation rules); anything stale, truncated or corrupt — e.g. a
//! blob torn by a crashed writer — is logged as a warning and treated
//! as a cache miss, falling back to a cold warm-up rather than an
//! error. Writers stage into a uniquely named temp file and atomically
//! rename it into place, so concurrent `run_parallel` workers (or
//! whole processes) persisting the same fingerprint can never
//! interleave partial writes into one visible blob — reuse can only
//! ever be a cache hit of the exact bytes a cold warm-up would
//! produce.
//!
//! ## Cross-process coordination
//!
//! When several *processes* share one `DCA_WARM_DIR` (the sharded
//! figure harness, `figures --jobs N`), atomic renames alone still let
//! two workers *build* the same warm-up concurrently — correct but
//! wasted work. A coarse **advisory lock file** (`<fp>.lock`, created
//! with `O_EXCL`) closes that hole: the first builder of a fingerprint
//! takes the lock, everyone else polls the blob path (**read → verify
//! → retry**) until the finished blob validates, the lock disappears
//! (then whoever re-acquires proceeds), or a deadline passes
//! (`DCA_WARM_LOCK_MS`, default 60 000) — at which point the waiter
//! shrugs and builds locally, because the lock is advisory and a
//! crashed holder must never wedge the sweep. Lock waits are counted
//! in [`WarmCacheStats::lock_waits`].
//!
//! The lock file carries its **owner's pid**: a waiter that finds the
//! owner dead (`/proc/<pid>` gone) reclaims the lock immediately
//! instead of sleeping out the full deadline — a worker killed
//! mid-warm-up costs the survivors one poll interval, not
//! `DCA_WARM_LOCK_MS` per waiter. Reclaims are counted in
//! [`WarmCacheStats::lock_reclaims`]; a lock whose content does not
//! parse as a pid (or a live-but-hung owner) still falls back to the
//! deadline. Waiters also bump a process-wide [`wait_ticks`] counter
//! each poll, which pool workers fold into their heartbeat `progress`
//! field — so a worker legitimately parked on another process's
//! warm-up keeps its job deadline alive (see `shard::pool`).
//!
//! ## Per-host warm directories (fabric)
//!
//! Both the lock protocol and the reclaim heuristic are **per-host by
//! construction**: the warm directory is resolved against the process's
//! own filesystem (`results/warm/` under its cwd, or `DCA_WARM_DIR`),
//! and owner liveness is judged by the local `/proc` table — a pid is
//! only meaningful on the machine that minted it. The sweep fabric
//! (`figures --serve` / `--agent`, see `shard::fabric`) leans on this
//! instead of fighting it: every agent warms against its *own* disk and
//! proc table, so there is **no cross-host lock coupling** — a crashed
//! agent on one machine can never wedge, or be "reclaimed" by, a waiter
//! on another. Pointing two hosts' agents at one network-shared
//! `DCA_WARM_DIR` is therefore unsupported (the pid check would judge
//! foreign owners with the local proc table); give each host its own
//! directory and let the coordinator's digest-verified partial
//! transport be the only cross-host channel.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use dca::{System, SystemConfig, WarmState};
use dca_cpu::Benchmark;
use dca_sim_core::FastHashMap;

/// Process-wide count of advisory-lock poll iterations, across every
/// cache instance. Strictly monotonic while a thread is *waiting* —
/// which is exactly when a pool worker looks stalled from the outside —
/// so `shard::pool` heartbeats report it as forward progress.
static WAIT_TICKS: AtomicU64 = AtomicU64::new(0);

/// Total warm-lock poll iterations this process has performed so far.
pub fn wait_ticks() -> u64 {
    WAIT_TICKS.load(Ordering::Relaxed)
}

/// Monotonic counters describing what the cache did so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmCacheStats {
    /// Warm-ups actually executed.
    pub builds: u64,
    /// Lookups served from an already-resident state.
    pub hits: u64,
    /// States loaded from a valid on-disk blob.
    pub disk_loads: u64,
    /// Times this cache waited on another process's advisory lock.
    pub lock_waits: u64,
    /// Stale locks reclaimed because their owner pid was dead.
    pub lock_reclaims: u64,
}

/// One per-key rendezvous point: same-key builders serialise on the
/// `OnceLock`, everyone shares the resulting `Arc<WarmState>`.
type WarmSlot = Arc<OnceLock<Arc<WarmState>>>;

/// A bounded, fingerprint-keyed store of warm states.
pub struct WarmCache {
    /// Resident slots by fingerprint, plus insertion order for eviction.
    slots: Mutex<(FastHashMap<u64, WarmSlot>, VecDeque<u64>)>,
    cap: usize,
    disk_dir: Option<PathBuf>,
    /// `DCA_WARM` latched at construction: whether callers should reuse
    /// warm state at all.
    reuse: bool,
    /// How long to wait on another process's advisory build lock before
    /// giving up and building locally (`DCA_WARM_LOCK_MS`).
    lock_timeout: Duration,
    builds: AtomicU64,
    hits: AtomicU64,
    disk_loads: AtomicU64,
    lock_waits: AtomicU64,
    lock_reclaims: AtomicU64,
}

impl Default for WarmCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Default residency cap. Sized for the harness's worst working set:
/// figure sweeps are *design-major* (every design re-walks all mixes in
/// the same order), so the cap must cover one organisation's full
/// paper-scale pass — 30 mixes + 11 alone-IPC single-bench states = 41
/// keys — or a cyclic scan against a smaller FIFO yields zero reuse on
/// the second and later designs. 48 leaves headroom; at ~30 MB per
/// state that bounds residency near 1.4 GB at `DCA_FULL=1` (tune with
/// `DCA_WARM_CAP`; the default 8-mix scale stays under ~600 MB).
const DEFAULT_CAP: usize = 48;

/// Default advisory-lock wait (ms): generous against a slow builder,
/// small against a whole sweep's wall clock.
const DEFAULT_LOCK_MS: u64 = 60_000;

impl WarmCache {
    /// A cache configured from the environment (see module docs). All
    /// `DCA_WARM*` knobs are read here, exactly once — the returned
    /// cache's policy is immutable for its lifetime. A malformed knob
    /// warns (once, here) naming the offending value and the fallback
    /// used, instead of silently pretending it was never set.
    pub fn new() -> Self {
        let cap = match std::env::var("DCA_WARM_CAP") {
            Ok(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                Ok(_) => {
                    eprintln!(
                        "warning: DCA_WARM_CAP={v:?} must be a positive integer; \
                         using the default cap of {DEFAULT_CAP}"
                    );
                    DEFAULT_CAP
                }
                Err(_) => {
                    eprintln!(
                        "warning: DCA_WARM_CAP={v:?} is not an integer; \
                         using the default cap of {DEFAULT_CAP}"
                    );
                    DEFAULT_CAP
                }
            },
            Err(_) => DEFAULT_CAP,
        };
        let persist = match std::env::var("DCA_WARM_PERSIST") {
            Ok(v) if v == "1" => true,
            Ok(v) if v == "0" || v.is_empty() => false,
            Ok(v) => {
                eprintln!(
                    "warning: DCA_WARM_PERSIST={v:?} is neither \"0\" nor \"1\"; \
                     treating it as disabled (set DCA_WARM_PERSIST=1 to persist)"
                );
                false
            }
            Err(_) => false,
        };
        let disk_dir = std::env::var("DCA_WARM_DIR")
            .ok()
            .map(PathBuf::from)
            .or_else(|| persist.then(|| PathBuf::from("results/warm")));
        let reuse = match std::env::var("DCA_WARM") {
            Ok(v) if v == "0" => false,
            Ok(v) if v == "1" => true,
            Ok(v) => {
                eprintln!(
                    "warning: DCA_WARM={v:?} is neither \"0\" nor \"1\"; \
                     treating it as enabled (set DCA_WARM=0 to disable warm reuse)"
                );
                true
            }
            Err(_) => true,
        };
        let lock_ms = match std::env::var("DCA_WARM_LOCK_MS") {
            Ok(v) => match v.parse::<u64>() {
                Ok(ms) => ms,
                Err(_) => {
                    eprintln!(
                        "warning: DCA_WARM_LOCK_MS={v:?} is not an integer; \
                         using the default of {DEFAULT_LOCK_MS} ms"
                    );
                    DEFAULT_LOCK_MS
                }
            },
            Err(_) => DEFAULT_LOCK_MS,
        };
        Self::with_policy(cap, disk_dir, reuse).with_lock_timeout(Duration::from_millis(lock_ms))
    }

    /// A cache with an explicit policy, bypassing the environment
    /// (tests and embedders that must not depend on process-global
    /// state).
    pub fn with_policy(cap: usize, disk_dir: Option<PathBuf>, reuse: bool) -> Self {
        WarmCache {
            slots: Mutex::new((FastHashMap::default(), VecDeque::new())),
            cap: cap.max(1),
            disk_dir,
            reuse,
            lock_timeout: Duration::from_millis(DEFAULT_LOCK_MS),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            lock_reclaims: AtomicU64::new(0),
        }
    }

    /// Override the advisory-lock wait deadline (tests mostly).
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// The process-wide shared instance. Environment knobs are latched
    /// the first time this is called and never re-read.
    pub fn global() -> &'static WarmCache {
        static GLOBAL: OnceLock<WarmCache> = OnceLock::new();
        GLOBAL.get_or_init(WarmCache::new)
    }

    /// Whether warm reuse is enabled for this cache (`DCA_WARM=0` at
    /// construction opts out; anything else opts in).
    pub fn reuse_enabled(&self) -> bool {
        self.reuse
    }

    /// Whether warm reuse is enabled for the process-wide instance.
    /// Latched once at [`WarmCache::global`] construction: flipping
    /// `DCA_WARM` mid-process cannot make one sweep mix cached and
    /// cold runs.
    pub fn enabled() -> bool {
        Self::global().reuse_enabled()
    }

    /// Counters so far.
    pub fn stats(&self) -> WarmCacheStats {
        WarmCacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            lock_reclaims: self.lock_reclaims.load(Ordering::Relaxed),
        }
    }

    /// The warm state for `(cfg, benches)`, built (or disk-loaded) on
    /// first request and shared thereafter.
    pub fn get_or_build(&self, cfg: &SystemConfig, benches: &[Benchmark]) -> Arc<WarmState> {
        let fp = WarmState::fingerprint_for(cfg, benches);
        let slot = {
            let mut guard = self.slots.lock().unwrap();
            let (map, order) = &mut *guard;
            if let Some(slot) = map.get(&fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.clone()
            } else {
                let slot = Arc::new(OnceLock::new());
                map.insert(fp, slot.clone());
                order.push_back(fp);
                // Bound residency; in-flight users keep their Arc alive.
                while map.len() > self.cap {
                    if let Some(old) = order.pop_front() {
                        map.remove(&old);
                    }
                }
                slot
            }
        };
        slot.get_or_init(|| {
            let guard = match self.disk_coordinate(fp) {
                DiskOutcome::Loaded(state) => {
                    self.disk_loads.fetch_add(1, Ordering::Relaxed);
                    return Arc::new(state);
                }
                DiskOutcome::Build(guard) => guard,
            };
            self.builds.fetch_add(1, Ordering::Relaxed);
            let state = System::capture_warm(*cfg, benches);
            self.try_disk_store(&state);
            // Release the advisory lock only after the blob is visible,
            // so a waiter that sees the lock vanish finds the result.
            drop(guard);
            Arc::new(state)
        })
        .clone()
    }

    /// Decide how to satisfy a miss when a disk pool is configured:
    /// load an existing blob, wait out another process's build
    /// (read → verify → retry under the advisory lock), or build
    /// locally — holding the lock when we could get it, lock-free when
    /// the wait deadline passed (the lock is advisory; a crashed
    /// holder must never wedge the sweep).
    fn disk_coordinate(&self, fp: u64) -> DiskOutcome {
        let Some(path) = self.blob_path(fp) else {
            return DiskOutcome::Build(None);
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let lock_path = path.with_extension("lock");
        let deadline = Instant::now() + self.lock_timeout;
        let mut waited = false;
        loop {
            // quiet after the first pass: while polling, a not-yet-
            // complete or not-yet-replaced blob is expected, not news.
            if let Some(state) = self.try_disk_load_impl(fp, waited) {
                return DiskOutcome::Loaded(state);
            }
            match LockGuard::try_acquire(&lock_path) {
                Acquire::Held(guard) => {
                    // We own the build — but re-check the blob once
                    // more: the previous holder may have finished
                    // storing between our read and our acquisition
                    // (read-verify-retry).
                    if let Some(state) = self.try_disk_load_impl(fp, true) {
                        return DiskOutcome::Loaded(state);
                    }
                    return DiskOutcome::Build(Some(guard));
                }
                Acquire::Busy => {
                    // A lock whose recorded owner is dead will never be
                    // released; reclaim it now instead of sleeping out
                    // the deadline. (A waiter could in principle read a
                    // stale pid just as a new live owner re-creates the
                    // file — the lock is advisory, so the worst case is
                    // one duplicated warm-up, never corruption: blobs
                    // land via exclusive-temp + atomic rename.)
                    if lock_owner_is_dead(&lock_path) && std::fs::remove_file(&lock_path).is_ok() {
                        self.lock_reclaims.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "warning: warm lock {} was held by a dead process; reclaimed it",
                            lock_path.display()
                        );
                        continue;
                    }
                }
                // An unusable warm dir must degrade to an immediate
                // cold build, not a full lock-deadline sleep per key.
                Acquire::Unavailable => return DiskOutcome::Build(None),
            }
            if !waited {
                waited = true;
                self.lock_waits.fetch_add(1, Ordering::Relaxed);
            }
            if Instant::now() >= deadline {
                eprintln!(
                    "warning: warm lock {} still held after {:?}; building locally \
                     (the lock is advisory — a live-but-stuck holder cannot block this run)",
                    lock_path.display(),
                    self.lock_timeout
                );
                return DiskOutcome::Build(None);
            }
            WAIT_TICKS.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn blob_path(&self, fp: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{fp:016x}.warm")))
    }

    /// Load and fully validate an on-disk blob. A missing file is a
    /// silent miss; a file that *exists* but fails validation
    /// (truncated, bit-rotted, torn, or carrying the wrong
    /// fingerprint) is a **logged** miss (unless `quiet`, used while
    /// polling another process's in-flight build) — the caller falls
    /// back to a cold warm-up instead of erroring, and the next store
    /// replaces the bad blob.
    fn try_disk_load_impl(&self, fp: u64, quiet: bool) -> Option<WarmState> {
        let path = self.blob_path(fp)?;
        let bytes = std::fs::read(&path).ok()?;
        match WarmState::decode(&bytes) {
            Ok(state) if state.fingerprint() == fp => Some(state),
            Ok(state) => {
                if !quiet {
                    eprintln!(
                        "warning: warm blob {} carries fingerprint {:#018x}, expected {:#018x}; \
                         ignoring it and warming cold",
                        path.display(),
                        state.fingerprint(),
                        fp
                    );
                }
                None
            }
            Err(e) => {
                if !quiet {
                    eprintln!(
                        "warning: warm blob {} is truncated or corrupt ({e}); \
                         ignoring it and warming cold",
                        path.display()
                    );
                }
                None
            }
        }
    }

    /// Best-effort persistence; I/O failure only costs future reuse.
    fn try_disk_store(&self, state: &WarmState) {
        let Some(path) = self.blob_path(state.fingerprint()) else {
            return;
        };
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        // Exclusive staging + atomic rename: the temp name is unique
        // per (process, store) so two workers — threads or whole
        // processes — racing on the same fingerprint each write their
        // own complete file, and whichever renames last wins with a
        // whole blob. A reader can never observe a partial write.
        static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Whether the write failed (partial file) or the rename did,
        // never leave the uniquely named staging file behind.
        if std::fs::write(&tmp, state.encode()).is_err() || std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// How a disk-backed miss gets satisfied.
enum DiskOutcome {
    /// A valid blob was (eventually) read.
    Loaded(WarmState),
    /// Build locally; the guard (if any) is the held advisory lock,
    /// released by the caller after the blob is stored.
    Build(Option<LockGuard>),
}

/// Holder of one `<fp>.lock` advisory file; best-effort removal on
/// drop. Creation uses `create_new` (O_EXCL), so exactly one process
/// can hold a given lock at a time.
struct LockGuard {
    path: PathBuf,
}

/// Outcome of one lock-acquisition attempt.
enum Acquire {
    /// We hold the lock.
    Held(LockGuard),
    /// Someone else holds it (`EEXIST`) — waiting is meaningful.
    Busy,
    /// The lock file cannot be created at all (missing/read-only dir,
    /// …) — waiting would spin until the deadline for nothing, so the
    /// caller should build immediately.
    Unavailable,
}

impl LockGuard {
    fn try_acquire(path: &std::path::Path) -> Acquire {
        use std::io::Write as _;
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(mut f) => {
                // Waiters parse this pid to reclaim the lock the moment
                // its owner dies (see `lock_owner_is_dead`).
                let _ = writeln!(f, "{}", std::process::id());
                Acquire::Held(LockGuard {
                    path: path.to_path_buf(),
                })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Acquire::Busy,
            Err(_) => Acquire::Unavailable,
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether the pid recorded in a lock file belongs to a process that no
/// longer exists. Errs on the side of *alive*: an unreadable lock, a
/// pid that does not parse (older lock formats, torn writes), or a
/// platform without `/proc` all return `false`, leaving the
/// `DCA_WARM_LOCK_MS` deadline as the backstop.
fn lock_owner_is_dead(lock_path: &std::path::Path) -> bool {
    let Ok(text) = std::fs::read_to_string(lock_path) else {
        return false;
    };
    let Ok(pid) = text.trim().parse::<u32>() else {
        return false;
    };
    if cfg!(target_os = "linux") {
        !std::path::Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca::Design;
    use dca_dram_cache::OrgKind;

    fn tiny_cfg(seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(5_000, 10_000);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn lock_owner_liveness_is_judged_by_the_local_proc_table() {
        let dir = std::env::temp_dir().join(format!("dca_warm_lock_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let lock = dir.join("fp.lock");
        // Our own pid is alive on this host.
        std::fs::write(&lock, format!("{}\n", std::process::id())).unwrap();
        assert!(!lock_owner_is_dead(&lock));
        // A pid beyond any realistic pid_max is dead — but only where a
        // /proc table exists to say so.
        std::fs::write(&lock, "999999999\n").unwrap();
        assert_eq!(lock_owner_is_dead(&lock), cfg!(target_os = "linux"));
        // Unparseable content and a missing file both err alive,
        // leaving the deadline as the backstop.
        std::fs::write(&lock, "not-a-pid\n").unwrap();
        assert!(!lock_owner_is_dead(&lock));
        std::fs::remove_file(&lock).unwrap();
        assert!(!lock_owner_is_dead(&lock));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_key_builds_once_and_shares() {
        let cache = WarmCache::new();
        let cfg = tiny_cfg(1);
        let benches = [Benchmark::Gcc];
        let a = cache.get_or_build(&cfg, &benches);
        let b = cache.get_or_build(&cfg, &benches);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn design_variants_share_one_warmup() {
        let cache = WarmCache::new();
        let benches = [Benchmark::Gcc];
        for design in Design::ALL {
            let mut cfg = tiny_cfg(2);
            cfg.design = design;
            cache.get_or_build(&cfg, &benches);
        }
        assert_eq!(
            cache.stats().builds,
            1,
            "one warm-up shared by all {} designs",
            Design::ALL.len()
        );
    }

    #[test]
    fn different_seeds_build_separately() {
        let cache = WarmCache::new();
        let benches = [Benchmark::Gcc];
        cache.get_or_build(&tiny_cfg(3), &benches);
        cache.get_or_build(&tiny_cfg(4), &benches);
        assert_eq!(cache.stats().builds, 2);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dca-warm-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn disk_persistence_round_trips_across_cache_instances() {
        let dir = scratch_dir("roundtrip");
        let cfg = tiny_cfg(20);
        let benches = [Benchmark::Gcc];
        let writer = WarmCache::with_policy(4, Some(dir.clone()), true);
        writer.get_or_build(&cfg, &benches);
        assert_eq!(writer.stats().builds, 1);
        // A fresh cache (think: next process) loads from disk, no build.
        let reader = WarmCache::with_policy(4, Some(dir.clone()), true);
        reader.get_or_build(&cfg, &benches);
        let s = reader.stats();
        assert_eq!((s.builds, s.disk_loads), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_blobs_fall_back_to_cold_warmup() {
        let dir = scratch_dir("corrupt");
        let cfg = tiny_cfg(21);
        let benches = [Benchmark::Gcc];
        let fp = dca::WarmState::fingerprint_for(&cfg, &benches);
        let blob_path = dir.join(format!("{fp:016x}.warm"));

        // Pure garbage where a blob should be.
        std::fs::write(&blob_path, b"not a warm state at all").expect("write garbage");
        let cache = WarmCache::with_policy(4, Some(dir.clone()), true);
        let state = cache.get_or_build(&cfg, &benches);
        let s = cache.stats();
        assert_eq!(
            (s.builds, s.disk_loads),
            (1, 0),
            "garbage blob must rebuild"
        );

        // The rebuild replaced the garbage with a valid blob.
        let healed = WarmCache::with_policy(4, Some(dir.clone()), true);
        assert!(Arc::ptr_eq(
            &healed.get_or_build(&cfg, &benches),
            &healed.get_or_build(&cfg, &benches)
        ));
        assert_eq!(healed.stats().disk_loads, 1, "store healed the blob");

        // A torn write: truncate the now-valid blob mid-payload.
        let bytes = std::fs::read(&blob_path).expect("read blob");
        std::fs::write(&blob_path, &bytes[..bytes.len() / 2]).expect("truncate");
        let torn = WarmCache::with_policy(4, Some(dir.clone()), true);
        let rebuilt = torn.get_or_build(&cfg, &benches);
        assert_eq!(torn.stats().builds, 1, "truncated blob must rebuild");
        assert_eq!(rebuilt.fingerprint(), state.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_v3_blob_downgrades_to_cold_warmup_without_poisoning() {
        // A warm pool written before the replacement-policy layer
        // (format v3) must not survive the v4 bump: the loader warns,
        // warms cold, and the store replaces the stale blob — the pool
        // heals instead of erroring or serving pre-policy tag state.
        let dir = scratch_dir("v3-downgrade");
        let cfg = tiny_cfg(22);
        let benches = [Benchmark::Gcc];
        let fp = dca::WarmState::fingerprint_for(&cfg, &benches);
        let blob_path = dir.join(format!("{fp:016x}.warm"));

        // Forge a v3-stamped blob with a valid digest — the exact
        // shape a pre-bump harness left behind, so only the version
        // check can reject it.
        let fresh = System::capture_warm(cfg, &benches).encode();
        let mut stale = fresh[..fresh.len() - 8].to_vec();
        stale[8..12].copy_from_slice(&3u32.to_le_bytes()); // version field
        let d = dca_sim_core::digest64(&stale);
        stale.extend_from_slice(&d.to_le_bytes());
        std::fs::write(&blob_path, &stale).expect("plant stale v3 blob");

        let cache = WarmCache::with_policy(4, Some(dir.clone()), true);
        let state = cache.get_or_build(&cfg, &benches);
        assert_eq!(state.fingerprint(), fp);
        let s = cache.stats();
        assert_eq!(
            (s.builds, s.disk_loads),
            (1, 0),
            "a stale v3 blob must fall back to a cold warm-up"
        );

        // The rebuild replaced the stale blob with a current-format
        // one, byte-identical to a fresh cold capture.
        let healed = std::fs::read(&blob_path).expect("blob present after heal");
        assert_eq!(healed, fresh, "store must heal the pool with a v4 blob");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_is_latched_at_construction() {
        // `with_policy` freezes the reuse decision; the instance cannot
        // be re-configured afterwards (the env equivalents are read
        // exactly once, in `new`).
        let on = WarmCache::with_policy(4, None, true);
        let off = WarmCache::with_policy(4, None, false);
        assert!(on.reuse_enabled());
        assert!(!off.reuse_enabled());
    }

    #[test]
    fn concurrent_caches_sharing_one_disk_dir_build_once() {
        // Two *independent* cache instances (stand-ins for two worker
        // processes) race on the same fingerprint in one DCA_WARM_DIR:
        // the advisory lock must let exactly one build while the other
        // waits and then loads the stored blob — no corruption, no
        // double warm-up.
        let dir = scratch_dir("advisory");
        let cfg = tiny_cfg(30);
        let benches = [Benchmark::Gcc];
        let a = WarmCache::with_policy(4, Some(dir.clone()), true);
        let b = WarmCache::with_policy(4, Some(dir.clone()), true);
        let (fa, fb) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| a.get_or_build(&cfg, &benches).fingerprint());
            let hb = scope.spawn(|| b.get_or_build(&cfg, &benches).fingerprint());
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(fa, fb, "both instances must resolve the same state");
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(
            sa.builds + sb.builds,
            1,
            "exactly one build across the two instances (a={sa:?}, b={sb:?})"
        );
        assert_eq!(
            sa.disk_loads + sb.disk_loads,
            1,
            "the non-builder must load the builder's blob (a={sa:?}, b={sb:?})"
        );
        // The winning blob must be whole and reloadable.
        let fresh = WarmCache::with_policy(4, Some(dir.clone()), true);
        fresh.get_or_build(&cfg, &benches);
        assert_eq!(fresh.stats().disk_loads, 1, "blob survived the race intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_stale_lock_times_out_and_builds() {
        // A lock whose content is not a pid (older format, torn write)
        // cannot be liveness-checked, so it must fall back to the
        // deadline: delay, never block.
        let dir = scratch_dir("stale-lock");
        let cfg = tiny_cfg(31);
        let benches = [Benchmark::Gcc];
        let fp = dca::WarmState::fingerprint_for(&cfg, &benches);
        std::fs::write(dir.join(format!("{fp:016x}.lock")), b"not-a-pid\n")
            .expect("plant stale lock");
        let cache = WarmCache::with_policy(4, Some(dir.clone()), true)
            .with_lock_timeout(Duration::from_millis(200));
        let t0 = Instant::now();
        let state = cache.get_or_build(&cfg, &benches);
        assert_eq!(state.fingerprint(), fp);
        let s = cache.stats();
        assert_eq!(
            (s.builds, s.lock_waits, s.lock_reclaims),
            (1, 1, 0),
            "waited, then built"
        );
        assert!(
            t0.elapsed() >= Duration::from_millis(200),
            "must actually have waited out the deadline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn stale_lock_from_dead_process_is_reclaimed_immediately() {
        // A worker killed mid-warm-up leaves its lock behind; because
        // the lock records the owner pid, waiters must reclaim it as
        // soon as they see the owner gone — NOT sleep out the (here:
        // prohibitive) DCA_WARM_LOCK_MS deadline.
        let dir = scratch_dir("dead-owner");
        let cfg = tiny_cfg(33);
        let benches = [Benchmark::Gcc];
        let fp = dca::WarmState::fingerprint_for(&cfg, &benches);

        // A real, genuinely dead pid: spawn a subprocess (this very
        // test binary, told to run a test that does not exist, so it
        // exits immediately) and reap it.
        let exe = std::env::current_exe().expect("test binary path");
        let child = std::process::Command::new(exe)
            .args(["--exact", "no_such_test_anywhere", "--test-threads", "1"])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn short-lived subprocess");
        let dead_pid = child.id();
        child.wait_with_output().expect("reap subprocess");
        assert!(
            !std::path::Path::new(&format!("/proc/{dead_pid}")).exists(),
            "subprocess must be fully reaped"
        );

        std::fs::write(dir.join(format!("{fp:016x}.lock")), format!("{dead_pid}\n"))
            .expect("plant dead-owner lock");
        let cache = WarmCache::with_policy(4, Some(dir.clone()), true)
            .with_lock_timeout(Duration::from_secs(120));
        let t0 = Instant::now();
        let state = cache.get_or_build(&cfg, &benches);
        assert_eq!(state.fingerprint(), fp);
        let s = cache.stats();
        assert_eq!(s.builds, 1, "reclaimed, then built");
        assert_eq!(s.lock_reclaims, 1, "the dead owner's lock was reclaimed");
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "reclaim must not wait toward the 120 s deadline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_disk_dir_builds_immediately_without_lock_wait() {
        // A warm dir that cannot exist (a path *under a plain file*)
        // must degrade to an immediate cold build — not spin out the
        // whole lock deadline for every fingerprint.
        let dir = scratch_dir("unusable");
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"file, not dir").expect("blocker file");
        let cache = WarmCache::with_policy(4, Some(blocker.join("warm")), true)
            .with_lock_timeout(Duration::from_secs(60));
        let t0 = Instant::now();
        cache.get_or_build(&tiny_cfg(32), &[Benchmark::Gcc]);
        let s = cache.stats();
        assert_eq!((s.builds, s.lock_waits), (1, 0), "built cold, no wait");
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "must not sleep toward the lock deadline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_key_requests_build_once() {
        let cache = WarmCache::new();
        let cfg = tiny_cfg(5);
        let benches = [Benchmark::Gcc];
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_build(&cfg, &benches);
                });
            }
        });
        assert_eq!(cache.stats().builds, 1);
    }
}
