//! Process-wide cache of [`WarmState`] checkpoints, so every design and
//! remap variant of a `(mix, org, warmup, seed)` tuple in a sweep pays
//! for exactly one functional warm-up.
//!
//! Lookup is keyed by [`WarmState::fingerprint_for`]; concurrent
//! requests for the *same* key rendezvous on a per-key [`OnceLock`]
//! (one thread warms, the rest block on that key only), while requests
//! for different keys warm in parallel — exactly what
//! [`run_parallel`](crate::run_parallel) sweeps need.
//!
//! The cache is bounded (insertion-order eviction; a warm state for the
//! default organisation is tens of MB) and optionally persisted:
//!
//! * `DCA_WARM=0` — disable warm reuse entirely; every run warms cold.
//! * `DCA_WARM_CAP=n` — keep at most `n` states in memory (default 48,
//!   sized to one organisation's full paper-scale pass; see
//!   `DEFAULT_CAP`).
//! * `DCA_WARM_PERSIST=1` — also write/read blobs under `results/warm/`.
//! * `DCA_WARM_DIR=path` — persist under `path` instead.
//!
//! On-disk blobs are validated by magic, format version *and*
//! fingerprint before use (see `dca::warm` for the format and the
//! invalidation rules); anything stale or corrupt is ignored and the
//! state is rebuilt — reuse can only ever be a cache hit of the exact
//! bytes a cold warm-up would produce.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dca::{System, SystemConfig, WarmState};
use dca_cpu::Benchmark;
use dca_sim_core::FastHashMap;

/// Monotonic counters describing what the cache did so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmCacheStats {
    /// Warm-ups actually executed.
    pub builds: u64,
    /// Lookups served from an already-resident state.
    pub hits: u64,
    /// States loaded from a valid on-disk blob.
    pub disk_loads: u64,
}

/// One per-key rendezvous point: same-key builders serialise on the
/// `OnceLock`, everyone shares the resulting `Arc<WarmState>`.
type WarmSlot = Arc<OnceLock<Arc<WarmState>>>;

/// A bounded, fingerprint-keyed store of warm states.
pub struct WarmCache {
    /// Resident slots by fingerprint, plus insertion order for eviction.
    slots: Mutex<(FastHashMap<u64, WarmSlot>, VecDeque<u64>)>,
    cap: usize,
    disk_dir: Option<PathBuf>,
    builds: AtomicU64,
    hits: AtomicU64,
    disk_loads: AtomicU64,
}

impl Default for WarmCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Default residency cap. Sized for the harness's worst working set:
/// figure sweeps are *design-major* (every design re-walks all mixes in
/// the same order), so the cap must cover one organisation's full
/// paper-scale pass — 30 mixes + 11 alone-IPC single-bench states = 41
/// keys — or a cyclic scan against a smaller FIFO yields zero reuse on
/// the second and later designs. 48 leaves headroom; at ~30 MB per
/// state that bounds residency near 1.4 GB at `DCA_FULL=1` (tune with
/// `DCA_WARM_CAP`; the default 8-mix scale stays under ~600 MB).
const DEFAULT_CAP: usize = 48;

impl WarmCache {
    /// A cache configured from the environment (see module docs).
    pub fn new() -> Self {
        let cap = std::env::var("DCA_WARM_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(DEFAULT_CAP);
        let disk_dir = std::env::var("DCA_WARM_DIR")
            .ok()
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var("DCA_WARM_PERSIST")
                    .map(|v| v == "1")
                    .unwrap_or(false)
                    .then(|| PathBuf::from("results/warm"))
            });
        WarmCache {
            slots: Mutex::new((FastHashMap::default(), VecDeque::new())),
            cap,
            disk_dir,
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
        }
    }

    /// The process-wide shared instance.
    pub fn global() -> &'static WarmCache {
        static GLOBAL: OnceLock<WarmCache> = OnceLock::new();
        GLOBAL.get_or_init(WarmCache::new)
    }

    /// Whether warm reuse is enabled for this process (`DCA_WARM=0`
    /// opts out; anything else opts in).
    pub fn enabled() -> bool {
        std::env::var("DCA_WARM").map(|v| v != "0").unwrap_or(true)
    }

    /// Counters so far.
    pub fn stats(&self) -> WarmCacheStats {
        WarmCacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
        }
    }

    /// The warm state for `(cfg, benches)`, built (or disk-loaded) on
    /// first request and shared thereafter.
    pub fn get_or_build(&self, cfg: &SystemConfig, benches: &[Benchmark]) -> Arc<WarmState> {
        let fp = WarmState::fingerprint_for(cfg, benches);
        let slot = {
            let mut guard = self.slots.lock().unwrap();
            let (map, order) = &mut *guard;
            if let Some(slot) = map.get(&fp) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.clone()
            } else {
                let slot = Arc::new(OnceLock::new());
                map.insert(fp, slot.clone());
                order.push_back(fp);
                // Bound residency; in-flight users keep their Arc alive.
                while map.len() > self.cap {
                    if let Some(old) = order.pop_front() {
                        map.remove(&old);
                    }
                }
                slot
            }
        };
        slot.get_or_init(|| {
            if let Some(state) = self.try_disk_load(fp) {
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                return Arc::new(state);
            }
            self.builds.fetch_add(1, Ordering::Relaxed);
            let state = System::capture_warm(*cfg, benches);
            self.try_disk_store(&state);
            Arc::new(state)
        })
        .clone()
    }

    fn blob_path(&self, fp: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{fp:016x}.warm")))
    }

    /// Load and fully validate an on-disk blob; any mismatch (version,
    /// fingerprint, corruption) is treated as a miss.
    fn try_disk_load(&self, fp: u64) -> Option<WarmState> {
        let bytes = std::fs::read(self.blob_path(fp)?).ok()?;
        let state = WarmState::decode(&bytes).ok()?;
        (state.fingerprint() == fp).then_some(state)
    }

    /// Best-effort persistence; I/O failure only costs future reuse.
    fn try_disk_store(&self, state: &WarmState) {
        let Some(path) = self.blob_path(state.fingerprint()) else {
            return;
        };
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                return;
            }
        }
        // Write-then-rename so a concurrent reader never sees a torn blob.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, state.encode()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca::Design;
    use dca_dram_cache::OrgKind;

    fn tiny_cfg(seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(5_000, 10_000);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn same_key_builds_once_and_shares() {
        let cache = WarmCache::new();
        let cfg = tiny_cfg(1);
        let benches = [Benchmark::Gcc];
        let a = cache.get_or_build(&cfg, &benches);
        let b = cache.get_or_build(&cfg, &benches);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn design_variants_share_one_warmup() {
        let cache = WarmCache::new();
        let benches = [Benchmark::Gcc];
        for design in Design::ALL {
            let mut cfg = tiny_cfg(2);
            cfg.design = design;
            cache.get_or_build(&cfg, &benches);
        }
        assert_eq!(cache.stats().builds, 1, "one warm-up for three designs");
    }

    #[test]
    fn different_seeds_build_separately() {
        let cache = WarmCache::new();
        let benches = [Benchmark::Gcc];
        cache.get_or_build(&tiny_cfg(3), &benches);
        cache.get_or_build(&tiny_cfg(4), &benches);
        assert_eq!(cache.stats().builds, 2);
    }

    #[test]
    fn concurrent_same_key_requests_build_once() {
        let cache = WarmCache::new();
        let cfg = tiny_cfg(5);
        let benches = [Benchmark::Gcc];
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_build(&cfg, &benches);
                });
            }
        });
        assert_eq!(cache.stats().builds, 1);
    }
}
