//! Fig 12 & 13 — L2 miss latency improvement of each design over CD, for
//! both organisations, with and without remapping.

use criterion::{criterion_group, criterion_main, Criterion};

use dca::Design;
use dca_bench::{evaluate, AloneIpc, RunSpec};
use dca_dram_cache::OrgKind;

const MIXES: [u32; 2] = [1, 22];

fn fig12_13(c: &mut Criterion) {
    let alone = AloneIpc::new();
    for (fig, org) in [
        ("fig12", OrgKind::paper_set_assoc()),
        ("fig13", OrgKind::DirectMapped),
    ] {
        let mk = |d: Design, remap: bool| {
            let mut s = RunSpec::new(d, org);
            s.insts = 60_000;
            s.warmup = 400_000;
            s.remap = remap;
            s
        };
        let base = evaluate(mk(Design::Cd, false), &MIXES, &alone, "CD");
        let mut row = format!(
            "{fig} ({})  base={:.1}ns:",
            org.label(),
            base.mean_latency()
        );
        for d in Design::ALL {
            let s = evaluate(mk(d, false), &MIXES, &alone, d.label());
            row += &format!(
                "  {}={:.3}",
                d.label(),
                base.mean_latency() / s.mean_latency()
            );
        }
        for d in Design::ALL {
            let s = evaluate(mk(d, true), &MIXES, &alone, d.label());
            row += &format!(
                "  XOR+{}={:.3}",
                d.label(),
                base.mean_latency() / s.mean_latency()
            );
        }
        println!("{row}");
    }

    // Criterion: latency accounting overhead via a short DCA run.
    let mut g = c.benchmark_group("fig12_13/sim");
    g.sample_size(10);
    g.bench_function("dca_sa_short", |b| {
        b.iter(|| {
            let mut spec = RunSpec::new(Design::Dca, OrgKind::paper_set_assoc());
            spec.insts = 20_000;
            spec.warmup = 100_000;
            std::hint::black_box(spec.run_mix(1).l2_miss_latency.mean_ns())
        })
    });
    g.finish();
}

criterion_group!(benches, fig12_13);
criterion_main!(benches);
