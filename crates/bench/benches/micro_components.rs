//! Micro-benchmarks of the simulator's hot components: the event queue,
//! the BLISS arbiter, the bank state machine, the cache geometry and the
//! translation FSM. These guard simulation throughput (the full figure
//! harness runs hundreds of simulations).

use criterion::{criterion_group, criterion_main, Criterion};

use dca_dram::MappingScheme;
use dca_dram_cache::{CacheGeometry, CacheReqKind, CacheRequest, OrgKind, RequestFsm, TagArray};
use dca_sched::{AccessQueue, Bliss, QueueEntry, ReadClass};
use dca_sim_core::{BaselineEventQueue, EventQueue, SimTime, Slab};

/// Reschedule offset (ps) for the three arrival distributions the
/// adaptive queue is benchmarked against. `0` = uniform (~1 event per
/// 4 default slots, the shape `SLOT_SHIFT` was tuned for), `1` =
/// clustered (sub-slot bursts with occasional long jumps — sorted
/// inserts degrade at the default shift), anything else = bursty
/// (phases alternate between the two every 4096 events — no fixed
/// shift suits both, the regime the EWMA density tracker exists for).
fn dist_offset(dist: usize, v: u64) -> u64 {
    let sparse = 3 * 1024 + (v * 467) % 2048;
    let dense = (v * 31) % 16;
    match dist {
        0 => sparse,
        1 => {
            if v.is_multiple_of(512) {
                1 << 22
            } else {
                dense
            }
        }
        _ => {
            if (v >> 12) & 1 == 0 {
                sparse
            } else {
                dense
            }
        }
    }
}

fn micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime(i * 37 % 911), i as u32);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v as u64;
            }
            std::hint::black_box(sum)
        })
    });

    // The engine-relevant event pattern: a rolling window of 64 pending
    // events marching forward through time (the simulator never drains
    // its queue until the end). The 64 ns reschedule span reproduces the
    // measured end-to-end density (~1 event per calendar slot). One
    // persistent queue per engine — steady state, no construction in the
    // timed region — so the calendar queue's advantage is measurable in
    // isolation.
    {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..64u64 {
            q.push(SimTime(i * 131 % 4096), i);
        }
        g.bench_function("event_rolling_window_calendar", |b| {
            b.iter(|| {
                let (t, v) = q.pop().expect("window stays populated");
                // Reschedule 0–64 ns ahead, deterministically scattered.
                q.push(SimTime(t.ps() + 97 + (v * 467) % 64_000), v + 1);
                std::hint::black_box(v)
            })
        });
    }
    {
        let mut q: BaselineEventQueue<u64> = BaselineEventQueue::new();
        for i in 0..64u64 {
            q.push(SimTime(i * 131 % 4096), i);
        }
        g.bench_function("event_rolling_window_heap", |b| {
            b.iter(|| {
                let (t, v) = q.pop().expect("window stays populated");
                q.push(SimTime(t.ps() + 97 + (v * 467) % 64_000), v + 1);
                std::hint::black_box(v)
            })
        });
    }

    // The pathological-clustering regime: a rolling window of 256 events
    // all landing within one default-width calendar slot (reschedule
    // span 64 ps « 1024 ps slot). Every push into the shared bucket that
    // is out of (time, seq) order pays a sorted insert — the calendar
    // queue's worst case, and the regime a configurable `SLOT_SHIFT`
    // (SystemConfig::event_slot_shift) exists for: at shift 4 the same
    // events spread over four 16 ps slots. The heap engine is the
    // clustering-insensitive reference.
    {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..256u64 {
            q.push(SimTime(i % 64), i);
        }
        g.bench_function("event_clustered_calendar_shift10", |b| {
            b.iter(|| {
                let (t, v) = q.pop().expect("window stays populated");
                q.push(SimTime(t.ps() + (v * 31) % 64), v + 1);
                std::hint::black_box(v)
            })
        });
    }
    {
        let mut q: EventQueue<u64> = EventQueue::with_slot_shift(4);
        for i in 0..256u64 {
            q.push(SimTime(i % 64), i);
        }
        g.bench_function("event_clustered_calendar_shift4", |b| {
            b.iter(|| {
                let (t, v) = q.pop().expect("window stays populated");
                q.push(SimTime(t.ps() + (v * 31) % 64), v + 1);
                std::hint::black_box(v)
            })
        });
    }
    {
        let mut q: BaselineEventQueue<u64> = BaselineEventQueue::new();
        for i in 0..256u64 {
            q.push(SimTime(i % 64), i);
        }
        g.bench_function("event_clustered_heap", |b| {
            b.iter(|| {
                let (t, v) = q.pop().expect("window stays populated");
                q.push(SimTime(t.ps() + (v * 31) % 64), v + 1);
                std::hint::black_box(v)
            })
        });
    }

    // The self-tuning queue across arrival distributions: fixed default
    // shift vs adaptive vs the heap oracle, rolling window of 256. On
    // `uniform` the adaptive queue should match fixed (its EWMA settles
    // inside the hysteresis band and it never rebuilds); on `clustered`
    // and `bursty` it narrows the slots and closes most of the gap to
    // wherever a hand-pinned shift would land — without anyone picking
    // that shift per workload. `perf_smoke` runs the same three
    // distributions at 200 k events and records them in
    // `BENCH_engine.json` under `engine_adaptive.micro`.
    macro_rules! dist_bench {
        ($name:expr, $qinit:expr, $dist:expr) => {{
            let mut q = $qinit;
            for i in 0..256u64 {
                q.push(SimTime(i * 131 % 4096), i);
            }
            g.bench_function($name, |b| {
                b.iter(|| {
                    let (t, v) = q.pop().expect("window stays populated");
                    q.push(SimTime(t.ps() + dist_offset($dist, v)), v + 1);
                    std::hint::black_box(v)
                })
            });
        }};
    }
    dist_bench!("event_dist_uniform_fixed10", EventQueue::<u64>::new(), 0);
    dist_bench!(
        "event_dist_uniform_adaptive",
        EventQueue::<u64>::adaptive(),
        0
    );
    dist_bench!(
        "event_dist_uniform_heap",
        BaselineEventQueue::<u64>::new(),
        0
    );
    dist_bench!("event_dist_clustered_fixed10", EventQueue::<u64>::new(), 1);
    dist_bench!(
        "event_dist_clustered_adaptive",
        EventQueue::<u64>::adaptive(),
        1
    );
    dist_bench!(
        "event_dist_clustered_heap",
        BaselineEventQueue::<u64>::new(),
        1
    );
    dist_bench!("event_dist_bursty_fixed10", EventQueue::<u64>::new(), 2);
    dist_bench!(
        "event_dist_bursty_adaptive",
        EventQueue::<u64>::adaptive(),
        2
    );
    dist_bench!(
        "event_dist_bursty_heap",
        BaselineEventQueue::<u64>::new(),
        2
    );

    // Request-state bookkeeping: slab (packed generational keys) vs the
    // default-hashed HashMap it replaced. Mirrors the system's pattern —
    // insert, a few lookups, remove — over a working set of in-flight
    // requests.
    g.bench_function("slab_churn_64_live", |b| {
        b.iter(|| {
            let mut slab: Slab<[u64; 4]> = Slab::with_capacity(64);
            let mut live = [0u64; 64];
            for (i, slot) in live.iter_mut().enumerate() {
                *slot = slab.insert([i as u64; 4]).raw();
            }
            let mut acc = 0u64;
            for round in 0..1_000u64 {
                let i = (round * 17 % 64) as usize;
                acc = acc.wrapping_add(slab[live[i].into()][0]);
                slab.remove(live[i].into());
                live[i] = slab.insert([round; 4]).raw();
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("hashmap_churn_64_live", |b| {
        b.iter(|| {
            let mut map: std::collections::HashMap<u64, [u64; 4]> =
                std::collections::HashMap::with_capacity(64);
            let mut next_id = 0u64;
            let mut live = [0u64; 64];
            for slot in live.iter_mut() {
                *slot = next_id;
                map.insert(next_id, [next_id; 4]);
                next_id += 1;
            }
            let mut acc = 0u64;
            for round in 0..1_000u64 {
                let i = (round * 17 % 64) as usize;
                acc = acc.wrapping_add(map[&live[i]][0]);
                map.remove(&live[i]);
                live[i] = next_id;
                map.insert(next_id, [round; 4]);
                next_id += 1;
            }
            std::hint::black_box(acc)
        })
    });

    // Slotted command queue: the arbitrate-and-remove cycle that used to
    // pay O(n) Vec::remove per issued access.
    g.bench_function("access_queue_pick_remove_64", |b| {
        let bliss = Bliss::new();
        b.iter(|| {
            let mut q = AccessQueue::new(64);
            for i in 0..64u64 {
                q.push(QueueEntry {
                    id: i,
                    access: dca_dram::DramAccess::read((i % 16) as u32, (i % 7) as u32),
                    app: (i % 4) as u8,
                    class: ReadClass::Priority,
                    enqueued_at: SimTime(i),
                })
                .unwrap();
            }
            let mut drained = 0u64;
            while !q.is_empty() {
                let pos = bliss
                    .pick(q.iter(), |e| {
                        if e.access.row == 3 {
                            dca_dram::RowOutcome::Hit
                        } else {
                            dca_dram::RowOutcome::Conflict
                        }
                    })
                    .expect("non-empty");
                drained = drained.wrapping_add(q.remove(pos).id);
            }
            std::hint::black_box(drained)
        })
    });

    g.bench_function("bliss_pick_64", |b| {
        let bliss = Bliss::new();
        let mut q = AccessQueue::new(64);
        for i in 0..64u64 {
            q.push(QueueEntry {
                id: i,
                access: dca_dram::DramAccess::read((i % 16) as u32, (i % 7) as u32),
                app: (i % 4) as u8,
                class: ReadClass::Priority,
                enqueued_at: SimTime(i),
            })
            .unwrap();
        }
        b.iter(|| {
            std::hint::black_box(bliss.pick(q.iter(), |e| {
                if e.access.row == 3 {
                    dca_dram::RowOutcome::Hit
                } else {
                    dca_dram::RowOutcome::Conflict
                }
            }))
        })
    });

    g.bench_function("geometry_place_sa", |b| {
        let geom = CacheGeometry::paper(OrgKind::paper_set_assoc(), MappingScheme::XorRemap);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            std::hint::black_box(geom.place(x % (1 << 32)))
        })
    });

    g.bench_function("fsm_read_hit_sa", |b| {
        let geom = CacheGeometry::paper(OrgKind::paper_set_assoc(), MappingScheme::Direct);
        let mut tags = TagArray::new(geom.num_sets(), 15);
        let place = geom.place(1234);
        tags.insert(place.set, place.tag, false);
        b.iter(|| {
            let (mut fsm, first) = RequestFsm::start(
                CacheRequest {
                    id: 1,
                    kind: CacheReqKind::Read,
                    block: 1234,
                    app: 0,
                    pc: 0x40,
                },
                &geom,
            );
            let mut pending: Vec<_> = first;
            let mut steps = 0;
            while let Some(spec) = pending.pop() {
                let out = fsm.on_access_done(spec.role, &mut tags, &geom);
                pending.extend(out.enqueue);
                steps += 1;
            }
            std::hint::black_box(steps)
        })
    });

    g.bench_function("tag_array_lookup_insert", |b| {
        let mut tags = TagArray::new(1 << 18, 15);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(7919);
            let set = x % (1 << 18);
            let tag = (x >> 18) as u32 & 0xFFFF;
            match tags.lookup(set, tag) {
                Some(w) => tags.touch(set, w),
                None => {
                    tags.insert(set, tag, x.is_multiple_of(3));
                }
            }
            std::hint::black_box(())
        })
    });

    g.bench_function("channel_issue_mixed", |b| {
        use dca_dram::{DramAccess, DramChannel, Organization, TimingParams};
        b.iter(|| {
            let mut ch = DramChannel::new(TimingParams::paper_stacked(), &Organization::paper());
            let mut now = SimTime::ZERO;
            for i in 0..200u32 {
                let acc = if i % 4 == 0 {
                    DramAccess::write(i % 16, i % 9)
                } else {
                    DramAccess::read(i % 16, i % 5)
                };
                now = ch.issue(acc, now).burst_end;
            }
            std::hint::black_box(now)
        })
    });

    g.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
