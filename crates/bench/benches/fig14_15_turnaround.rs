//! Fig 14 & 15 — read/write accesses per bus turnaround. CD batches best,
//! ROD turns the bus around roughly 3x as often, DCA sits near CD.

use criterion::{criterion_group, criterion_main, Criterion};

use dca::Design;
use dca_bench::{evaluate, AloneIpc, RunSpec};
use dca_dram::{AccessKind, DataBus, TimingParams};
use dca_dram_cache::OrgKind;
use dca_sim_core::SimTime;

const MIXES: [u32; 2] = [1, 6];

fn fig14_15(c: &mut Criterion) {
    let alone = AloneIpc::new();
    for (fig, org) in [
        ("fig14", OrgKind::paper_set_assoc()),
        ("fig15", OrgKind::DirectMapped),
    ] {
        let mut row = format!("{fig} ({}):", org.label());
        for d in Design::ALL {
            let mut spec = RunSpec::new(d, org);
            spec.insts = 60_000;
            spec.warmup = 400_000;
            let s = evaluate(spec, &MIXES, &alone, d.label());
            row += &format!("  {}={:.2}", d.label(), s.mean_apt());
        }
        println!("{row}");
    }

    // Criterion: raw bus model cost.
    let mut g = c.benchmark_group("fig14_15/bus");
    g.bench_function("reserve_alternating", |b| {
        let p = TimingParams::paper_stacked();
        b.iter(|| {
            let mut bus = DataBus::new();
            let mut now = SimTime::ZERO;
            for i in 0..1000u64 {
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let start = bus.earliest_start(kind, &p).max(now);
                let end = start + p.t_burst;
                bus.reserve(kind, start, end, &p);
                now = end;
            }
            std::hint::black_box(bus.accesses_per_turnaround())
        })
    });
    g.finish();
}

criterion_group!(benches, fig14_15);
criterion_main!(benches);
