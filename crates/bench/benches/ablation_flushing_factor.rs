//! §IV-C ablation — DCA's flushing factor (FF). The paper reports the
//! design is insensitive below FF-5 (FF-1..FF-4 within ~1 %); this bench
//! regenerates that sweep plus the Algorithm-1 occupancy-band ablation.

use criterion::{criterion_group, criterion_main, Criterion};

use dca::Design;
use dca_bench::{evaluate, AloneIpc, RunSpec};
use dca_dram_cache::OrgKind;

const MIXES: [u32; 2] = [1, 13];

fn ablation(c: &mut Criterion) {
    let org = OrgKind::paper_set_assoc();
    let alone = AloneIpc::new();
    let mk = |ff: u8| {
        let mut s = RunSpec::new(Design::Dca, org);
        s.insts = 60_000;
        s.warmup = 400_000;
        s.flushing_factor = ff;
        s
    };
    let mut results = Vec::new();
    for ff in 1..=5u8 {
        let s = evaluate(mk(ff), &MIXES, &alone, &format!("FF-{ff}"));
        results.push((ff, s.ws_geomean()));
    }
    let base = results.iter().find(|(ff, _)| *ff == 4).unwrap().1;
    let mut row = String::from("FF sweep (normalized to FF-4):");
    for (ff, ws) in &results {
        row += &format!("  FF-{ff}={:.3}", ws / base);
    }
    println!("{row}");

    let mut g = c.benchmark_group("ablation/ff");
    g.sample_size(10);
    for ff in [1u8, 4] {
        g.bench_function(format!("ff{ff}"), |b| {
            b.iter(|| {
                let mut spec = mk(ff);
                spec.insts = 20_000;
                spec.warmup = 100_000;
                std::hint::black_box(spec.run_mix(1))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
