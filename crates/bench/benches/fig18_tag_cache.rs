//! Fig 18 — DRAM tag accesses under an ATCache-style SRAM tag cache,
//! normalized to no tag cache. The paper's point: because tag blocks have
//! little temporal locality and ATCache prefetches neighbours, the DRAM
//! tag traffic roughly *doubles* even at 192 KB.

use criterion::{criterion_group, criterion_main, Criterion};

use dca_cpu::{mix, TraceGen};
use dca_dram::MappingScheme;
use dca_dram_cache::{CacheGeometry, OrgKind, TagCache};

fn set_stream(ops: usize) -> Vec<u64> {
    let geom = CacheGeometry::paper(OrgKind::paper_set_assoc(), MappingScheme::Direct);
    let m = mix(1);
    let mut gens: Vec<TraceGen> = m
        .benches
        .iter()
        .enumerate()
        .map(|(i, b)| TraceGen::new(b.profile(), (i as u64 + 1) << 26, 7))
        .collect();
    let mut out = Vec::with_capacity(ops * 4);
    for _ in 0..ops {
        for g in gens.iter_mut() {
            out.push(geom.place(g.next_op().block).set);
        }
    }
    out
}

fn fig18(c: &mut Criterion) {
    let stream = set_stream(100_000);
    let mut row = String::from("fig18 tag accesses normalized:");
    for kb in [24usize, 48, 96, 192] {
        let mut tc = TagCache::new(kb * 1024, 1);
        for (i, &s) in stream.iter().enumerate() {
            tc.access(s, i % 3 == 0);
        }
        row += &format!(
            "  {}KB={:.2}",
            kb,
            tc.stats().dram_tag_accesses() as f64 / stream.len() as f64
        );
    }
    println!("{row}");

    let mut g = c.benchmark_group("fig18/tag_cache");
    g.bench_function("access_192kb", |b| {
        b.iter(|| {
            let mut tc = TagCache::new(192 * 1024, 1);
            for (i, &s) in stream.iter().take(20_000).enumerate() {
                tc.access(s, i % 3 == 0);
            }
            std::hint::black_box(tc.stats().dram_tag_accesses())
        })
    });
    g.finish();
}

criterion_group!(benches, fig18);
criterion_main!(benches);
