//! Fig 8 & 9 — normalized weighted speedup of CD/ROD/DCA, with and
//! without the XOR remapping, for both cache organisations.
//!
//! The bench measures full-system simulation throughput per design and
//! prints the figure rows at bench scale. For publication-scale numbers
//! run `cargo run -p dca-bench --bin figures --release -- --fig8 --fig9`
//! (optionally with `DCA_FULL=1`).

use criterion::{criterion_group, criterion_main, Criterion};

use dca::Design;
use dca_bench::{evaluate, AloneIpc, RunSpec};
use dca_dram_cache::OrgKind;

const MIXES: [u32; 2] = [1, 13];

fn bench_spec(insts: u64) -> impl Fn(Design, OrgKind) -> RunSpec {
    move |design, org| {
        let mut s = RunSpec::new(design, org);
        s.insts = insts;
        s.warmup = 400_000;
        s
    }
}

fn fig8_9(c: &mut Criterion) {
    let make = bench_spec(60_000);

    // Print the figure rows once (bench-scale).
    for (fig, remap) in [("fig8", false), ("fig9", true)] {
        for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
            let alone = AloneIpc::new();
            let base = evaluate(make(Design::Cd, org), &MIXES, &alone, "CD");
            let mut row = format!("{fig} {}:", org.label());
            for d in Design::ALL {
                let mut spec = make(d, org);
                spec.remap = remap;
                let s = evaluate(spec, &MIXES, &alone, d.label());
                row += &format!("  {}={:.3}", d.label(), s.ws_geomean() / base.ws_geomean());
            }
            println!("{row}");
        }
    }

    // Criterion: simulation cost per design (direct-mapped, one mix).
    let mut g = c.benchmark_group("fig08_09/sim");
    g.sample_size(10);
    for design in Design::ALL {
        g.bench_function(design.label(), |b| {
            b.iter(|| {
                let mut spec = make(design, OrgKind::DirectMapped);
                spec.insts = 20_000;
                spec.warmup = 100_000;
                std::hint::black_box(spec.run_mix(1))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig8_9);
criterion_main!(benches);
