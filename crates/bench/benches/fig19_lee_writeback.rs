//! Fig 19 — speedups when the L2 uses Lee et al.'s DRAM-aware writeback.
//! The writeback stream arrives row-batched, yet DCA keeps its edge over
//! CD because the tag *reads* of writebacks still invert priorities.

use criterion::{criterion_group, criterion_main, Criterion};

use dca::Design;
use dca_bench::{evaluate, AloneIpc, RunSpec};
use dca_dram_cache::OrgKind;

const MIXES: [u32; 2] = [6, 22];

fn fig19(c: &mut Criterion) {
    let org = OrgKind::DirectMapped;
    let alone = AloneIpc::new();
    let mk = |d: Design| {
        let mut s = RunSpec::new(d, org).with_lee();
        s.insts = 60_000;
        s.warmup = 400_000;
        s
    };
    let base = evaluate(mk(Design::Cd), &MIXES, &alone, "LEE+CD");
    let mut row = String::from("fig19 (DM, Lee writeback):  LEE+CD=1.000");
    for d in [Design::Rod, Design::Dca] {
        let s = evaluate(mk(d), &MIXES, &alone, d.label());
        row += &format!(
            "  LEE+{}={:.3}",
            d.label(),
            s.ws_geomean() / base.ws_geomean()
        );
    }
    println!("{row}");

    let mut g = c.benchmark_group("fig19/sim");
    g.sample_size(10);
    g.bench_function("lee_dca_short", |b| {
        b.iter(|| {
            let mut spec = RunSpec::new(Design::Dca, org).with_lee();
            spec.insts = 20_000;
            spec.warmup = 100_000;
            std::hint::black_box(spec.run_mix(6))
        })
    });
    g.finish();
}

criterion_group!(benches, fig19);
criterion_main!(benches);
