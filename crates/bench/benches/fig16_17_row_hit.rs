//! Fig 16 & 17 — row-buffer hit rate for read accesses, with/without the
//! XOR remapping.

use criterion::{criterion_group, criterion_main, Criterion};

use dca::Design;
use dca_bench::{evaluate, AloneIpc, RunSpec};
use dca_dram::{DramAccess, DramChannel, Organization, TimingParams};
use dca_dram_cache::OrgKind;
use dca_sim_core::SimTime;

const MIXES: [u32; 2] = [13, 17];

fn fig16_17(c: &mut Criterion) {
    let alone = AloneIpc::new();
    for (fig, org) in [
        ("fig16", OrgKind::paper_set_assoc()),
        ("fig17", OrgKind::DirectMapped),
    ] {
        let mut row = format!("{fig} ({}):", org.label());
        for remap in [false, true] {
            for d in Design::ALL {
                let mut spec = RunSpec::new(d, org);
                spec.insts = 60_000;
                spec.warmup = 400_000;
                spec.remap = remap;
                let s = evaluate(spec, &MIXES, &alone, d.label());
                row += &format!(
                    "  {}{}={:.3}",
                    if remap { "XOR+" } else { "" },
                    d.label(),
                    s.mean_row_hit()
                );
            }
        }
        println!("{row}");
    }

    // Criterion: bank/row state machine cost under a conflict-heavy
    // pattern (the per-access hot path of the device model).
    let mut g = c.benchmark_group("fig16_17/device");
    g.bench_function("issue_conflict_stream", |b| {
        b.iter(|| {
            let mut ch = DramChannel::new(TimingParams::paper_stacked(), &Organization::paper());
            let mut now = SimTime::ZERO;
            for i in 0..500u32 {
                let acc = DramAccess::read(i % 16, i % 7);
                let info = ch.issue(acc, now);
                now = info.burst_end;
            }
            std::hint::black_box(ch.stats().read_row_hit_rate())
        })
    });
    g.finish();
}

criterion_group!(benches, fig16_17);
criterion_main!(benches);
