//! Property-based tests for queues, arbiters and hysteresis.

use dca_dram::{DramAccess, RowOutcome};
use dca_sched::{AccessQueue, Bliss, DrainPolicy, FrFcfs, Hysteresis, QueueEntry, ReadClass};
use dca_sim_core::SimTime;
use proptest::prelude::*;

fn entry(id: u64, app: u8, bank: u32, at: u64) -> QueueEntry {
    QueueEntry {
        id,
        access: DramAccess::read(bank, (id % 8) as u32),
        app,
        class: ReadClass::Priority,
        enqueued_at: SimTime(at),
    }
}

proptest! {
    /// The queue never exceeds capacity, never loses or duplicates an
    /// entry, and hands back exactly what was pushed, under arbitrary
    /// push/remove interleavings. (Iteration is slot-ordered, not
    /// age-ordered — age lives in the entries themselves.)
    #[test]
    fn queue_capacity_and_conservation(
        ops in prop::collection::vec((any::<bool>(), 0usize..8), 1..200)
    ) {
        let mut q = AccessQueue::new(16);
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut next_id = 0u64;
        for (push, pos) in ops {
            if push {
                let e = entry(next_id, 0, 0, next_id);
                if q.push(e).is_ok() {
                    live.insert(next_id);
                }
                next_id += 1;
            } else if !q.is_empty() {
                let slot = q.iter().nth(pos % q.len()).expect("in range").0;
                let removed = q.remove(slot);
                prop_assert!(live.remove(&removed.id), "removed unknown id");
            }
            prop_assert!(q.len() <= 16);
            prop_assert_eq!(q.len(), live.len());
            let mut ids: Vec<u64> = q.iter().map(|(_, e)| e.id).collect();
            ids.sort_unstable();
            let mut want: Vec<u64> = live.iter().copied().collect();
            want.sort_unstable();
            prop_assert_eq!(ids, want, "queue contents drifted from reference");
        }
    }

    /// BLISS never picks a blacklisted app while a non-blacklisted
    /// candidate exists.
    #[test]
    fn bliss_never_prefers_blacklisted(
        apps in prop::collection::vec(0u8..4, 2..32),
        hog in 0u8..4
    ) {
        let mut bliss = Bliss::new();
        for _ in 0..4 {
            bliss.on_service(hog, SimTime(1));
        }
        let entries: Vec<QueueEntry> = apps
            .iter()
            .enumerate()
            .map(|(i, &a)| entry(i as u64, a, i as u32 % 16, i as u64))
            .collect();
        let picked = bliss
            .pick(entries.iter().enumerate(), |_| RowOutcome::Closed)
            .unwrap();
        let picked_app = entries[picked].app;
        let clean_exists = apps.iter().any(|&a| a != hog);
        if clean_exists {
            prop_assert_ne!(picked_app, hog, "picked the blacklisted hog");
        }
    }

    /// FR-FCFS picks a row hit whenever one exists.
    #[test]
    fn frfcfs_prefers_any_row_hit(
        banks in prop::collection::vec(0u32..16, 2..32),
        hit_bank in 0u32..16
    ) {
        let arb = FrFcfs::new();
        let entries: Vec<QueueEntry> = banks
            .iter()
            .enumerate()
            .map(|(i, &b)| entry(i as u64, 0, b, i as u64))
            .collect();
        let picked = arb
            .pick(entries.iter().enumerate(), |e| {
                if e.access.bank == hit_bank {
                    RowOutcome::Hit
                } else {
                    RowOutcome::Conflict
                }
            })
            .unwrap();
        if banks.contains(&hit_bank) {
            prop_assert_eq!(entries[picked].access.bank, hit_bank);
        }
    }

    /// Hysteresis output only changes when crossing a threshold, and the
    /// active set is consistent with the band.
    #[test]
    fn hysteresis_band_behaviour(occs in prop::collection::vec(0.0f64..1.0, 1..200)) {
        let mut h = Hysteresis::new(0.5, 0.8);
        let mut active = false;
        for occ in occs {
            let got = h.update(occ);
            if occ > 0.8 {
                active = true;
            } else if occ < 0.5 {
                active = false;
            }
            prop_assert_eq!(got, active);
        }
    }

    /// The drain policy never drains an empty-ish queue below the low
    /// mark and always drains above the high mark.
    #[test]
    fn drain_policy_bounds(occs in prop::collection::vec(0.0f64..1.0, 1..200), reads in any::<bool>()) {
        let mut d = DrainPolicy::paper();
        for occ in occs {
            let drain = d.should_drain(occ, reads);
            if occ > 0.85 {
                prop_assert!(drain, "must drain above high mark");
            }
            if occ < 0.50 {
                prop_assert!(!drain || d.forced(), "no drain below low mark unless forced tail");
            }
        }
    }
}
