//! The Blacklisting memory scheduler (BLISS) of Subramanian et al. \[11\].
//!
//! BLISS observes which application each serviced access belongs to. If
//! one application receives `streak_threshold` (default 4) *consecutive*
//! services, it is blacklisted. Blacklists clear wholesale every
//! `clear_interval`. Arbitration priority is then:
//!
//! 1. non-blacklisted applications over blacklisted ones,
//! 2. row-buffer hits over non-hits,
//! 3. older entries over younger ones (FCFS age).
//!
//! The paper uses BLISS as the underlying arbiter for CD, ROD *and* DCA
//! (Table II), so design differences are attributable purely to queue
//! policy; we follow suit.

use dca_dram::RowOutcome;
use dca_sim_core::{Duration, SimTime};

use crate::queue::QueueEntry;

/// Maximum applications BLISS tracks (4 cores in the paper; sized for 16).
pub const MAX_APPS: usize = 16;

/// BLISS arbiter state.
#[derive(Clone, Debug)]
pub struct Bliss {
    blacklisted: [bool; MAX_APPS],
    last_app: Option<u8>,
    streak: u32,
    streak_threshold: u32,
    clear_interval: Duration,
    next_clear: SimTime,
    /// Total blacklisting events, for diagnostics.
    blacklist_events: u64,
}

impl Bliss {
    /// BLISS with the paper's parameters: blacklist after 4 consecutive
    /// services, clear every `clear_interval` (the original paper uses
    /// 10 000 memory cycles; we default to 12.5 µs which matches 10 000
    /// cycles of a 1.25 ns stacked-DRAM clock).
    pub fn new() -> Self {
        Self::with_params(4, Duration::from_ns(12_500))
    }

    /// Fully parameterised constructor.
    pub fn with_params(streak_threshold: u32, clear_interval: Duration) -> Self {
        assert!(streak_threshold > 0);
        Bliss {
            blacklisted: [false; MAX_APPS],
            last_app: None,
            streak: 0,
            streak_threshold,
            clear_interval,
            next_clear: SimTime::ZERO + clear_interval,
            blacklist_events: 0,
        }
    }

    /// Whether `app` is currently blacklisted.
    pub fn is_blacklisted(&self, app: u8) -> bool {
        self.blacklisted[app as usize % MAX_APPS]
    }

    /// Number of blacklisting events so far.
    pub fn blacklist_events(&self) -> u64 {
        self.blacklist_events
    }

    /// Clear blacklists if the clearing interval has elapsed.
    pub fn maybe_clear(&mut self, now: SimTime) {
        while now >= self.next_clear {
            self.blacklisted = [false; MAX_APPS];
            self.next_clear += self.clear_interval;
        }
    }

    /// Record that an access of `app` was serviced; updates the streak and
    /// blacklist state.
    pub fn on_service(&mut self, app: u8, now: SimTime) {
        self.maybe_clear(now);
        if self.last_app == Some(app) {
            self.streak += 1;
        } else {
            self.last_app = Some(app);
            self.streak = 1;
        }
        if self.streak >= self.streak_threshold {
            let slot = app as usize % MAX_APPS;
            if !self.blacklisted[slot] {
                self.blacklisted[slot] = true;
                self.blacklist_events += 1;
            }
        }
    }

    /// Choose the best entry among `candidates` (positions into the
    /// caller's queue paired with entries). `row_outcome` reports how each
    /// entry would meet its bank's row buffer *right now*.
    ///
    /// Returns the winning position, or `None` when there are no
    /// candidates.
    pub fn pick<'a, I, F>(&self, candidates: I, mut row_outcome: F) -> Option<usize>
    where
        I: IntoIterator<Item = (usize, &'a QueueEntry)>,
        F: FnMut(&QueueEntry) -> RowOutcome,
    {
        let mut best: Option<(usize, Key)> = None;
        for (pos, entry) in candidates {
            let key = Key {
                blacklisted: self.is_blacklisted(entry.app),
                row_hit: row_outcome(entry) == RowOutcome::Hit,
                age: entry.enqueued_at,
                id: entry.id,
            };
            match &best {
                Some((_, bk)) if !key.beats(bk) => {}
                _ => best = Some((pos, key)),
            }
        }
        best.map(|(pos, _)| pos)
    }
}

impl Default for Bliss {
    fn default() -> Self {
        Self::new()
    }
}

/// Arbitration key implementing the BLISS priority order.
#[derive(Clone, Copy, Debug)]
struct Key {
    blacklisted: bool,
    row_hit: bool,
    age: SimTime,
    id: u64,
}

impl Key {
    /// Strict "higher priority than" per BLISS rules.
    fn beats(&self, other: &Key) -> bool {
        // 1. Non-blacklisted first.
        if self.blacklisted != other.blacklisted {
            return !self.blacklisted;
        }
        // 2. Row hits first.
        if self.row_hit != other.row_hit {
            return self.row_hit;
        }
        // 3. Oldest first; unique id as the final deterministic tiebreak.
        if self.age != other.age {
            return self.age < other.age;
        }
        self.id < other.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ReadClass;
    use dca_dram::DramAccess;

    fn entry(id: u64, app: u8, bank: u32, row: u32, at: u64) -> QueueEntry {
        QueueEntry {
            id,
            access: DramAccess::read(bank, row),
            app,
            class: ReadClass::Priority,
            enqueued_at: SimTime(at),
        }
    }

    #[test]
    fn four_consecutive_services_blacklist() {
        let mut b = Bliss::new();
        let t = SimTime(1);
        for _ in 0..3 {
            b.on_service(2, t);
            assert!(!b.is_blacklisted(2));
        }
        b.on_service(2, t);
        assert!(b.is_blacklisted(2));
        assert_eq!(b.blacklist_events(), 1);
    }

    #[test]
    fn interleaved_services_reset_streak() {
        let mut b = Bliss::new();
        let t = SimTime(1);
        for i in 0..20 {
            b.on_service((i % 2) as u8, t);
        }
        assert!(!b.is_blacklisted(0));
        assert!(!b.is_blacklisted(1));
    }

    #[test]
    fn blacklist_clears_after_interval() {
        let mut b = Bliss::with_params(4, Duration::from_ns(100));
        let t0 = SimTime(1);
        for _ in 0..4 {
            b.on_service(1, t0);
        }
        assert!(b.is_blacklisted(1));
        b.maybe_clear(SimTime(99_999));
        assert!(b.is_blacklisted(1), "99.999ns: interval not yet elapsed");
        b.maybe_clear(SimTime(100_000));
        assert!(!b.is_blacklisted(1), "cleared after 100ns interval");
    }

    #[test]
    fn pick_prefers_non_blacklisted() {
        let mut b = Bliss::new();
        for _ in 0..4 {
            b.on_service(0, SimTime(1));
        }
        let e0 = entry(0, 0, 0, 0, 0); // older, blacklisted app
        let e1 = entry(1, 1, 1, 0, 10); // younger, clean app
        let picked = b
            .pick([(0, &e0), (1, &e1)], |_| RowOutcome::Closed)
            .unwrap();
        assert_eq!(picked, 1);
    }

    #[test]
    fn pick_prefers_row_hits_within_class() {
        let b = Bliss::new();
        let e0 = entry(0, 0, 0, 5, 0); // older, will be a conflict
        let e1 = entry(1, 1, 1, 7, 10); // younger, row hit
        let picked = b
            .pick([(0, &e0), (1, &e1)], |e| {
                if e.access.bank == 1 {
                    RowOutcome::Hit
                } else {
                    RowOutcome::Conflict
                }
            })
            .unwrap();
        assert_eq!(picked, 1);
    }

    #[test]
    fn pick_falls_back_to_age_then_id() {
        let b = Bliss::new();
        let e0 = entry(7, 0, 0, 0, 50);
        let e1 = entry(3, 1, 1, 0, 50); // same age, smaller id
        let picked = b
            .pick([(0, &e0), (1, &e1)], |_| RowOutcome::Closed)
            .unwrap();
        assert_eq!(picked, 1);
        let e2 = entry(9, 0, 0, 0, 40); // strictly older
        let picked = b
            .pick([(0, &e0), (1, &e1), (2, &e2)], |_| RowOutcome::Closed)
            .unwrap();
        assert_eq!(picked, 2);
    }

    #[test]
    fn empty_candidates_pick_none() {
        let b = Bliss::new();
        assert_eq!(b.pick(std::iter::empty(), |_| RowOutcome::Hit), None);
    }

    #[test]
    fn blacklisted_row_hit_loses_to_clean_conflict() {
        // BLISS rule 1 dominates rule 2.
        let mut b = Bliss::new();
        for _ in 0..4 {
            b.on_service(0, SimTime(1));
        }
        let hog = entry(0, 0, 0, 5, 0);
        let clean = entry(1, 1, 1, 9, 100);
        let picked = b
            .pick([(0, &hog), (1, &clean)], |e| {
                if e.app == 0 {
                    RowOutcome::Hit
                } else {
                    RowOutcome::Conflict
                }
            })
            .unwrap();
        assert_eq!(picked, 1);
    }
}
