//! FR-FCFS (first-ready, first-come-first-served) arbitration.
//!
//! The classic open-page arbiter: row hits first, then oldest. Used as an
//! ablation point against BLISS (the paper's base arbiter) to show DCA's
//! gains are not an artefact of the underlying arbitration algorithm
//! (§IV-B: "our scheme is not limited to any scheduling algorithm").

use dca_dram::RowOutcome;

use crate::queue::QueueEntry;

/// Stateless FR-FCFS arbiter.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// New arbiter.
    pub fn new() -> Self {
        FrFcfs
    }

    /// Choose the best entry among `candidates`: row hits first, then by
    /// age, then by id (deterministic tiebreak).
    pub fn pick<'a, I, F>(&self, candidates: I, mut row_outcome: F) -> Option<usize>
    where
        I: IntoIterator<Item = (usize, &'a QueueEntry)>,
        F: FnMut(&QueueEntry) -> RowOutcome,
    {
        let mut best: Option<(usize, bool, u64, u64)> = None;
        for (pos, e) in candidates {
            let hit = row_outcome(e) == RowOutcome::Hit;
            let key = (pos, hit, e.enqueued_at.ps(), e.id);
            best = match best {
                None => Some(key),
                Some(b) => {
                    let better = match (hit, b.1) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => (key.2, key.3) < (b.2, b.3),
                    };
                    if better {
                        Some(key)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.map(|(pos, ..)| pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ReadClass;
    use dca_dram::DramAccess;
    use dca_sim_core::SimTime;

    fn entry(id: u64, bank: u32, at: u64) -> QueueEntry {
        QueueEntry {
            id,
            access: DramAccess::read(bank, 0),
            app: 0,
            class: ReadClass::Priority,
            enqueued_at: SimTime(at),
        }
    }

    #[test]
    fn row_hit_beats_age() {
        let arb = FrFcfs::new();
        let old_conflict = entry(0, 0, 0);
        let young_hit = entry(1, 1, 100);
        let picked = arb
            .pick([(0, &old_conflict), (1, &young_hit)], |e| {
                if e.access.bank == 1 {
                    RowOutcome::Hit
                } else {
                    RowOutcome::Conflict
                }
            })
            .unwrap();
        assert_eq!(picked, 1);
    }

    #[test]
    fn age_breaks_ties() {
        let arb = FrFcfs::new();
        let a = entry(0, 0, 50);
        let b = entry(1, 1, 20);
        let picked = arb
            .pick([(0, &a), (1, &b)], |_| RowOutcome::Closed)
            .unwrap();
        assert_eq!(picked, 1);
    }

    #[test]
    fn id_breaks_age_ties() {
        let arb = FrFcfs::new();
        let a = entry(5, 0, 50);
        let b = entry(2, 1, 50);
        let picked = arb
            .pick([(0, &a), (1, &b)], |_| RowOutcome::Closed)
            .unwrap();
        assert_eq!(picked, 1);
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(
            FrFcfs::new().pick(std::iter::empty(), |_| RowOutcome::Hit),
            None
        );
    }
}
