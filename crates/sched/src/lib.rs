//! # dca-sched — access queues and arbiters
//!
//! The queue/arbiter substrate shared by all three controller designs in
//! the paper:
//!
//! * [`queue`] — bounded access queues whose entries carry the metadata the
//!   designs disagree about: the DRAM access itself, the *cache request
//!   type* it came from, and (for DCA) the priority-read / low-priority-read
//!   classification.
//! * [`bliss`] — the Blacklisting memory scheduler (Subramanian et al.
//!   \[11\]), the base arbitration algorithm under every design in the
//!   paper's evaluation: applications that hog consecutive service slots
//!   get blacklisted for an interval; arbitration then prefers
//!   non-blacklisted, then row hits, then age.
//! * [`frfcfs`] — classic FR-FCFS, used as an ablation arbiter.
//! * [`hysteresis`] — two-threshold state machines: the write-queue drain
//!   policy (§II-A: forced flush at the high mark, opportunistic service
//!   above the low mark when reads are idle) and DCA's Algorithm-1
//!   ScheduleAll band (85 %/75 %).

pub mod bliss;
pub mod frfcfs;
pub mod hysteresis;
pub mod queue;

pub use bliss::Bliss;
pub use frfcfs::FrFcfs;
pub use hysteresis::{DrainPolicy, Hysteresis};
pub use queue::{AccessQueue, QueueEntry, ReadClass};
