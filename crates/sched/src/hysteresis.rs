//! Two-threshold hysteresis state machines.
//!
//! Two places in the paper use a high/low threshold pair:
//!
//! * the **write-queue drain** (§II-A): a forced flush triggers when the
//!   write queue crosses its high mark (85 %) and runs until it falls to
//!   the low mark (50 %); additionally, when there are *no pending reads*
//!   and occupancy exceeds the low mark, the controller drains writes
//!   opportunistically;
//! * **DCA's Algorithm 1** (§IV-B): `ScheduleAll` flips on when read-queue
//!   occupancy exceeds 85 % and off when it falls below 75 %, temporarily
//!   letting low-priority reads compete with priority reads.

/// A generic high/low hysteresis band.
#[derive(Clone, Copy, Debug)]
pub struct Hysteresis {
    /// Turn-on fraction (exclusive: `occ > hi` activates).
    pub hi: f64,
    /// Turn-off fraction (exclusive: `occ < lo` deactivates).
    pub lo: f64,
    active: bool,
}

impl Hysteresis {
    /// A band with the given thresholds, initially inactive.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "low threshold must not exceed high");
        Hysteresis {
            hi,
            lo,
            active: false,
        }
    }

    /// Update with the current occupancy fraction; returns the new state.
    pub fn update(&mut self, occupancy: f64) -> bool {
        if occupancy > self.hi {
            self.active = true;
        } else if occupancy < self.lo {
            self.active = false;
        }
        self.active
    }

    /// Current state without updating.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

/// The paper's optimized write-drain policy (§II-A).
#[derive(Clone, Copy, Debug)]
pub struct DrainPolicy {
    band: Hysteresis,
}

impl DrainPolicy {
    /// Drain policy with the Table II thresholds: low 50 %, high 85 %.
    pub fn paper() -> Self {
        Self::new(0.50, 0.85)
    }

    /// Custom thresholds.
    pub fn new(lo: f64, hi: f64) -> Self {
        DrainPolicy {
            band: Hysteresis::new(lo, hi),
        }
    }

    /// Decide whether the write queue should be serviced this slot.
    ///
    /// `occupancy` is the write-queue fill fraction, `reads_pending`
    /// whether any read-queue entry is waiting. Forced drain (above the
    /// high mark) persists until occupancy falls below the low mark;
    /// otherwise writes are only served when the read path is idle and
    /// occupancy is above the low mark.
    pub fn should_drain(&mut self, occupancy: f64, reads_pending: bool) -> bool {
        let forced = self.band.update(occupancy);
        if forced {
            return true;
        }
        self.opportunistic(occupancy, reads_pending)
    }

    /// Update only the forced-drain hysteresis band and return its state.
    /// Controllers that interleave other work between the forced and
    /// opportunistic phases (DCA's LR flushing sits between them) call
    /// this first and [`DrainPolicy::opportunistic`] last.
    pub fn update_forced(&mut self, occupancy: f64) -> bool {
        self.band.update(occupancy)
    }

    /// The stateless opportunistic clause: drain when the read path is
    /// idle and occupancy is above the low mark.
    pub fn opportunistic(&self, occupancy: f64, reads_pending: bool) -> bool {
        !reads_pending && occupancy > self.band.lo
    }

    /// Whether a forced drain is in progress.
    pub fn forced(&self) -> bool {
        self.band.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_switches_with_hysteresis() {
        let mut h = Hysteresis::new(0.75, 0.85);
        assert!(!h.update(0.80), "below hi: stays off");
        assert!(h.update(0.90), "above hi: on");
        assert!(h.update(0.80), "inside band: stays on");
        assert!(!h.update(0.70), "below lo: off");
        assert!(!h.update(0.80), "inside band: stays off");
        assert!(!h.is_active());
    }

    #[test]
    fn forced_drain_runs_to_low_mark() {
        let mut d = DrainPolicy::paper();
        assert!(!d.should_drain(0.80, true), "below high, reads pending");
        assert!(d.should_drain(0.90, true), "forced at high mark");
        assert!(d.forced());
        assert!(d.should_drain(0.60, true), "keeps draining inside band");
        assert!(!d.should_drain(0.45, true), "stops below low mark");
        assert!(!d.forced());
    }

    #[test]
    fn opportunistic_drain_when_reads_idle() {
        let mut d = DrainPolicy::paper();
        assert!(d.should_drain(0.60, false), "no reads + above low: drain");
        assert!(!d.should_drain(0.40, false), "below low: idle");
        assert!(!d.should_drain(0.60, true), "reads pending: hold writes");
    }

    #[test]
    #[should_panic(expected = "low threshold")]
    fn inverted_thresholds_panic() {
        Hysteresis::new(0.9, 0.1);
    }
}
