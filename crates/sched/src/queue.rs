//! Bounded access queues.

use dca_dram::DramAccess;
use dca_sim_core::SimTime;

/// Priority class of a read access in the DCA design (§IV-B).
///
/// Reads from cache *read* requests are [`ReadClass::Priority`] (PR);
/// reads from cache *writeback/refill* requests are
/// [`ReadClass::LowPriority`] (LR). CD and ROD ignore this field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// PR: on the critical path of a processor read.
    Priority,
    /// LR: tag reads for writebacks / refills; off the critical path.
    LowPriority,
}

/// One queued DRAM access plus the request metadata arbitration needs.
#[derive(Clone, Copy, Debug)]
pub struct QueueEntry {
    /// Unique id assigned by the controller; ties broken by id so
    /// arbitration is deterministic.
    pub id: u64,
    /// The DRAM access to perform.
    pub access: DramAccess,
    /// Issuing application (core) — BLISS's blacklisting unit.
    pub app: u8,
    /// PR/LR classification (meaningful for reads under DCA).
    pub class: ReadClass,
    /// When the entry entered the queue.
    pub enqueued_at: SimTime,
}

/// A bounded queue of accesses.
///
/// Removal is by position (arbitration returns a position); order of the
/// backing vector is insertion order, which the arbiters use as age.
#[derive(Clone, Debug)]
pub struct AccessQueue {
    entries: Vec<QueueEntry>,
    capacity: usize,
    /// High-water mark, for reporting.
    peak: usize,
}

impl AccessQueue {
    /// An empty queue holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        AccessQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy as a fraction of capacity.
    #[inline]
    pub fn occupancy(&self) -> f64 {
        self.entries.len() as f64 / self.capacity as f64
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Push an entry; returns `Err(entry)` when full so callers can apply
    /// backpressure instead of losing accesses.
    pub fn push(&mut self, entry: QueueEntry) -> Result<(), QueueEntry> {
        if self.is_full() {
            return Err(entry);
        }
        self.entries.push(entry);
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Remove and return the entry at `pos` (positions come from the
    /// arbiters). Preserves insertion order of the rest.
    pub fn remove(&mut self, pos: usize) -> QueueEntry {
        self.entries.remove(pos)
    }

    /// Immutable view of the queued entries, oldest first.
    pub fn entries(&self) -> &[QueueEntry] {
        &self.entries
    }

    /// Iterator over `(position, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &QueueEntry)> {
        self.entries.iter().enumerate()
    }

    /// Count of entries matching a predicate (e.g. PR-only occupancy).
    pub fn count_where(&self, mut pred: impl FnMut(&QueueEntry) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_dram::DramAccess;

    fn entry(id: u64) -> QueueEntry {
        QueueEntry {
            id,
            access: DramAccess::read(0, 0),
            app: 0,
            class: ReadClass::Priority,
            enqueued_at: SimTime(id),
        }
    }

    #[test]
    fn push_pop_fifo_positions() {
        let mut q = AccessQueue::new(4);
        for i in 0..4 {
            q.push(entry(i)).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.remove(0).id, 0);
        assert_eq!(q.remove(1).id, 2); // position shifts after removal
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn full_queue_rejects_and_returns_entry() {
        let mut q = AccessQueue::new(1);
        q.push(entry(0)).unwrap();
        let rejected = q.push(entry(1)).unwrap_err();
        assert_eq!(rejected.id, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn occupancy_and_peak() {
        let mut q = AccessQueue::new(4);
        assert_eq!(q.occupancy(), 0.0);
        q.push(entry(0)).unwrap();
        q.push(entry(1)).unwrap();
        assert_eq!(q.occupancy(), 0.5);
        q.remove(0);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn count_where_filters() {
        let mut q = AccessQueue::new(8);
        for i in 0..6 {
            let mut e = entry(i);
            if i % 3 == 0 {
                e.class = ReadClass::LowPriority;
            }
            q.push(e).unwrap();
        }
        assert_eq!(q.count_where(|e| e.class == ReadClass::LowPriority), 2);
        assert_eq!(q.count_where(|e| e.class == ReadClass::Priority), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        AccessQueue::new(0);
    }
}
