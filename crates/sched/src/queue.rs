//! Bounded access queues.
//!
//! [`AccessQueue`] is a **slotted** bounded queue built as a sparse set:
//!
//! * entries live contiguously in a dense array, so arbitration scans
//!   touch only live entries, in cache order — exactly as cheap as the
//!   plain `Vec` queue this replaced;
//! * each entry owns a stable *slot* id (from a LIFO free stack) with a
//!   sparse slot→dense index table, so [`AccessQueue::remove`] is O(1)
//!   `swap_remove` — unlike the old `Vec::remove`, which paid O(n)
//!   memmove per issued command.
//!
//! Iteration order is the dense-array order (insertion order perturbed
//! by `swap_remove`), which is deterministic but **not** age order; every
//! consumer is order-independent because arbitration keys carry the
//! entry's age (`enqueued_at`) and a unique tiebreak `id` explicitly.
//!
//! Slot ids are stable for the lifetime of their entry but recycled
//! afterwards; they are meaningful only between one arbitration pass and
//! the following `remove`.

use dca_dram::DramAccess;
use dca_sim_core::SimTime;

/// Priority class of a read access in the DCA design (§IV-B).
///
/// Reads from cache *read* requests are [`ReadClass::Priority`] (PR);
/// reads from cache *writeback/refill* requests are
/// [`ReadClass::LowPriority`] (LR). CD and ROD ignore this field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// PR: on the critical path of a processor read.
    Priority,
    /// LR: tag reads for writebacks / refills; off the critical path.
    LowPriority,
}

/// One queued DRAM access plus the request metadata arbitration needs.
#[derive(Clone, Copy, Debug)]
pub struct QueueEntry {
    /// Unique id assigned by the controller; ties broken by id so
    /// arbitration is deterministic.
    pub id: u64,
    /// The DRAM access to perform.
    pub access: DramAccess,
    /// Issuing application (core) — BLISS's blacklisting unit.
    pub app: u8,
    /// PR/LR classification (meaningful for reads under DCA).
    pub class: ReadClass,
    /// When the entry entered the queue.
    pub enqueued_at: SimTime,
}

/// A bounded queue of accesses with O(1) push, O(1) removal-by-slot,
/// dense cache-friendly iteration, and no allocation after construction.
#[derive(Clone, Debug)]
pub struct AccessQueue {
    /// Live entries, contiguous; parallel to `dense_slot`.
    dense: Vec<QueueEntry>,
    /// Slot id of each dense entry.
    dense_slot: Vec<u32>,
    /// Slot → dense index (valid only for live slots).
    sparse: Vec<u32>,
    /// Stack of free slot ids (LIFO recycling, deterministic).
    free: Vec<u32>,
    /// Entries with `class == ReadClass::Priority`, maintained
    /// incrementally so DCA's "any PR pending?" test is O(1).
    priority_count: usize,
    /// High-water mark, for reporting.
    peak: usize,
}

impl AccessQueue {
    /// An empty queue holding at most `capacity` entries. All storage is
    /// allocated up front; the queue never touches the allocator again.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(capacity < u32::MAX as usize, "capacity must fit in u32");
        AccessQueue {
            dense: Vec::with_capacity(capacity),
            dense_slot: Vec::with_capacity(capacity),
            sparse: vec![0; capacity],
            // Pop from the back: slot 0 is handed out first.
            free: (0..capacity as u32).rev().collect(),
            priority_count: 0,
            peak: 0,
        }
    }

    /// Entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// True when at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.sparse.len()
    }

    /// Occupancy as a fraction of capacity.
    #[inline]
    pub fn occupancy(&self) -> f64 {
        self.dense.len() as f64 / self.sparse.len() as f64
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Entries whose class is [`ReadClass::Priority`] (O(1)).
    #[inline]
    pub fn priority_count(&self) -> usize {
        self.priority_count
    }

    /// Push an entry; returns `Err(entry)` when full so callers can apply
    /// backpressure instead of losing accesses.
    pub fn push(&mut self, entry: QueueEntry) -> Result<(), QueueEntry> {
        let Some(slot) = self.free.pop() else {
            return Err(entry);
        };
        if entry.class == ReadClass::Priority {
            self.priority_count += 1;
        }
        self.sparse[slot as usize] = self.dense.len() as u32;
        self.dense.push(entry);
        self.dense_slot.push(slot);
        self.peak = self.peak.max(self.dense.len());
        Ok(())
    }

    /// Remove and return the entry in `slot` (slots come from the
    /// arbiters via [`AccessQueue::iter`]). O(1); other entries keep
    /// their slots.
    ///
    /// # Panics
    /// Panics if `slot` is not currently occupied.
    pub fn remove(&mut self, slot: usize) -> QueueEntry {
        let d = self.sparse[slot] as usize;
        assert!(
            d < self.dense.len() && self.dense_slot[d] as usize == slot,
            "removing an empty queue slot"
        );
        let entry = self.dense.swap_remove(d);
        self.dense_slot.swap_remove(d);
        if let Some(&moved_slot) = self.dense_slot.get(d) {
            self.sparse[moved_slot as usize] = d as u32;
        }
        if entry.class == ReadClass::Priority {
            self.priority_count -= 1;
        }
        self.free.push(slot as u32);
        entry
    }

    /// Iterator over `(slot, entry)` pairs in dense order — contiguous
    /// and live-only. Deterministic; age order is *not* implied —
    /// consumers needing age use `entry.enqueued_at` / `entry.id`, as
    /// the arbiters do.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, &QueueEntry)> + '_ {
        self.dense_slot
            .iter()
            .zip(self.dense.iter())
            .map(|(&s, e)| (s as usize, e))
    }

    /// Count of entries matching a predicate (e.g. PR-only occupancy).
    pub fn count_where(&self, mut pred: impl FnMut(&QueueEntry) -> bool) -> usize {
        self.dense.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_dram::DramAccess;

    fn entry(id: u64) -> QueueEntry {
        QueueEntry {
            id,
            access: DramAccess::read(0, 0),
            app: 0,
            class: ReadClass::Priority,
            enqueued_at: SimTime(id),
        }
    }

    fn ids(q: &AccessQueue) -> Vec<u64> {
        let mut v: Vec<u64> = q.iter().map(|(_, e)| e.id).collect();
        v.sort_unstable();
        v
    }

    /// Slot currently holding the entry with `id`.
    fn slot_of(q: &AccessQueue, id: u64) -> usize {
        q.iter().find(|(_, e)| e.id == id).expect("entry present").0
    }

    #[test]
    fn push_iter_and_stable_slots() {
        let mut q = AccessQueue::new(4);
        for i in 0..4 {
            q.push(entry(i)).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(ids(&q), vec![0, 1, 2, 3]);
        // Removing one leaves everyone else's slot untouched.
        let s3 = slot_of(&q, 3);
        assert_eq!(q.remove(slot_of(&q, 2)).id, 2);
        assert_eq!(ids(&q), vec![0, 1, 3]);
        assert_eq!(slot_of(&q, 3), s3, "entry 3 kept its slot");
        assert_eq!(q.remove(slot_of(&q, 0)).id, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn slot_recycling_is_deterministic() {
        let mut a = AccessQueue::new(4);
        let mut b = AccessQueue::new(4);
        for q in [&mut a, &mut b] {
            q.push(entry(0)).unwrap();
            q.push(entry(1)).unwrap();
            q.remove(slot_of(q, 0));
            q.push(entry(2)).unwrap();
        }
        let order_a: Vec<(usize, u64)> = a.iter().map(|(s, e)| (s, e.id)).collect();
        let order_b: Vec<(usize, u64)> = b.iter().map(|(s, e)| (s, e.id)).collect();
        assert_eq!(order_a, order_b, "same ops ⇒ same slots and order");
        // The freed slot is reused immediately (LIFO).
        assert_eq!(slot_of(&a, 2), 0);
    }

    #[test]
    fn full_queue_rejects_and_returns_entry() {
        let mut q = AccessQueue::new(1);
        q.push(entry(0)).unwrap();
        let rejected = q.push(entry(1)).unwrap_err();
        assert_eq!(rejected.id, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn occupancy_and_peak() {
        let mut q = AccessQueue::new(4);
        assert_eq!(q.occupancy(), 0.0);
        q.push(entry(0)).unwrap();
        q.push(entry(1)).unwrap();
        assert_eq!(q.occupancy(), 0.5);
        q.remove(slot_of(&q, 0));
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn count_where_and_priority_count() {
        let mut q = AccessQueue::new(8);
        for i in 0..6 {
            let mut e = entry(i);
            if i % 3 == 0 {
                e.class = ReadClass::LowPriority;
            }
            q.push(e).unwrap();
        }
        assert_eq!(q.count_where(|e| e.class == ReadClass::LowPriority), 2);
        assert_eq!(q.count_where(|e| e.class == ReadClass::Priority), 4);
        assert_eq!(q.priority_count(), 4);
        q.remove(slot_of(&q, 1)); // a Priority entry
        assert_eq!(q.priority_count(), 3);
    }

    #[test]
    fn drain_and_refill_many_times() {
        // Exercise free-stack recycling well past one capacity's worth.
        let mut q = AccessQueue::new(8);
        let mut next = 0u64;
        for round in 0..100u64 {
            while q.push(entry(next)).is_ok() {
                next += 1;
            }
            assert!(q.is_full());
            let victim = next - 1 - (round % 8);
            q.remove(slot_of(&q, victim));
            assert_eq!(q.len(), 7);
            assert!(!ids(&q).contains(&victim));
            while !q.is_empty() {
                let s = q.iter().next().unwrap().0;
                q.remove(s);
            }
        }
        assert_eq!(q.peak(), 8);
        assert_eq!(q.priority_count(), 0);
    }

    #[test]
    #[should_panic(expected = "empty queue slot")]
    fn removing_free_slot_panics() {
        let mut q = AccessQueue::new(2);
        q.push(entry(0)).unwrap();
        let s = slot_of(&q, 0);
        q.remove(s);
        q.remove(s);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        AccessQueue::new(0);
    }
}
