//! Umbrella package hosting the repository-level `tests/` and
//! `examples/` directories (see the explicit `[[test]]`/`[[example]]`
//! entries in this package's manifest). All implementation lives in the
//! sibling crates; start at [`dca`](../dca/index.html).
