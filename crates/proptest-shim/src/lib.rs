//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the real proptest
//! cannot be vendored. This shim implements the subset the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * range strategies (`0u64..100`, `-1e6f64..1e6`, …), [`any`], tuple
//!   strategies, and [`prop::collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Sampling is deterministic: each test derives its RNG stream from the
//! test's name, so failures reproduce across runs. No shrinking — a
//! failing case reports its inputs via the assertion message and case
//! index instead.

/// Number of cases to run per property by default.
const DEFAULT_CASES: u32 = 64;

/// Execution parameters for one property (shim: only `cases`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG (SplitMix64 over a name-derived seed).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.as_bytes() {
            state = state.wrapping_add(*b as u64);
            state = Self::mix(state);
        }
        TestRng { state }
    }

    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// Uniform draw below `bound` (> 0), bias removed by rejection.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in [0, 1).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of sampled values (shim: no shrinking).
pub trait Strategy {
    /// Type of values produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Always produces a clone of its value (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — see [`Arbitrary`] for supported `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Output of [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can produce.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// `prop::collection` namespace, as re-exported by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Vec`s of `element` with length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Output of [`vec`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(msg) = result {
                    panic!("property failed at case {case}: {msg}");
                }
            }
        }
    )*};
}

/// Assert inside a property; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let v = prop::collection::vec(0u32..4, 1..9).sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            assert!(v.iter().all(|&e| e < 4));
            let (a, b) = (0u8..2, any::<bool>()).sample(&mut rng);
            assert!(a < 2);
            let _: bool = b;
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::deterministic("map");
        let s = (0usize..3).prop_map(|i| ["a", "b", "c"][i]);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&s.sample(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(xs in prop::collection::vec(0u64..100, 1..20), flip in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            if flip {
                prop_assert_ne!(xs[0] * 2 + 1, doubled[0]);
            }
        }
    }
}
