//! DRAM access descriptors.

use dca_sim_core::Duration;

use crate::params::TimingParams;

/// Direction of a DRAM array access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Array → controller (tag read, data read).
    Read,
    /// Controller → array (tag write, data write).
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

/// Data burst length of an access, in 16-byte quarters of the standard
/// 64-byte block burst.
///
/// The set-associative organisation moves 64-byte tag or data blocks
/// ([`BurstLen::Block64`]). The direct-mapped (Alloy-style) organisation
/// streams a tag-and-data (TAD) unit in one slightly longer burst
/// ([`BurstLen::Tad80`]), which is how it reads tag and data "in parallel"
/// (§II-B1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BurstLen {
    /// One 64-byte block: 4 quarter-units (exactly tBURST).
    Block64,
    /// One 80-byte TAD: 5 quarter-units (1.25 × tBURST).
    Tad80,
}

impl BurstLen {
    /// Quarter-units of bus time this burst occupies.
    #[inline]
    pub fn quarters(self) -> u64 {
        match self {
            BurstLen::Block64 => 4,
            BurstLen::Tad80 => 5,
        }
    }

    /// Bus occupancy for this burst under `params`.
    #[inline]
    pub fn duration(self, params: &TimingParams) -> Duration {
        Duration::from_ps(params.t_burst.ps() * self.quarters() / 4)
    }
}

/// One access to the DRAM array, as seen by a channel.
///
/// The channel does not care *why* the access exists (tag vs data, read
/// request vs writeback) — that classification lives in the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DramAccess {
    /// Bank within the channel.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Burst length on the data bus.
    pub burst: BurstLen,
}

impl DramAccess {
    /// Convenience constructor for a standard 64-byte read.
    pub fn read(bank: u32, row: u32) -> Self {
        DramAccess {
            bank,
            row,
            kind: AccessKind::Read,
            burst: BurstLen::Block64,
        }
    }

    /// Convenience constructor for a standard 64-byte write.
    pub fn write(bank: u32, row: u32) -> Self {
        DramAccess {
            bank,
            row,
            kind: AccessKind::Write,
            burst: BurstLen::Block64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_durations() {
        let p = TimingParams::paper_stacked();
        assert_eq!(BurstLen::Block64.duration(&p).ps(), 3_330);
        // TAD is 25% longer (integer ps, truncating).
        assert_eq!(BurstLen::Tad80.duration(&p).ps(), 4_162);
    }

    #[test]
    fn constructors() {
        let r = DramAccess::read(3, 17);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(r.kind.is_read());
        let w = DramAccess::write(0, 0);
        assert_eq!(w.kind, AccessKind::Write);
        assert!(!w.kind.is_read());
        assert_eq!(w.burst, BurstLen::Block64);
    }
}
