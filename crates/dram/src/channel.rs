//! One DRAM channel: a set of banks sharing a data bus.

use dca_sim_core::{Counter, SimTime};

use crate::access::{AccessKind, DramAccess};
use crate::bank::{Bank, RowOutcome};
use crate::bus::DataBus;
use crate::params::{Organization, TimingParams};

/// Timing result of issuing one access.
#[derive(Clone, Copy, Debug)]
pub struct IssueInfo {
    /// How the access met the row buffer.
    pub outcome: RowOutcome,
    /// Start of the data burst on the bus.
    pub burst_start: SimTime,
    /// End of the data burst — when read data is available / write data
    /// is absorbed, and when the bank frees up for its next access.
    pub burst_end: SimTime,
}

/// Per-channel statistics, split by access direction.
///
/// `read_*` row-outcome counters feed the paper's row-buffer hit rate for
/// read accesses (Figs 16–17); the bus keeps the turnaround counters
/// (Figs 14–15).
#[derive(Clone, Debug, Default)]
pub struct ChannelStats {
    /// Read accesses issued.
    pub reads: Counter,
    /// Write accesses issued.
    pub writes: Counter,
    /// Read accesses that hit an open row.
    pub read_row_hits: Counter,
    /// Read accesses to a closed bank.
    pub read_row_closed: Counter,
    /// Read accesses that forced a precharge.
    pub read_row_conflicts: Counter,
    /// Write accesses that hit an open row.
    pub write_row_hits: Counter,
    /// Write accesses to a closed bank.
    pub write_row_closed: Counter,
    /// Write accesses that forced a precharge.
    pub write_row_conflicts: Counter,
}

impl ChannelStats {
    /// Row-buffer hit rate over read accesses (the Fig 16/17 metric).
    pub fn read_row_hit_rate(&self) -> f64 {
        let total = self.reads.get();
        if total == 0 {
            0.0
        } else {
            self.read_row_hits.get() as f64 / total as f64
        }
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.reads.get() + self.writes.get();
        if total == 0 {
            0.0
        } else {
            (self.read_row_hits.get() + self.write_row_hits.get()) as f64 / total as f64
        }
    }

    /// Merge counters from another channel (for device-wide reporting).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.reads.add(other.reads.get());
        self.writes.add(other.writes.get());
        self.read_row_hits.add(other.read_row_hits.get());
        self.read_row_closed.add(other.read_row_closed.get());
        self.read_row_conflicts.add(other.read_row_conflicts.get());
        self.write_row_hits.add(other.write_row_hits.get());
        self.write_row_closed.add(other.write_row_closed.get());
        self.write_row_conflicts
            .add(other.write_row_conflicts.get());
    }
}

/// A DRAM channel: banks + data bus + timing parameters.
#[derive(Clone, Debug)]
pub struct DramChannel {
    params: TimingParams,
    banks: Vec<Bank>,
    bus: DataBus,
    stats: ChannelStats,
}

impl DramChannel {
    /// A channel with `org.banks_per_channel()` idle banks.
    pub fn new(params: TimingParams, org: &Organization) -> Self {
        DramChannel {
            params,
            banks: vec![Bank::new(); org.banks_per_channel() as usize],
            bus: DataBus::new(),
            stats: ChannelStats::default(),
        }
    }

    /// Number of banks on this channel.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Timing parameters in force.
    pub fn params(&self) -> &TimingParams {
        &self.params
    }

    /// Whether `bank` can accept a new access at `now`.
    pub fn bank_free(&self, bank: u32, now: SimTime) -> bool {
        self.banks[bank as usize].is_free(now)
    }

    /// When `bank` finishes its in-flight access.
    pub fn bank_busy_until(&self, bank: u32) -> SimTime {
        self.banks[bank as usize].busy_until()
    }

    /// Row-outcome an access to (`bank`, `row`) would see right now — the
    /// query the DCA opportunistic flushing scheme and BLISS row-hit rule
    /// are built on. Pure.
    pub fn peek_outcome(&self, bank: u32, row: u32) -> RowOutcome {
        self.banks[bank as usize].classify(row)
    }

    /// When the bus frees for the next burst.
    pub fn bus_free_at(&self) -> SimTime {
        self.bus.free_at()
    }

    /// Earliest start of a burst of direction `kind` (turnaround included).
    pub fn bus_earliest_start(&self, kind: AccessKind) -> SimTime {
        self.bus.earliest_start(kind, &self.params)
    }

    /// Issue `access` at `now`.
    ///
    /// Computes the access's full timing — precharge/activate as needed,
    /// bus serialisation, turnaround penalty — reserves the bank and bus,
    /// updates statistics, and returns the burst window.
    ///
    /// # Panics
    /// Panics if the bank is still busy (`debug_assert` in release-opt
    /// simulations would silently corrupt timing; failing fast is worth
    /// the branch).
    pub fn issue(&mut self, access: DramAccess, now: SimTime) -> IssueInfo {
        let bank = &mut self.banks[access.bank as usize];
        assert!(
            bank.is_free(now),
            "issue to busy bank {} (busy until {:?}, now {:?})",
            access.bank,
            bank.busy_until(),
            now
        );

        let (outcome, cas_at_bank) = bank.cas_ready(access.row, now, &self.params);

        // The data burst must also wait for the bus (plus turnaround).
        let bus_ok = self.bus.earliest_start(access.kind, &self.params);
        let data_earliest_from_bank = cas_at_bank + self.params.t_cas;
        let burst_start = data_earliest_from_bank.max(bus_ok);
        let burst_end = burst_start + access.burst.duration(&self.params);

        // Effective CAS time moves with the burst (a CAS is held back until
        // its data window is clear); tRTP is measured from the CAS.
        let cas_at = burst_start - self.params.t_cas;
        let activated = outcome != RowOutcome::Hit;
        // ACT completes tRCD before the CAS could first use the row.
        let act_at = match outcome {
            RowOutcome::Hit => SimTime::ZERO,
            RowOutcome::Closed => now,
            RowOutcome::Conflict => {
                // PRE happened at cas_at_bank - tRCD - tRP relative window;
                // the ACT directly follows the precharge.
                cas_at_bank - self.params.t_rcd
            }
        };

        self.bus
            .reserve(access.kind, burst_start, burst_end, &self.params);
        bank.commit(
            access.row,
            cas_at,
            burst_end,
            access.kind.is_read(),
            activated,
            act_at,
        );

        match (access.kind, outcome) {
            (AccessKind::Read, RowOutcome::Hit) => self.stats.read_row_hits.inc(),
            (AccessKind::Read, RowOutcome::Closed) => self.stats.read_row_closed.inc(),
            (AccessKind::Read, RowOutcome::Conflict) => self.stats.read_row_conflicts.inc(),
            (AccessKind::Write, RowOutcome::Hit) => self.stats.write_row_hits.inc(),
            (AccessKind::Write, RowOutcome::Closed) => self.stats.write_row_closed.inc(),
            (AccessKind::Write, RowOutcome::Conflict) => self.stats.write_row_conflicts.inc(),
        }
        match access.kind {
            AccessKind::Read => self.stats.reads.inc(),
            AccessKind::Write => self.stats.writes.inc(),
        }

        IssueInfo {
            outcome,
            burst_start,
            burst_end,
        }
    }

    /// Channel statistics so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Bus-level statistics (turnarounds, accesses per turnaround).
    pub fn bus(&self) -> &DataBus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::BurstLen;
    use dca_sim_core::Duration;

    fn ch() -> DramChannel {
        DramChannel::new(TimingParams::paper_stacked(), &Organization::paper())
    }

    fn t(ns_x10: u64) -> SimTime {
        SimTime::ZERO + Duration::from_ps(ns_x10 * 100)
    }

    #[test]
    fn cold_read_takes_act_cas_burst() {
        let mut c = ch();
        let info = c.issue(DramAccess::read(0, 10), SimTime::ZERO);
        assert_eq!(info.outcome, RowOutcome::Closed);
        // tRCD(8) + tCAS(8) = 16ns to burst start, +3.33ns burst.
        assert_eq!(info.burst_start.ps(), 16_000);
        assert_eq!(info.burst_end.ps(), 19_330);
    }

    #[test]
    fn row_hit_back_to_back_reads_pipeline_on_bus() {
        let mut c = ch();
        let a = c.issue(DramAccess::read(0, 10), SimTime::ZERO);
        let b = c.issue(DramAccess::read(0, 10), a.burst_end);
        assert_eq!(b.outcome, RowOutcome::Hit);
        // Bank free at burst_end; CAS+burst from there, bus already free.
        assert_eq!(b.burst_start.ps(), a.burst_end.ps() + 8_000);
    }

    #[test]
    fn different_banks_overlap_prep_but_serialise_bursts() {
        let mut c = ch();
        let a = c.issue(DramAccess::read(0, 10), SimTime::ZERO);
        // Bank 1 starts at time 0 too (both banks free initially)... but we
        // must issue sequentially; issue bank 1 right away at time ZERO.
        let mut c2 = ch();
        let a2 = c2.issue(DramAccess::read(0, 10), SimTime::ZERO);
        let b2 = c2.issue(DramAccess::read(1, 20), SimTime::ZERO);
        // Both pay ACT+CAS = 16ns from t=0, but bursts serialise.
        assert_eq!(a2.burst_start.ps(), 16_000);
        assert_eq!(b2.burst_start.ps(), a2.burst_end.ps());
        assert_eq!(a.burst_end.ps(), 19_330);
    }

    #[test]
    fn same_bank_conflict_respects_tras() {
        let mut c = ch();
        let a = c.issue(DramAccess::read(0, 10), SimTime::ZERO);
        // Conflict on another row, issued as soon as bank frees (19.33ns).
        let b = c.issue(DramAccess::read(0, 99), a.burst_end);
        assert_eq!(b.outcome, RowOutcome::Conflict);
        // earliest PRE = max(act@0 + tRAS 30, cas@8 + tRTP 7.5, 0+tWR... ) = 30ns.
        // CAS = 30 + 8 + 8 = 46ns; burst start = 46+8 = 54ns.
        assert_eq!(b.burst_start.ps(), 54_000);
        assert_eq!(c.stats().read_row_conflicts.get(), 1);
    }

    #[test]
    fn turnaround_penalty_applies_between_directions() {
        let mut c = ch();
        let a = c.issue(DramAccess::read(0, 10), SimTime::ZERO);
        let w = c.issue(DramAccess::write(1, 20), SimTime::ZERO);
        // Write burst must wait for read burst end + tRTW(1.67ns); bank-1
        // prep (16ns) is fully hidden under the read burst (ends 19.33ns).
        assert_eq!(w.burst_start.ps(), a.burst_end.ps() + 1_670);
        assert_eq!(c.bus().turnarounds(), 1);
        // Back to read: burst start = max(bank prep from issue, write burst
        // end + tWTR). Issue late enough that the turnaround term dominates.
        let issue_at = w.burst_start;
        let r2 = c.issue(DramAccess::read(2, 30), issue_at);
        let bank_ready = issue_at.ps() + 16_000; // ACT+CAS on a closed bank
        let turnaround_ready = w.burst_end.ps() + 5_000; // tWTR
        assert_eq!(r2.burst_start.ps(), bank_ready.max(turnaround_ready));
        assert_eq!(c.bus().turnarounds(), 2);

        // And a read issued after the write completes *is* bounded by tWTR.
        let mut c2 = ch();
        let w2 = c2.issue(DramAccess::write(0, 1), SimTime::ZERO);
        let r3 = c2.issue(DramAccess::read(1, 1), SimTime::ZERO);
        // Bank-1 prep (16ns) vs write burst end (14.33+3.33=...)+tWTR.
        assert_eq!(
            r3.burst_start.ps(),
            16_000u64.max(w2.burst_end.ps() + 5_000)
        );
    }

    #[test]
    fn tad_burst_is_longer() {
        let mut c = ch();
        let acc = DramAccess {
            bank: 0,
            row: 1,
            kind: AccessKind::Read,
            burst: BurstLen::Tad80,
        };
        let info = c.issue(acc, SimTime::ZERO);
        assert_eq!(info.burst_end.ps() - info.burst_start.ps(), 4_162);
    }

    #[test]
    #[should_panic(expected = "busy bank")]
    fn issuing_to_busy_bank_panics() {
        let mut c = ch();
        c.issue(DramAccess::read(0, 1), SimTime::ZERO);
        c.issue(DramAccess::read(0, 1), t(1)); // 0.1ns later: bank still busy
    }

    #[test]
    fn peek_matches_issue_outcome() {
        let mut c = ch();
        assert_eq!(c.peek_outcome(0, 5), RowOutcome::Closed);
        let i = c.issue(DramAccess::read(0, 5), SimTime::ZERO);
        assert_eq!(c.peek_outcome(0, 5), RowOutcome::Hit);
        assert_eq!(c.peek_outcome(0, 6), RowOutcome::Conflict);
        assert!(c.bank_free(0, i.burst_end));
        assert!(!c.bank_free(0, SimTime::ZERO + Duration::from_ns(1)));
    }

    #[test]
    fn stats_merge() {
        let mut c = ch();
        c.issue(DramAccess::read(0, 5), SimTime::ZERO);
        c.issue(DramAccess::write(1, 5), SimTime::ZERO);
        let mut total = ChannelStats::default();
        total.merge(c.stats());
        total.merge(c.stats());
        assert_eq!(total.reads.get(), 2);
        assert_eq!(total.writes.get(), 2);
        assert_eq!(total.read_row_closed.get(), 2);
    }

    #[test]
    fn hit_rate_metrics() {
        let mut c = ch();
        let a = c.issue(DramAccess::read(0, 5), SimTime::ZERO);
        let b = c.issue(DramAccess::read(0, 5), a.burst_end);
        let _ = c.issue(DramAccess::read(0, 5), b.burst_end);
        // 1 closed + 2 hits.
        assert!((c.stats().read_row_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.stats().row_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
