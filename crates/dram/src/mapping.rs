//! Address decomposition: cache row frames → (channel, bank, row).
//!
//! The paper uses RoBaRaChCo order (MSB→LSB: Row, Bank, Rank, Channel,
//! Column). The column bits index within a 4 KB row buffer, so what this
//! module maps is the *row-frame index*: the DRAM cache is carved into
//! 4 KB frames, frame `i` lands on a specific (channel, bank, row), with
//! channel varying fastest, then bank, then row — exactly RoBaRaChCo with
//! one rank.
//!
//! The permutation-based remapping of Zhang et al. \[9\] (§VI-A "With
//! Remapping") XORs the bank index with the low bits of the row index, so
//! that streams which would repeatedly conflict in one bank spread across
//! banks instead. The paper shows this mitigates read-read conflicts (RRC)
//! but *not* read priority inversion — which is why DCA still wins with
//! remapping enabled.

use crate::params::Organization;

/// A physical location in the stacked-DRAM device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Bank within the channel.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
}

/// Which bank-index permutation to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MappingScheme {
    /// Plain RoBaRaChCo decomposition.
    #[default]
    Direct,
    /// RoBaRaChCo with the permutation-based XOR remap \[9\]: the bank index
    /// is XORed with the low `log2(banks)` bits of the row index.
    XorRemap,
}

/// Maps row-frame indices to device locations.
#[derive(Clone, Copy, Debug)]
pub struct AddressMapper {
    channels: u64,
    banks: u64,
    rows: u64,
    scheme: MappingScheme,
}

impl AddressMapper {
    /// A mapper for `org` using `scheme`.
    pub fn new(org: &Organization, scheme: MappingScheme) -> Self {
        AddressMapper {
            channels: org.channels as u64,
            banks: org.banks_per_channel() as u64,
            rows: org.rows_per_bank as u64,
            scheme,
        }
    }

    /// Number of row frames this mapper covers.
    pub fn frames(&self) -> u64 {
        self.channels * self.banks * self.rows
    }

    /// The scheme in force.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Decompose row-frame index `frame` into a device location.
    ///
    /// # Panics
    /// Panics if `frame >= self.frames()`.
    pub fn locate(&self, frame: u64) -> Location {
        assert!(frame < self.frames(), "frame {frame} out of range");
        let channel = frame % self.channels;
        let bank_raw = (frame / self.channels) % self.banks;
        let row = frame / (self.channels * self.banks);
        let bank = match self.scheme {
            MappingScheme::Direct => bank_raw,
            MappingScheme::XorRemap => bank_raw ^ (row & (self.banks - 1)),
        };
        Location {
            channel: channel as u32,
            bank: bank as u32,
            row: row as u32,
        }
    }

    /// Globally unique bank id in `0..channels*banks` for a location —
    /// the index space of the DCA controller's RRPC counters (§IV-C).
    pub fn global_bank(&self, loc: Location) -> u32 {
        loc.channel * self.banks as u32 + loc.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn mapper(scheme: MappingScheme) -> AddressMapper {
        AddressMapper::new(&Organization::paper(), scheme)
    }

    #[test]
    fn frame_count_matches_org() {
        let m = mapper(MappingScheme::Direct);
        assert_eq!(m.frames(), 65_536);
    }

    #[test]
    fn consecutive_frames_stripe_channels_first() {
        let m = mapper(MappingScheme::Direct);
        let locs: Vec<Location> = (0..8).map(|f| m.locate(f)).collect();
        // Channel varies fastest (RoBaRaChCo: channel bits just above column).
        assert_eq!(locs[0].channel, 0);
        assert_eq!(locs[1].channel, 1);
        assert_eq!(locs[2].channel, 2);
        assert_eq!(locs[3].channel, 3);
        assert_eq!(locs[4].channel, 0);
        assert_eq!(locs[4].bank, 1); // then bank increments
        assert!(locs.iter().all(|l| l.row == 0));
    }

    #[test]
    fn direct_mapping_is_bijective() {
        let m = mapper(MappingScheme::Direct);
        let mut seen = HashSet::new();
        for f in 0..m.frames() {
            assert!(seen.insert(m.locate(f)), "frame {f} collided");
        }
    }

    #[test]
    fn xor_mapping_is_bijective() {
        let m = mapper(MappingScheme::XorRemap);
        let mut seen = HashSet::new();
        for f in 0..m.frames() {
            assert!(seen.insert(m.locate(f)), "frame {f} collided");
        }
    }

    #[test]
    fn xor_spreads_same_bank_rows() {
        // Frames that land in the same bank with Direct mapping but in
        // different rows get different banks under XorRemap — the property
        // that kills repeated read-read conflicts from strided streams.
        let d = mapper(MappingScheme::Direct);
        let x = mapper(MappingScheme::XorRemap);
        let stride = 4 * 16; // same channel, same bank, consecutive rows
        let banks_direct: HashSet<u32> = (0..16u64).map(|i| d.locate(i * stride).bank).collect();
        let banks_xor: HashSet<u32> = (0..16u64).map(|i| x.locate(i * stride).bank).collect();
        assert_eq!(banks_direct.len(), 1, "direct: all in one bank");
        assert_eq!(banks_xor.len(), 16, "xor: spread across all banks");
    }

    #[test]
    fn xor_preserves_channel_and_row() {
        let d = mapper(MappingScheme::Direct);
        let x = mapper(MappingScheme::XorRemap);
        for f in (0..65_536u64).step_by(257) {
            let a = d.locate(f);
            let b = x.locate(f);
            assert_eq!(a.channel, b.channel);
            assert_eq!(a.row, b.row);
        }
    }

    #[test]
    fn global_bank_is_unique_per_channel_bank() {
        let m = mapper(MappingScheme::Direct);
        let mut seen = HashSet::new();
        for ch in 0..4 {
            for b in 0..16 {
                let g = m.global_bank(Location {
                    channel: ch,
                    bank: b,
                    row: 0,
                });
                assert!(g < 64);
                assert!(seen.insert(g));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_frame_panics() {
        mapper(MappingScheme::Direct).locate(65_536);
    }
}
