//! # dca-dram — tier-generic DRAM device timing model
//!
//! Cycle-level channel/bank/bus machinery parameterised by
//! [`TimingParams`] + [`Organization`], so the same model serves *any
//! memory tier*. Two tiers instantiate it today:
//!
//! * the die-stacked DRAM array that backs the DRAM cache in the paper
//!   (Table II): 4 channels × 1 rank × 16 banks, 4 KB row buffers,
//!   open-page policy, RoBaRaChCo address order
//!   ([`TimingParams::paper_stacked`] / [`Organization::paper`]);
//! * the off-chip DDR4 main memory behind it
//!   ([`TimingParams::ddr4_2400`] / [`Organization::ddr4_main`]),
//!   which `dca-mem-hier`'s cycle-level backend drives through the
//!   identical [`DramChannel`] type.
//!
//! The model operates at *access* granularity: the controller hands the
//! channel a [`DramAccess`] (bank, row, read/write, burst length) and the
//! channel computes, analytically, when the access's data burst starts and
//! ends, honouring:
//!
//! * per-bank row-buffer state — a **row hit** needs only a CAS, a
//!   **closed** bank needs ACT+CAS (tRCD), a **row conflict** needs
//!   PRE+ACT+CAS (tRP + tRCD) and the precharge itself must respect
//!   tRAS / tRTP / tWR;
//! * the shared per-channel data bus — bursts serialise, and switching the
//!   bus between read and write mode costs the turnaround penalties tWTR
//!   (write→read) and tRTW (read→write) that are central to the paper's
//!   CD-vs-ROD-vs-DCA comparison;
//! * bank-level parallelism — PRE/ACT of one bank overlaps bursts of
//!   others, because only the burst occupies the bus.
//!
//! Row-hit/miss/conflict classification and accesses-per-turnaround
//! statistics recorded here feed Figures 14–17 of the paper directly.

pub mod access;
pub mod bank;
pub mod bus;
pub mod channel;
pub mod mapping;
pub mod params;

pub use access::{AccessKind, BurstLen, DramAccess};
pub use bank::{Bank, RowOutcome};
pub use bus::{BusMode, DataBus};
pub use channel::{ChannelStats, DramChannel, IssueInfo};
pub use mapping::{AddressMapper, Location, MappingScheme};
pub use params::{Organization, TimingParams};
