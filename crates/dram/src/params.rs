//! Device timing and organisation parameters (paper Table II).

use dca_sim_core::Duration;

/// DRAM timing parameters. All values are stored in picoseconds.
///
/// Field names follow the JEDEC mnemonics used in the paper:
/// activate-to-CAS (tRCD), CAS latency (tCAS), precharge (tRP), row active
/// minimum (tRAS), write-to-read turnaround (tWTR), read-to-precharge
/// (tRTP), read-to-write turnaround (tRTW), write recovery (tWR) and the
/// 64-byte data burst time (tBURST).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingParams {
    /// ACT → CAS delay.
    pub t_rcd: Duration,
    /// CAS → first data beat.
    pub t_cas: Duration,
    /// PRE duration.
    pub t_rp: Duration,
    /// Minimum row-open time (ACT → PRE).
    pub t_ras: Duration,
    /// Write→read bus turnaround.
    pub t_wtr: Duration,
    /// Read CAS → PRE minimum.
    pub t_rtp: Duration,
    /// Read→write bus turnaround.
    pub t_rtw: Duration,
    /// Write recovery: end of write burst → PRE minimum.
    pub t_wr: Duration,
    /// Data burst for one 64-byte block.
    pub t_burst: Duration,
}

impl TimingParams {
    /// The paper's die-stacked DRAM timings (Table II):
    /// tRCD-tCAS-tRP-tRAS = 8-8-8-30 ns, tWTR-tRTP-tRTW = 5-7.5-1.67 ns,
    /// tWR-tBURST = 15-3.33 ns.
    pub fn paper_stacked() -> Self {
        TimingParams {
            t_rcd: Duration::from_ns(8),
            t_cas: Duration::from_ns(8),
            t_rp: Duration::from_ns(8),
            t_ras: Duration::from_ns(30),
            t_wtr: Duration::from_ns(5),
            t_rtp: Duration::from_ns_f64(7.5),
            t_rtw: Duration::from_ns_f64(1.67),
            t_wr: Duration::from_ns(15),
            t_burst: Duration::from_ns_f64(3.33),
        }
    }

    /// Commodity DDR3-1600 timings quoted in §II-A, used by tests that
    /// check the turnaround narrative (tWTR = 7.5 ns, tRTW = 2.5 ns).
    pub fn ddr3_1600() -> Self {
        TimingParams {
            t_rcd: Duration::from_ns_f64(13.75),
            t_cas: Duration::from_ns_f64(13.75),
            t_rp: Duration::from_ns_f64(13.75),
            t_ras: Duration::from_ns(35),
            t_wtr: Duration::from_ns_f64(7.5),
            t_rtp: Duration::from_ns_f64(7.5),
            t_rtw: Duration::from_ns_f64(2.5),
            t_wr: Duration::from_ns(15),
            t_burst: Duration::from_ns(5),
        }
    }

    /// Commodity DDR4-2400 timings (CL17-ish speed grade), the off-chip
    /// *main-memory* tier behind the DRAM cache. A 64-byte block on a
    /// 64-bit × 2400 MT/s channel bursts in 8 beats = 3.33 ns, matching
    /// the 16 GB/s pin bandwidth Table II's flat model assumes.
    pub fn ddr4_2400() -> Self {
        TimingParams {
            t_rcd: Duration::from_ns_f64(14.16),
            t_cas: Duration::from_ns_f64(14.16),
            t_rp: Duration::from_ns_f64(14.16),
            t_ras: Duration::from_ns(32),
            t_wtr: Duration::from_ns_f64(7.5),
            t_rtp: Duration::from_ns_f64(7.5),
            t_rtw: Duration::from_ns_f64(2.5),
            t_wr: Duration::from_ns(15),
            t_burst: Duration::from_ns_f64(3.33),
        }
    }

    /// A 3DXPoint-like slow persistent-memory tier behind a DDR-style
    /// interface (the gem5 unified DRAM-cache controller for 3DXPoint
    /// models the same shape). Reads pay a long media sensing time
    /// (tRCD ≈ 120 ns vs DDR4's 14 ns); writes are far slower still —
    /// the write recovery tWR ≈ 400 ns holds the bank through the
    /// media program, so write-heavy traffic serialises hard. The bus
    /// interface (tCAS, tBURST) stays DDR4-like: the media, not the
    /// link, is the bottleneck.
    pub fn xpoint() -> Self {
        TimingParams {
            t_rcd: Duration::from_ns(120),
            t_cas: Duration::from_ns_f64(14.16),
            t_rp: Duration::from_ns(20),
            t_ras: Duration::from_ns(160),
            t_wtr: Duration::from_ns(30),
            t_rtp: Duration::from_ns_f64(7.5),
            t_rtw: Duration::from_ns_f64(2.5),
            t_wr: Duration::from_ns(400),
            t_burst: Duration::from_ns_f64(3.33),
        }
    }

    /// Scale the data-burst time by `div`, dividing the channel's data
    /// bandwidth by the same factor while leaving the core timings
    /// untouched — the knob behind the main-memory-bandwidth
    /// sensitivity sweep.
    pub fn with_bandwidth_divisor(mut self, div: u32) -> Self {
        assert!(div >= 1, "bandwidth divisor must be >= 1");
        self.t_burst = Duration::from_ps(self.t_burst.ps() * div as u64);
        self
    }

    /// Latency of a best-case read row hit (CAS + burst), used for sanity
    /// checks and documentation examples.
    pub fn row_hit_read_latency(&self) -> Duration {
        self.t_cas + self.t_burst
    }

    /// Latency of a worst-case read row conflict (PRE + ACT + CAS + burst),
    /// assuming tRAS/tRTP/tWR already satisfied.
    pub fn row_conflict_read_latency(&self) -> Duration {
        self.t_rp + self.t_rcd + self.t_cas + self.t_burst
    }
}

/// Physical organisation of the stacked-DRAM array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Organization {
    /// Independent channels, each with its own controller, bus and banks.
    pub channels: u32,
    /// Ranks per channel (paper: 1).
    pub ranks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row buffer size in bytes.
    pub row_bytes: u32,
}

impl Organization {
    /// The paper's organisation: 4 channels, 1 rank/channel, 16 banks/rank,
    /// 4 KB row buffer. Rows-per-bank is derived from the 256 MB capacity:
    /// 256 MB / (4 ch × 16 banks × 4 KB) = 1024 rows.
    pub fn paper() -> Self {
        Organization {
            channels: 4,
            ranks: 1,
            banks_per_rank: 16,
            rows_per_bank: 1024,
            row_bytes: 4096,
        }
    }

    /// One off-chip DDR4-style main-memory channel: 16 banks, 8 KB rows,
    /// 32 K rows/bank = 4 GB. The channel/bank/bus machinery is
    /// tier-generic — this preset simply instantiates it with
    /// main-memory geometry instead of the stacked-DRAM one.
    pub fn ddr4_main() -> Self {
        Organization {
            channels: 1,
            ranks: 1,
            banks_per_rank: 16,
            rows_per_bank: 32_768,
            row_bytes: 8192,
        }
    }

    /// Banks per channel (ranks × banks/rank).
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks * self.banks_per_rank
    }

    /// Total banks across all channels (the paper's RRPC state covers all
    /// 64 of them).
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel()
    }

    /// Total rows across the device (= number of 4 KB row frames the
    /// DRAM cache is carved into).
    pub fn total_rows(&self) -> u64 {
        self.channels as u64 * self.banks_per_channel() as u64 * self.rows_per_bank as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_rows() * self.row_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timing_values() {
        let t = TimingParams::paper_stacked();
        assert_eq!(t.t_rcd.ps(), 8_000);
        assert_eq!(t.t_cas.ps(), 8_000);
        assert_eq!(t.t_rp.ps(), 8_000);
        assert_eq!(t.t_ras.ps(), 30_000);
        assert_eq!(t.t_wtr.ps(), 5_000);
        assert_eq!(t.t_rtp.ps(), 7_500);
        assert_eq!(t.t_rtw.ps(), 1_670);
        assert_eq!(t.t_wr.ps(), 15_000);
        assert_eq!(t.t_burst.ps(), 3_330);
    }

    #[test]
    fn wtr_dominates_rtw() {
        // §II-A: write→read turnarounds are the expensive direction in
        // both commodity and stacked parts; the asymmetry matters for the
        // write-drain policies.
        let stacked = TimingParams::paper_stacked();
        let ddr3 = TimingParams::ddr3_1600();
        assert!(stacked.t_wtr > stacked.t_rtw);
        assert!(ddr3.t_wtr > ddr3.t_rtw);
    }

    #[test]
    fn paper_organisation_capacity_is_256mb() {
        let org = Organization::paper();
        assert_eq!(org.capacity_bytes(), 256 * 1024 * 1024);
        assert_eq!(org.total_banks(), 64);
        assert_eq!(org.banks_per_channel(), 16);
        assert_eq!(org.total_rows(), 65_536);
    }

    #[test]
    fn ddr4_main_memory_presets() {
        let t = TimingParams::ddr4_2400();
        // 64 B on a 64-bit × 2400 MT/s channel: 3.33 ns, i.e. the same
        // 16 GB/s the flat model's "2 GHz × 64-bit bus" serialises at.
        assert_eq!(t.t_burst.ps(), 3_330);
        assert!(t.t_wtr > t.t_rtw, "WTR asymmetry holds off-chip too");
        let org = Organization::ddr4_main();
        assert_eq!(org.capacity_bytes(), 4 << 30);
        assert_eq!(org.banks_per_channel(), 16);
    }

    #[test]
    fn xpoint_is_slow_and_write_asymmetric() {
        let x = TimingParams::xpoint();
        let d = TimingParams::ddr4_2400();
        assert_eq!(x.t_rcd.ps(), 120_000);
        assert_eq!(x.t_wr.ps(), 400_000);
        assert!(
            x.t_rcd.ps() > 5 * d.t_rcd.ps(),
            "reads pay the media sensing time"
        );
        assert!(
            x.t_wr.ps() > 20 * d.t_wr.ps(),
            "writes pay the media program time"
        );
        assert!(x.t_wtr > x.t_rtw, "WTR asymmetry holds for XPoint too");
        assert_eq!(x.t_burst, d.t_burst, "the link itself is DDR4-like");
    }

    #[test]
    fn bandwidth_divisor_scales_burst_only() {
        let base = TimingParams::ddr4_2400();
        let half = base.with_bandwidth_divisor(2);
        assert_eq!(half.t_burst.ps(), 2 * base.t_burst.ps());
        assert_eq!(half.t_rcd, base.t_rcd);
        assert_eq!(half.t_wtr, base.t_wtr);
        assert_eq!(base.with_bandwidth_divisor(1), base);
    }

    #[test]
    fn derived_latencies() {
        let t = TimingParams::paper_stacked();
        assert_eq!(t.row_hit_read_latency().ps(), 11_330);
        assert_eq!(t.row_conflict_read_latency().ps(), 27_330);
    }
}
