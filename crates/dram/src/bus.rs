//! Per-channel data bus with read/write turnaround accounting.

use dca_sim_core::{Counter, SimTime};

use crate::access::AccessKind;
use crate::params::TimingParams;

/// Current drive direction of the bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusMode {
    /// Bus is in read mode.
    Read,
    /// Bus is in write mode.
    Write,
}

impl From<AccessKind> for BusMode {
    fn from(kind: AccessKind) -> Self {
        match kind {
            AccessKind::Read => BusMode::Read,
            AccessKind::Write => BusMode::Write,
        }
    }
}

/// The shared data bus of one channel.
///
/// Bursts serialise on the bus; a direction switch inserts the turnaround
/// penalty (tWTR for write→read, tRTW for read→write) between the end of
/// the previous burst and the start of the next. The bus also keeps the
/// counters behind the paper's "accesses per turnaround" metric
/// (Figs 14–15).
#[derive(Clone, Debug)]
pub struct DataBus {
    mode: Option<BusMode>,
    free_at: SimTime,
    /// Total bursts carried.
    accesses: Counter,
    /// Direction switches.
    turnarounds: Counter,
    /// Sum of turnaround penalty time inserted.
    turnaround_ps: u64,
    /// Bursts carried since the last direction switch (for diagnostics).
    run_length: u64,
}

impl Default for DataBus {
    fn default() -> Self {
        Self::new()
    }
}

impl DataBus {
    /// An idle bus with no direction history.
    pub fn new() -> Self {
        DataBus {
            mode: None,
            free_at: SimTime::ZERO,
            accesses: Counter::default(),
            turnarounds: Counter::default(),
            turnaround_ps: 0,
            run_length: 0,
        }
    }

    /// Instant the bus becomes free for the next burst.
    #[inline]
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Current direction, `None` before the first burst.
    #[inline]
    pub fn mode(&self) -> Option<BusMode> {
        self.mode
    }

    /// Earliest instant a burst of direction `kind` may *start*, given the
    /// bus becomes free at `free_at` and any turnaround penalty. Pure
    /// query — used by schedulers to cost candidate accesses.
    pub fn earliest_start(&self, kind: AccessKind, p: &TimingParams) -> SimTime {
        let want: BusMode = kind.into();
        match self.mode {
            Some(have) if have != want => {
                let penalty = match want {
                    BusMode::Read => p.t_wtr,  // write -> read
                    BusMode::Write => p.t_rtw, // read -> write
                };
                self.free_at + penalty
            }
            _ => self.free_at,
        }
    }

    /// Reserve the bus for a burst of direction `kind` running
    /// `[start, end)`. `start` must already satisfy `earliest_start`.
    /// Updates turnaround statistics.
    pub fn reserve(&mut self, kind: AccessKind, start: SimTime, end: SimTime, p: &TimingParams) {
        debug_assert!(
            start >= self.earliest_start(kind, p),
            "burst start violates turnaround"
        );
        debug_assert!(end > start);
        let want: BusMode = kind.into();
        if let Some(have) = self.mode {
            if have != want {
                self.turnarounds.inc();
                let penalty = match want {
                    BusMode::Read => p.t_wtr,
                    BusMode::Write => p.t_rtw,
                };
                self.turnaround_ps += penalty.ps();
                self.run_length = 0;
            }
        }
        self.mode = Some(want);
        self.free_at = end;
        self.accesses.inc();
        self.run_length += 1;
    }

    /// Total bursts carried.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Total direction switches.
    pub fn turnarounds(&self) -> u64 {
        self.turnarounds.get()
    }

    /// Total picoseconds of turnaround penalty inserted.
    pub fn turnaround_time_ps(&self) -> u64 {
        self.turnaround_ps
    }

    /// Accesses per turnaround — the paper's Fig 14/15 metric. When no
    /// turnaround ever happened, returns the total access count.
    pub fn accesses_per_turnaround(&self) -> f64 {
        let t = self.turnarounds.get();
        if t == 0 {
            self.accesses.get() as f64
        } else {
            self.accesses.get() as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_sim_core::Duration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn first_burst_has_no_penalty() {
        let p = TimingParams::paper_stacked();
        let bus = DataBus::new();
        assert_eq!(bus.earliest_start(AccessKind::Read, &p), SimTime::ZERO);
        assert_eq!(bus.earliest_start(AccessKind::Write, &p), SimTime::ZERO);
    }

    #[test]
    fn same_direction_has_no_penalty() {
        let p = TimingParams::paper_stacked();
        let mut bus = DataBus::new();
        bus.reserve(AccessKind::Read, t(0), t(3), &p);
        assert_eq!(bus.earliest_start(AccessKind::Read, &p), t(3));
        assert_eq!(bus.turnarounds(), 0);
    }

    #[test]
    fn write_to_read_costs_twtr() {
        let p = TimingParams::paper_stacked();
        let mut bus = DataBus::new();
        bus.reserve(AccessKind::Write, t(0), t(3), &p);
        // tWTR = 5ns.
        assert_eq!(bus.earliest_start(AccessKind::Read, &p), t(8));
        bus.reserve(AccessKind::Read, t(8), t(11), &p);
        assert_eq!(bus.turnarounds(), 1);
        assert_eq!(bus.turnaround_time_ps(), 5_000);
    }

    #[test]
    fn read_to_write_costs_trtw() {
        let p = TimingParams::paper_stacked();
        let mut bus = DataBus::new();
        bus.reserve(AccessKind::Read, t(0), t(3), &p);
        // tRTW = 1.67ns.
        let start = bus.earliest_start(AccessKind::Write, &p);
        assert_eq!(start.ps(), 3_000 + 1_670);
        bus.reserve(AccessKind::Write, start, start + Duration::from_ns(3), &p);
        assert_eq!(bus.turnarounds(), 1);
        assert_eq!(bus.turnaround_time_ps(), 1_670);
    }

    #[test]
    fn accesses_per_turnaround_metric() {
        let p = TimingParams::paper_stacked();
        let mut bus = DataBus::new();
        // 3 reads, switch, 3 writes, switch, 2 reads => 8 accesses, 2 turnarounds.
        let mut now = SimTime::ZERO;
        for _ in 0..3 {
            let s = bus.earliest_start(AccessKind::Read, &p).max(now);
            bus.reserve(AccessKind::Read, s, s + Duration::from_ns(3), &p);
            now = bus.free_at();
        }
        for _ in 0..3 {
            let s = bus.earliest_start(AccessKind::Write, &p).max(now);
            bus.reserve(AccessKind::Write, s, s + Duration::from_ns(3), &p);
            now = bus.free_at();
        }
        for _ in 0..2 {
            let s = bus.earliest_start(AccessKind::Read, &p).max(now);
            bus.reserve(AccessKind::Read, s, s + Duration::from_ns(3), &p);
            now = bus.free_at();
        }
        assert_eq!(bus.accesses(), 8);
        assert_eq!(bus.turnarounds(), 2);
        assert!((bus.accesses_per_turnaround() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn no_turnaround_reports_access_count() {
        let bus = DataBus::new();
        assert_eq!(bus.accesses_per_turnaround(), 0.0);
    }
}
