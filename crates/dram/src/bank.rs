//! Per-bank row-buffer state machine (open-page policy).

use dca_sim_core::SimTime;

use crate::params::TimingParams;

/// How an access meets the bank's current row-buffer state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The target row is already open: CAS only.
    Hit,
    /// The bank has no open row: ACT + CAS.
    Closed,
    /// A different row is open: PRE + ACT + CAS. This is the expensive
    /// case behind the paper's read-read-conflict (RRC) analysis.
    Conflict,
}

impl RowOutcome {
    /// True if this outcome required closing a previously open row.
    pub fn is_conflict(self) -> bool {
        matches!(self, RowOutcome::Conflict)
    }
}

/// One DRAM bank under the open-page policy.
///
/// Tracks the open row plus the timestamps needed to honour tRAS (minimum
/// row-open time), tRTP (read-to-precharge) and tWR (write recovery) when
/// the next row conflict forces a precharge.
#[derive(Clone, Copy, Debug)]
pub struct Bank {
    open_row: Option<u32>,
    /// Bank is executing an access until this instant (its data burst end).
    busy_until: SimTime,
    /// Time of the last ACT on this bank.
    act_at: SimTime,
    /// CAS time of the last read on this bank.
    last_read_cas: SimTime,
    /// End of the last write burst on this bank.
    last_write_end: SimTime,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A bank with all rows closed and no timing history.
    pub fn new() -> Self {
        Bank {
            open_row: None,
            busy_until: SimTime::ZERO,
            act_at: SimTime::ZERO,
            last_read_cas: SimTime::ZERO,
            last_write_end: SimTime::ZERO,
        }
    }

    /// Currently open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Whether the bank has finished its in-flight access by `now`.
    #[inline]
    pub fn is_free(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Instant at which the in-flight access (if any) completes.
    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Classify an access to `row` against the current row-buffer state.
    #[inline]
    pub fn classify(&self, row: u32) -> RowOutcome {
        match self.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        }
    }

    /// Earliest instant a precharge may be issued, per tRAS / tRTP / tWR.
    pub fn earliest_precharge(&self, p: &TimingParams) -> SimTime {
        let ras_done = self.act_at + p.t_ras;
        let rtp_done = self.last_read_cas + p.t_rtp;
        let wr_done = self.last_write_end + p.t_wr;
        ras_done.max(rtp_done).max(wr_done)
    }

    /// Compute when a CAS for `row` could issue, starting the access at
    /// `now`, and return it with the row outcome. Does not mutate state —
    /// the channel commits the access separately via [`Bank::commit`].
    pub fn cas_ready(&self, row: u32, now: SimTime, p: &TimingParams) -> (RowOutcome, SimTime) {
        let outcome = self.classify(row);
        let cas_at = match outcome {
            RowOutcome::Hit => now,
            RowOutcome::Closed => now + p.t_rcd,
            RowOutcome::Conflict => {
                let pre_at = now.max(self.earliest_precharge(p));
                pre_at + p.t_rp + p.t_rcd
            }
        };
        (outcome, cas_at)
    }

    /// Commit an access: open `row`, mark the bank busy until `burst_end`,
    /// and record the timing history needed for future precharges.
    ///
    /// `cas_at` is the CAS command time, `burst_end` the end of the data
    /// burst, `is_read` the access direction, `activated` whether this
    /// access performed an ACT (closed bank or conflict).
    pub fn commit(
        &mut self,
        row: u32,
        cas_at: SimTime,
        burst_end: SimTime,
        is_read: bool,
        activated: bool,
        act_at: SimTime,
    ) {
        self.open_row = Some(row);
        self.busy_until = burst_end;
        if activated {
            self.act_at = act_at;
        }
        if is_read {
            self.last_read_cas = cas_at;
        } else {
            self.last_write_end = burst_end;
        }
    }

    /// Explicitly close the open row (used by tests and refresh modelling).
    pub fn precharge(&mut self) {
        self.open_row = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_sim_core::Duration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn classify_covers_all_states() {
        let mut b = Bank::new();
        assert_eq!(b.classify(5), RowOutcome::Closed);
        b.commit(5, t(8), t(19), true, true, t(0));
        assert_eq!(b.classify(5), RowOutcome::Hit);
        assert_eq!(b.classify(6), RowOutcome::Conflict);
        assert!(b.classify(6).is_conflict());
        b.precharge();
        assert_eq!(b.classify(5), RowOutcome::Closed);
    }

    #[test]
    fn closed_bank_pays_trcd() {
        let p = TimingParams::paper_stacked();
        let b = Bank::new();
        let (outcome, cas) = b.cas_ready(3, t(100), &p);
        assert_eq!(outcome, RowOutcome::Closed);
        assert_eq!(cas, t(108)); // +tRCD (8ns)
    }

    #[test]
    fn hit_needs_no_prep() {
        let p = TimingParams::paper_stacked();
        let mut b = Bank::new();
        b.commit(3, t(8), t(19), true, true, t(0));
        let (outcome, cas) = b.cas_ready(3, t(100), &p);
        assert_eq!(outcome, RowOutcome::Hit);
        assert_eq!(cas, t(100));
    }

    #[test]
    fn conflict_pays_pre_plus_act_and_respects_tras() {
        let p = TimingParams::paper_stacked();
        let mut b = Bank::new();
        // ACT at t=0; tRAS=30ns means no PRE before t=30.
        b.commit(3, t(8), t(19), true, true, t(0));
        // Request a different row at t=20: PRE must wait to max(tRAS end, tRTP end).
        let (outcome, cas) = b.cas_ready(4, t(20), &p);
        assert_eq!(outcome, RowOutcome::Conflict);
        // earliest_precharge = max(0+30, 8+7.5, 0+15) = 30ns; cas = 30+8+8 = 46ns.
        assert_eq!(cas, t(46));
        // Requesting late enough that constraints are already met: PRE at now.
        let (_, cas2) = b.cas_ready(4, t(1000), &p);
        assert_eq!(cas2, t(1016));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let p = TimingParams::paper_stacked();
        let mut b = Bank::new();
        // A write whose burst ends at t=50: tWR=15ns blocks PRE until t=65.
        b.commit(7, t(40), t(50), false, true, t(30));
        let ep = b.earliest_precharge(&p);
        assert_eq!(ep, t(65));
        let (outcome, cas) = b.cas_ready(9, t(55), &p);
        assert_eq!(outcome, RowOutcome::Conflict);
        assert_eq!(cas, t(65 + 16));
    }

    #[test]
    fn busy_tracking() {
        let mut b = Bank::new();
        assert!(b.is_free(t(0)));
        b.commit(1, t(8), t(20), true, true, t(0));
        assert!(!b.is_free(t(10)));
        assert!(b.is_free(t(20)));
        assert_eq!(b.busy_until(), t(20));
    }
}
