//! Property-based tests for the DRAM device model: bus exclusivity,
//! timing monotonicity and mapping bijectivity under arbitrary access
//! sequences.

use dca_dram::{
    AccessKind, AddressMapper, BurstLen, DramAccess, DramChannel, MappingScheme, Organization,
    RowOutcome, TimingParams,
};
use dca_sim_core::SimTime;
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = DramAccess> {
    (0u32..16, 0u32..64, any::<bool>(), any::<bool>()).prop_map(|(bank, row, write, tad)| {
        DramAccess {
            bank,
            row,
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            burst: if tad {
                BurstLen::Tad80
            } else {
                BurstLen::Block64
            },
        }
    })
}

proptest! {
    /// Data bursts never overlap on the shared bus, regardless of the
    /// access sequence, and per-bank issue order is respected.
    #[test]
    fn bursts_serialise_on_the_bus(accesses in prop::collection::vec(arb_access(), 1..100)) {
        let mut ch = DramChannel::new(TimingParams::paper_stacked(), &Organization::paper());
        let mut windows: Vec<(u64, u64)> = Vec::new();
        let mut now = SimTime::ZERO;
        for acc in accesses {
            // Wait for the bank if it's busy (the controller contract).
            let at = now.max(ch.bank_busy_until(acc.bank));
            let info = ch.issue(acc, at);
            prop_assert!(info.burst_end > info.burst_start);
            prop_assert!(info.burst_start >= at);
            windows.push((info.burst_start.ps(), info.burst_end.ps()));
            // Advance "now" sometimes to interleave, sometimes not.
            if acc.bank % 2 == 0 {
                now = info.burst_end;
            }
        }
        windows.sort_unstable();
        for pair in windows.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "bus overlap: {pair:?}");
        }
    }

    /// The row outcome reported by issue always matches the preceding
    /// peek, and a repeat access to the same row is a hit.
    #[test]
    fn peek_predicts_issue(accesses in prop::collection::vec(arb_access(), 1..60)) {
        let mut ch = DramChannel::new(TimingParams::paper_stacked(), &Organization::paper());
        for acc in accesses {
            let at = ch.bank_busy_until(acc.bank);
            let predicted = ch.peek_outcome(acc.bank, acc.row);
            let info = ch.issue(acc, at);
            prop_assert_eq!(predicted, info.outcome);
            prop_assert_eq!(ch.peek_outcome(acc.bank, acc.row), RowOutcome::Hit);
        }
    }

    /// Channel statistics are conserved: hits + closed + conflicts equals
    /// the access count, per direction.
    #[test]
    fn stats_are_conserved(accesses in prop::collection::vec(arb_access(), 1..120)) {
        let mut ch = DramChannel::new(TimingParams::paper_stacked(), &Organization::paper());
        for acc in &accesses {
            let at = ch.bank_busy_until(acc.bank);
            ch.issue(*acc, at);
        }
        let s = ch.stats();
        prop_assert_eq!(
            s.reads.get(),
            s.read_row_hits.get() + s.read_row_closed.get() + s.read_row_conflicts.get()
        );
        prop_assert_eq!(
            s.writes.get(),
            s.write_row_hits.get() + s.write_row_closed.get() + s.write_row_conflicts.get()
        );
        prop_assert_eq!(s.reads.get() + s.writes.get(), accesses.len() as u64);
        prop_assert_eq!(ch.bus().accesses(), accesses.len() as u64);
    }

    /// Both mapping schemes are bijections over the frame space.
    #[test]
    fn mappings_are_bijective(xor in any::<bool>()) {
        let scheme = if xor { MappingScheme::XorRemap } else { MappingScheme::Direct };
        let m = AddressMapper::new(&Organization::paper(), scheme);
        let mut seen = std::collections::HashSet::with_capacity(m.frames() as usize);
        for f in 0..m.frames() {
            prop_assert!(seen.insert(m.locate(f)));
        }
    }

    /// Turnaround accounting: the number of turnarounds is exactly the
    /// number of direction switches in the issue order.
    #[test]
    fn turnaround_count_matches_switches(accesses in prop::collection::vec(arb_access(), 1..100)) {
        let mut ch = DramChannel::new(TimingParams::paper_stacked(), &Organization::paper());
        let mut switches = 0u64;
        let mut last: Option<AccessKind> = None;
        for acc in &accesses {
            let at = ch.bank_busy_until(acc.bank);
            ch.issue(*acc, at);
            if let Some(prev) = last {
                if prev != acc.kind {
                    switches += 1;
                }
            }
            last = Some(acc.kind);
        }
        prop_assert_eq!(ch.bus().turnarounds(), switches);
    }
}
