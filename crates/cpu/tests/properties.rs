//! Property-based tests for the core model and trace generators.

use dca_cpu::{Benchmark, Core, CoreConfig, MemOp, MemPort, PortResponse, TraceGen};
use dca_sim_core::{Duration, SimTime};
use proptest::prelude::*;

struct FixedPort(Duration);
impl MemPort for FixedPort {
    fn access(&mut self, _op: MemOp, at: SimTime) -> PortResponse {
        PortResponse::Complete(at + self.0)
    }
}

fn arb_bench() -> impl Strategy<Value = Benchmark> {
    (0usize..Benchmark::ALL.len()).prop_map(|i| Benchmark::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generators are reproducible and stay inside their address region
    /// for every benchmark and seed.
    #[test]
    fn generators_deterministic_and_bounded(bench in arb_bench(), seed in any::<u64>()) {
        let base = 1u64 << 30;
        let ws = bench.profile().ws_blocks;
        let mut a = TraceGen::new(bench.profile(), base, seed);
        let mut b = TraceGen::new(bench.profile(), base, seed);
        for _ in 0..2000 {
            let (x, y) = (a.next_op(), b.next_op());
            prop_assert_eq!(x.block, y.block);
            prop_assert_eq!(x.gap, y.gap);
            prop_assert!(x.block >= base && x.block < base + ws);
            prop_assert!(x.chain < 8);
        }
    }

    /// The core always completes its instruction budget on a responsive
    /// hierarchy, and IPC is monotone in memory latency.
    #[test]
    fn core_completes_and_latency_hurts(bench in arb_bench(), seed in any::<u64>()) {
        let run = |lat_cycles: u64| {
            let gen = TraceGen::new(bench.profile(), 0, seed);
            let mut core = Core::new(0, CoreConfig::paper(30_000), gen);
            let mut port = FixedPort(Duration::from_cpu_cycles(lat_cycles));
            let state = core.advance(&mut port, SimTime::ZERO);
            prop_assert_eq!(state, dca_cpu::CoreState::Finished);
            prop_assert!(core.insts() >= 30_000);
            Ok(core.ipc())
        };
        let fast = run(1)?;
        let slow = run(400)?;
        prop_assert!(fast > slow, "ipc must fall with latency: {fast} vs {slow}");
    }

    /// Virtual time never runs behind the wake time handed to advance.
    #[test]
    fn core_time_respects_now(bench in arb_bench(), wake_ns in 0u64..1_000_000) {
        let gen = TraceGen::new(bench.profile(), 0, 1);
        let mut core = Core::new(0, CoreConfig::paper(5_000), gen);
        let mut port = FixedPort(Duration::from_cpu_cycles(2));
        let now = SimTime::ZERO + Duration::from_ns(wake_ns);
        core.advance(&mut port, now);
        prop_assert!(core.time() >= now);
    }
}
