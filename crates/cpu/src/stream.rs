//! [`OpStream`] — the one op source a [`Core`](crate::core::Core)
//! executes, unifying the synthetic generators ([`TraceGen`]) and the
//! trace-file replayers ([`TraceReader`]) behind a single
//! `next_op`/`snapshot`/`restore`/`encode`/`decode` surface.
//!
//! Everything above this module (the core model, the system warm-up,
//! warm-state checkpoints) is agnostic to where ops come from; this
//! enum is the only place that dispatches. The encoded form is a
//! one-byte kind tag followed by the variant's own payload, so a
//! checkpoint written for a synthetic workload can never be misread as
//! a trace replay cursor or vice versa.

use dca_sim_core::{ByteReader, ByteWriter, CodecError};

use crate::profile::Benchmark;
use crate::trace::{TraceGen, TraceOp};
use crate::tracefile::TraceReader;

/// Kind tags of the encoded form.
const KIND_GEN: u8 = 0;
const KIND_REPLAY: u8 = 1;

/// A deterministic, checkpointable source of memory operations.
#[derive(Clone, Debug)]
pub enum OpStream {
    /// Synthetic generator (Table I profiles).
    Gen(TraceGen),
    /// Trace-file replayer.
    Replay(TraceReader),
}

impl OpStream {
    /// The stream for `bench` over the region starting at block `base`:
    /// a seeded [`TraceGen`] for synthetic benchmarks, a [`TraceReader`]
    /// for registered traces (`seed` is irrelevant to a replay — the
    /// records *are* the stream).
    pub fn for_bench(bench: Benchmark, base: u64, seed: u64) -> OpStream {
        match bench {
            Benchmark::Trace(id) => OpStream::Replay(TraceReader::new(id, base)),
            b => OpStream::Gen(TraceGen::new(b.profile(), base, seed)),
        }
    }

    /// The workload this stream produces.
    pub fn bench(&self) -> Benchmark {
        match self {
            OpStream::Gen(g) => g.profile().bench,
            OpStream::Replay(r) => r.bench(),
        }
    }

    /// Produce the next op.
    #[inline]
    pub fn next_op(&mut self) -> TraceOp {
        match self {
            OpStream::Gen(g) => g.next_op(),
            OpStream::Replay(r) => r.next_op(),
        }
    }

    /// Ops produced so far.
    pub fn generated(&self) -> u64 {
        match self {
            OpStream::Gen(g) => g.generated(),
            OpStream::Replay(r) => r.generated(),
        }
    }

    /// Capture the stream mid-flight as an owned checkpoint.
    pub fn snapshot(&self) -> OpStream {
        self.clone()
    }

    /// Overwrite this stream's state with a previously captured
    /// snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot drives a different workload kind,
    /// benchmark or region.
    pub fn restore(&mut self, snap: &OpStream) {
        match (self, snap) {
            (OpStream::Gen(g), OpStream::Gen(s)) => g.restore(s),
            (OpStream::Replay(r), OpStream::Replay(s)) => r.restore(s),
            _ => panic!("snapshot workload identity mismatch: generator vs trace replay"),
        }
    }

    /// Serialise the stream state (checkpoint-file payload).
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            OpStream::Gen(g) => {
                w.put_u8(KIND_GEN);
                g.encode(w);
            }
            OpStream::Replay(r) => {
                w.put_u8(KIND_REPLAY);
                r.encode(w);
            }
        }
    }

    /// Rebuild a stream from an [`OpStream::encode`] payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<OpStream, CodecError> {
        match r.u8()? {
            KIND_GEN => Ok(OpStream::Gen(TraceGen::decode(r)?)),
            KIND_REPLAY => Ok(OpStream::Replay(TraceReader::decode(r)?)),
            _ => Err(CodecError::new("unknown op-stream kind")),
        }
    }
}

impl From<TraceGen> for OpStream {
    fn from(g: TraceGen) -> Self {
        OpStream::Gen(g)
    }
}

impl From<TraceReader> for OpStream {
    fn from(r: TraceReader) -> Self {
        OpStream::Replay(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracefile::{encode_trace, register_trace_bytes, TraceEncoding, TraceRecord};

    fn trace_bench() -> Benchmark {
        let records: Vec<TraceRecord> = (0..64)
            .map(|i| TraceRecord {
                gap: 3,
                block: i * 5 % 97,
                is_store: i % 4 == 0,
            })
            .collect();
        register_trace_bytes(
            "opstream-test",
            &encode_trace(&records, TraceEncoding::Delta),
        )
        .expect("register")
    }

    fn ops_equal(a: &TraceOp, b: &TraceOp) -> bool {
        a.block == b.block
            && a.is_store == b.is_store
            && a.gap == b.gap
            && a.pc == b.pc
            && a.dependent == b.dependent
            && a.chain == b.chain
    }

    #[test]
    fn dispatches_by_bench_kind() {
        let syn = OpStream::for_bench(Benchmark::Gcc, 1 << 26, 9);
        assert!(matches!(syn, OpStream::Gen(_)));
        assert_eq!(syn.bench(), Benchmark::Gcc);
        let tb = trace_bench();
        let rep = OpStream::for_bench(tb, 2 << 26, 9);
        assert!(matches!(rep, OpStream::Replay(_)));
        assert_eq!(rep.bench(), tb);
    }

    #[test]
    fn codec_round_trips_both_kinds_mid_stream() {
        for bench in [Benchmark::Mcf, trace_bench()] {
            let mut s = OpStream::for_bench(bench, 1 << 26, 5);
            for _ in 0..321 {
                s.next_op();
            }
            let mut w = ByteWriter::new();
            s.encode(&mut w);
            let buf = w.into_vec();
            let mut r = ByteReader::new(&buf);
            let mut back = OpStream::decode(&mut r).expect("decode");
            r.finish().expect("fully consumed");
            assert_eq!(back.generated(), s.generated());
            for _ in 0..500 {
                let (a, b) = (s.next_op(), back.next_op());
                assert!(ops_equal(&a, &b), "{bench:?} diverged");
            }
        }
    }

    #[test]
    fn unknown_kind_byte_rejected() {
        let buf = [9u8, 0, 0, 0];
        assert!(OpStream::decode(&mut ByteReader::new(&buf)).is_err());
    }

    #[test]
    #[should_panic(expected = "identity mismatch")]
    fn restore_rejects_cross_kind_snapshot() {
        let mut syn = OpStream::for_bench(Benchmark::Gcc, 1 << 26, 9);
        let rep = OpStream::for_bench(trace_bench(), 1 << 26, 9);
        syn.restore(&rep.snapshot());
    }
}
