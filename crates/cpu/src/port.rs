//! The memory port: how a core talks to the cache hierarchy.
//!
//! The system crate implements [`MemPort`] over L1/L2/DRAM-cache/memory.
//! Hits resolve inline (`Complete` with the absolute completion time);
//! anything that leaves the SRAM hierarchy returns `Pending` and the
//! system calls [`Core::on_data`](crate::core::Core::on_data) when the
//! data lands.

use dca_sim_core::SimTime;

/// One memory operation presented to the hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct MemOp {
    /// Issuing core.
    pub core: u8,
    /// Core-local token identifying the op in completion callbacks.
    pub token: u64,
    /// 64-byte block address.
    pub block: u64,
    /// Store (true) or load (false).
    pub is_store: bool,
    /// Synthetic instruction address.
    pub pc: u32,
}

/// Outcome of presenting an op to the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortResponse {
    /// Served within the SRAM hierarchy; data at the given instant.
    Complete(SimTime),
    /// Left for the DRAM cache / main memory; completion arrives via
    /// `Core::on_data`.
    Pending,
}

/// The hierarchy interface exposed to cores.
pub trait MemPort {
    /// Present `op`, issued at absolute time `at`.
    fn access(&mut self, op: MemOp, at: SimTime) -> PortResponse;
}
