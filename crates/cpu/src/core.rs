//! The out-of-order-approximating core model.
//!
//! Table II: 4 GHz, x86, 192 ROB entries, 8-wide. The model keeps the
//! three structural effects that shape the memory request stream:
//!
//! 1. **Issue/retire bandwidth** — `gap+1` instructions cost
//!    `ceil((gap+1)/width)` cycles of frontend time.
//! 2. **ROB-bounded lookahead** — a load blocks retirement until its data
//!    returns; once it is `rob_size` instructions old, the frontend
//!    stalls on it. Independent loads inside the window overlap (MLP).
//! 3. **Dependent loads serialise** — a pointer-chase load cannot issue
//!    before its chain predecessor's data arrives.
//!
//! Stores retire through the write buffer without stalling the core (they
//! still traverse the hierarchy and dirty the caches, producing the
//! writeback stream the paper's study depends on).
//!
//! The core runs on *virtual time* (`vt`): it executes as far ahead as
//! its window allows in one call, returning `Waiting` only when blocked
//! on outstanding data. All issued requests carry absolute timestamps,
//! so the event-driven system stays causally consistent.

use std::collections::VecDeque;

use dca_sim_core::{Duration, SimTime};

use crate::port::{MemOp, MemPort, PortResponse};
use crate::stream::OpStream;
use crate::trace::TraceOp;

/// Static core parameters.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Reorder-buffer capacity in instructions (Table II: 192).
    pub rob_size: u64,
    /// Issue/retire width (Table II: 8).
    pub width: u32,
    /// Maximum loads outstanding past the SRAM hierarchy.
    pub mlp_limit: usize,
    /// Instructions to execute before finishing.
    pub target_insts: u64,
}

impl CoreConfig {
    /// The paper's core with the given instruction budget.
    pub fn paper(target_insts: u64) -> Self {
        CoreConfig {
            rob_size: 192,
            width: 8,
            mlp_limit: 16,
            target_insts,
        }
    }
}

/// Result of driving a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreState {
    /// Blocked on outstanding memory data; re-advance after `on_data`.
    Waiting,
    /// Instruction budget reached.
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct InflightLoad {
    inst_idx: u64,
    token: u64,
    done: Option<SimTime>,
}

#[derive(Clone, Copy, Debug)]
enum ChainDep {
    Known(SimTime),
    Pending(u64),
}

/// Per-core statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Loads issued to the hierarchy.
    pub loads: u64,
    /// Stores issued to the hierarchy.
    pub stores: u64,
    /// Loads that resolved past the SRAM hierarchy (DRAM cache or memory).
    pub long_loads: u64,
    /// Times the frontend stalled with the ROB full.
    pub rob_stalls: u64,
    /// Times issue stopped at the MLP limit.
    pub mlp_stalls: u64,
}

/// One simulated core.
pub struct Core {
    id: u8,
    cfg: CoreConfig,
    gen: OpStream,
    vt: SimTime,
    inst_count: u64,
    next_token: u64,
    inflight: VecDeque<InflightLoad>,
    pending_unknown: usize,
    chains: [ChainDep; 8],
    staged: Option<TraceOp>,
    finished: bool,
    stats: CoreStats,
}

impl Core {
    /// A core executing `gen`'s stream under `cfg`. Accepts anything
    /// convertible into an [`OpStream`] — a synthetic
    /// [`TraceGen`](crate::trace::TraceGen) or a trace-file
    /// [`TraceReader`](crate::tracefile::TraceReader).
    pub fn new(id: u8, cfg: CoreConfig, gen: impl Into<OpStream>) -> Self {
        Core {
            id,
            cfg,
            gen: gen.into(),
            vt: SimTime::ZERO,
            inst_count: 0,
            next_token: 0,
            inflight: VecDeque::with_capacity(cfg.mlp_limit + 1),
            pending_unknown: 0,
            chains: [ChainDep::Known(SimTime::ZERO); 8],
            staged: None,
            finished: false,
            stats: CoreStats::default(),
        }
    }

    /// Core id.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Instructions completed.
    pub fn insts(&self) -> u64 {
        self.inst_count
    }

    /// Frontend virtual time (the core's notion of elapsed time).
    pub fn time(&self) -> SimTime {
        self.vt
    }

    /// Cycles elapsed at 4 GHz.
    pub fn cycles(&self) -> u64 {
        self.vt.as_cpu_cycles().max(1)
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        self.inst_count as f64 / self.cycles() as f64
    }

    /// Whether the instruction budget has been reached.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Completion callback: the load identified by `token` has its data
    /// at `done`.
    pub fn on_data(&mut self, token: u64, done: SimTime) {
        for l in self.inflight.iter_mut() {
            if l.token == token {
                debug_assert!(l.done.is_none());
                l.done = Some(done);
                self.pending_unknown -= 1;
                break;
            }
        }
        for c in self.chains.iter_mut() {
            if let ChainDep::Pending(t) = c {
                if *t == token {
                    *c = ChainDep::Known(done);
                }
            }
        }
    }

    /// Run the core forward as far as its window allows, issuing memory
    /// ops through `port`. `now` is the simulation time of the event that
    /// woke the core; the core's virtual clock never runs behind it.
    pub fn advance(&mut self, port: &mut impl MemPort, now: SimTime) -> CoreState {
        // Waking implies whatever blocked us resolved no earlier than now.
        self.vt = self.vt.max(now);
        loop {
            if self.finished {
                return CoreState::Finished;
            }

            // Stage the next op. Completed loads are retired lazily by
            // the ROB-window check below, which charges their completion
            // time to the frontend exactly when the window forces a wait
            // (in-order retirement at the ROB head).
            let op = match self.staged.take() {
                Some(op) => op,
                None => self.gen.next_op(),
            };

            // Frontend time for the gap + the op itself.
            let insts = op.gap as u64 + 1;
            let cycles = insts.div_ceil(self.cfg.width as u64);
            let mut issue_at = self.vt + Duration::from_cpu_cycles(cycles);

            // ROB: the op cannot enter while a load older than
            // (inst_count + insts - rob_size) is still outstanding.
            let window_floor = (self.inst_count + insts).saturating_sub(self.cfg.rob_size);
            while let Some(front) = self.inflight.front() {
                if front.inst_idx >= window_floor {
                    break;
                }
                match front.done {
                    Some(done) => {
                        issue_at = issue_at.max(done);
                        self.inflight.pop_front();
                    }
                    None => {
                        self.stats.rob_stalls += 1;
                        self.staged = Some(op);
                        return CoreState::Waiting;
                    }
                }
            }

            // MLP bound.
            if !op.is_store && self.pending_unknown >= self.cfg.mlp_limit {
                self.stats.mlp_stalls += 1;
                self.staged = Some(op);
                return CoreState::Waiting;
            }

            // Chain dependence.
            if op.dependent && !op.is_store {
                match self.chains[op.chain as usize % 8] {
                    ChainDep::Known(t) => issue_at = issue_at.max(t),
                    ChainDep::Pending(_) => {
                        self.staged = Some(op);
                        return CoreState::Waiting;
                    }
                }
            }

            // Commit frontend progress and issue.
            self.vt = issue_at;
            self.inst_count += insts;
            let token = self.next_token;
            self.next_token += 1;
            let resp = port.access(
                MemOp {
                    core: self.id,
                    token,
                    block: op.block,
                    is_store: op.is_store,
                    pc: op.pc,
                },
                issue_at,
            );
            if op.is_store {
                self.stats.stores += 1;
            } else {
                self.stats.loads += 1;
                let done = match resp {
                    PortResponse::Complete(t) => Some(t),
                    PortResponse::Pending => {
                        self.stats.long_loads += 1;
                        self.pending_unknown += 1;
                        None
                    }
                };
                self.inflight.push_back(InflightLoad {
                    inst_idx: self.inst_count,
                    token,
                    done,
                });
                let dep = match done {
                    Some(t) => ChainDep::Known(t),
                    None => ChainDep::Pending(token),
                };
                self.chains[op.chain as usize % 8] = dep;
            }

            if self.inst_count >= self.cfg.target_insts {
                self.finished = true;
                return CoreState::Finished;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::trace::TraceGen;

    /// A hierarchy that serves everything with a fixed latency.
    struct FixedPort {
        latency: Duration,
        accesses: u64,
    }

    impl MemPort for FixedPort {
        fn access(&mut self, _op: MemOp, at: SimTime) -> PortResponse {
            self.accesses += 1;
            PortResponse::Complete(at + self.latency)
        }
    }

    /// A hierarchy that never answers (everything pends).
    struct BlackholePort {
        seen: Vec<MemOp>,
    }

    impl MemPort for BlackholePort {
        fn access(&mut self, op: MemOp, _at: SimTime) -> PortResponse {
            self.seen.push(op);
            PortResponse::Pending
        }
    }

    fn core_for(b: Benchmark, insts: u64) -> Core {
        let gen = TraceGen::new(b.profile(), 0, 42);
        Core::new(0, CoreConfig::paper(insts), gen)
    }

    #[test]
    fn runs_to_completion_on_fast_memory() {
        let mut c = core_for(Benchmark::Gcc, 100_000);
        let mut port = FixedPort {
            latency: Duration::from_cpu_cycles(2),
            accesses: 0,
        };
        assert_eq!(c.advance(&mut port, SimTime::ZERO), CoreState::Finished);
        assert!(c.insts() >= 100_000);
        assert!(c.ipc() > 1.0, "fast memory: high IPC, got {}", c.ipc());
        assert!(port.accesses > 10_000);
    }

    #[test]
    fn mlp_limit_blocks_independent_misses() {
        let mut c = core_for(Benchmark::Libquantum, 1_000_000);
        let mut port = BlackholePort { seen: Vec::new() };
        assert_eq!(c.advance(&mut port, SimTime::ZERO), CoreState::Waiting);
        // Streaming loads are independent: exactly mlp_limit outstanding.
        assert_eq!(
            (c.stats().loads as usize),
            port.seen.iter().filter(|o| !o.is_store).count()
        );
        assert_eq!(c.stats().long_loads as usize, 16);
    }

    #[test]
    fn dependent_loads_block_immediately() {
        let mut c = core_for(Benchmark::Mcf, 1_000_000);
        let mut port = BlackholePort { seen: Vec::new() };
        assert_eq!(c.advance(&mut port, SimTime::ZERO), CoreState::Waiting);
        // A chase exposes at most chain-count + a few independent
        // far-reuse loads before the dependence wall stops issue.
        let loads = port.seen.iter().filter(|o| !o.is_store).count();
        assert!(loads <= 16, "mcf MLP bounded by chains+reuse, got {loads}");
    }

    #[test]
    fn on_data_unblocks_and_makes_progress() {
        let mut c = core_for(Benchmark::Mcf, 10_000);
        let mut port = BlackholePort { seen: Vec::new() };
        let mut now = SimTime::ZERO;
        let mut rounds = 0;
        loop {
            match c.advance(&mut port, now) {
                CoreState::Finished => break,
                CoreState::Waiting => {
                    rounds += 1;
                    assert!(rounds < 100_000, "no forward progress");
                    // Answer every outstanding load 100ns later.
                    now += Duration::from_ns(100);
                    let pending: Vec<u64> = port
                        .seen
                        .drain(..)
                        .filter(|o| !o.is_store)
                        .map(|o| o.token)
                        .collect();
                    for t in pending {
                        c.on_data(t, now);
                    }
                }
            }
        }
        assert!(c.insts() >= 10_000);
        assert!(c.ipc() < 1.0, "100ns serialised loads: low IPC");
    }

    #[test]
    fn ipc_falls_with_latency() {
        let run = |lat_cycles: u64| {
            let mut c = core_for(Benchmark::Omnetpp, 200_000);
            let mut port = FixedPort {
                latency: Duration::from_cpu_cycles(lat_cycles),
                accesses: 0,
            };
            c.advance(&mut port, SimTime::ZERO);
            c.ipc()
        };
        let fast = run(2);
        let slow = run(200);
        assert!(
            fast > slow * 1.5,
            "latency must hurt IPC: fast={fast:.3} slow={slow:.3}"
        );
    }

    #[test]
    fn stores_never_block() {
        // A core fed only by pending stores should still finish.
        let mut c = core_for(Benchmark::Lbm, 50_000);
        struct StorePendPort;
        impl MemPort for StorePendPort {
            fn access(&mut self, op: MemOp, at: SimTime) -> PortResponse {
                if op.is_store {
                    PortResponse::Pending
                } else {
                    PortResponse::Complete(at + Duration::from_cpu_cycles(2))
                }
            }
        }
        assert_eq!(
            c.advance(&mut StorePendPort, SimTime::ZERO),
            CoreState::Finished
        );
    }

    #[test]
    fn trace_replay_core_completes() {
        use crate::tracefile::{encode_trace, register_trace_bytes, TraceEncoding};
        // A trace dumped from a synthetic run drives a core to its
        // budget exactly like the generator it came from.
        let records = crate::tracefile::dump_synthetic(Benchmark::Gcc, 3_000, 42);
        let bytes = encode_trace(&records, TraceEncoding::Delta);
        let bench = register_trace_bytes("core-replay-test", &bytes).expect("register");
        let gen = crate::stream::OpStream::for_bench(bench, 0, 0);
        let mut c = Core::new(0, CoreConfig::paper(50_000), gen);
        let mut port = FixedPort {
            latency: Duration::from_cpu_cycles(2),
            accesses: 0,
        };
        assert_eq!(c.advance(&mut port, SimTime::ZERO), CoreState::Finished);
        assert!(c.insts() >= 50_000);
        assert!(port.accesses > 1_000, "replayed ops reach the hierarchy");
    }

    #[test]
    fn virtual_time_is_monotonic_and_respects_now() {
        let mut c = core_for(Benchmark::Gcc, 1000);
        let mut port = FixedPort {
            latency: Duration::from_cpu_cycles(2),
            accesses: 0,
        };
        c.advance(&mut port, SimTime(5_000_000));
        assert!(c.time() >= SimTime(5_000_000));
    }
}
