//! # dca-cpu — core model and synthetic workloads
//!
//! The processor side of the reproduction. The paper ran SPEC CPU2006 on
//! gem5's OoO x86 model; the phenomena it studies, however, live in the
//! DRAM-cache controller. What the controller needs from the CPU side is
//! (a) bursts of demand reads with realistic memory-level parallelism and
//! dependence structure, (b) a writeback stream produced by real cache
//! evictions, and (c) a way to convert latency changes back into IPC.
//! This crate provides exactly that:
//!
//! * [`profile`] — per-benchmark characterisations of the 11 SPEC 2006
//!   memory-intensive benchmarks used in Table I (memory intensity, store
//!   fraction, working-set size, access pattern, dependence), driving
//!   seeded synthetic generators.
//! * [`trace`] — the generators themselves: streaming, pointer-chasing
//!   and mixed patterns producing an infinite deterministic op stream.
//! * [`tracefile`] — replayable trace-file workloads: a compact
//!   versioned binary format (`.dcat`: varint records, optional delta
//!   encoding), a digest-keyed process registry, and the
//!   [`TraceReader`] that replays a registered trace. Real application
//!   traces (or `tracegen-dump` captures of synthetic runs) drive the
//!   identical core/hierarchy path as the generators.
//! * [`stream`] — [`OpStream`], the single op source a core executes:
//!   generator or trace replay, with one
//!   `snapshot`/`restore`/`encode`/`decode` surface so both workload
//!   kinds participate in warm-state checkpointing.
//! * [`core`] — an out-of-order-approximating core: 192-entry ROB,
//!   8-wide issue/retire at 4 GHz (Table II), bounded memory-level
//!   parallelism, dependent loads serialise, stores retire into the
//!   hierarchy without stalling.
//! * [`port`] — the memory-port trait through which the core talks to the
//!   cache hierarchy owned by the system crate.
//! * [`workload`] — the 30 four-benchmark mixes of Table I, plus
//!   runtime-registered custom mixes (how trace workloads enter the
//!   figure harness: [`tracefile::register_trace_file`] →
//!   [`workload::register_mix`] → any mix-id-driven entry point).

pub mod core;
pub mod port;
pub mod profile;
pub mod stream;
pub mod trace;
pub mod tracefile;
pub mod workload;

pub use crate::core::{Core, CoreConfig, CoreState};
pub use port::{MemOp, MemPort, PortResponse};
pub use profile::{Benchmark, Pattern, Profile};
pub use stream::OpStream;
pub use trace::{TraceGen, TraceOp};
pub use tracefile::{
    decode_trace, dump_synthetic, encode_trace, register_trace_bytes, register_trace_file,
    write_trace, TraceEncoding, TraceError, TraceId, TraceReader, TraceRecord,
};
pub use workload::{mix, mix_names, register_mix, Mix, CUSTOM_MIX_BASE, TABLE1_MIXES};
