//! Synthetic instruction-stream generators.
//!
//! Each core runs one infinite, deterministic op stream derived from its
//! benchmark's [`Profile`](crate::profile::Profile). Ops carry the
//! compute-gap preceding them, so the core model never materialises
//! individual compute instructions.

use dca_sim_core::rng::Prng;
use dca_sim_core::{ByteReader, ByteWriter, CodecError};

use crate::profile::{Benchmark, Pattern, Profile};

/// One memory operation in a core's instruction stream.
#[derive(Clone, Copy, Debug)]
pub struct TraceOp {
    /// Compute instructions preceding this op.
    pub gap: u32,
    /// Store (true) or load (false).
    pub is_store: bool,
    /// Absolute 64-byte block address.
    pub block: u64,
    /// Synthetic instruction address of the op (for MAP-I).
    pub pc: u32,
    /// Whether this load's address depends on the previous load of its
    /// chain (pointer chasing) — serialises with that load.
    pub dependent: bool,
    /// Chain id for dependence tracking (< 8).
    pub chain: u8,
}

/// Entries in the far-reuse history ring. Every *fresh* (pattern-
/// generated) block is recorded, so the ring spans the last ~160 k
/// distinct blocks (~10 MB) per core — several times the core's share of
/// the 8 MB shared L2 (so most revisits miss the SRAM hierarchy) while
/// comfortably inside the 240 MB DRAM cache (so revisits hit there once
/// warm). Reuse ops themselves are not recorded, preventing the reuse
/// set from collapsing onto a small L2-resident hot set.
const HISTORY: usize = 163_840;

/// Alignment of concurrent streams, in blocks. 3840 blocks (240 KB) is a
/// whole number of bank rotations in both cache geometries (64 frames of
/// 60 blocks direct-mapped; 960 frames of 4 sets set-associative), so
/// lockstep streams at this spacing hit the same bank at different rows.
pub const STREAM_ALIGN: u64 = 3840;

/// Deterministic generator of one benchmark's op stream.
#[derive(Clone, Debug)]
pub struct TraceGen {
    profile: Profile,
    rng: Prng,
    /// Base block address of this core's private region.
    base: u64,
    /// Stream cursors (streaming / mixed patterns).
    streams: Vec<u64>,
    /// Segment length each stream wraps within.
    seg_len: u64,
    /// Chase cursors (chase pattern).
    chains: Vec<u64>,
    /// Far-reuse history: recent fresh blocks (region-relative).
    history: Vec<u64>,
    /// Ring write cursor for `history` once full.
    hist_slot: usize,
    /// Round-robin pick counter.
    pick: u64,
    /// Ops generated.
    count: u64,
}

impl TraceGen {
    /// A generator for `profile` over the region starting at block
    /// `base`, seeded with `seed`.
    ///
    /// Streams are laid out like real multi-array scientific codes: each
    /// stream walks its own array, and the arrays sit at large aligned
    /// offsets from one another ([`STREAM_ALIGN`] blocks — a whole number
    /// of bank rotations in both cache geometries). Concurrent streams
    /// therefore alias to the *same bank* at *different rows*, the exact
    /// row-conflict structure the permutation-based XOR remap \[9\] was
    /// designed to break (§VI-A "With Remapping").
    pub fn new(profile: Profile, base: u64, seed: u64) -> Self {
        let mut rng = Prng::seed_from_u64(seed);
        let ws = profile.ws_blocks;
        let n_streams = match profile.pattern {
            Pattern::Stream { streams } => streams as usize,
            Pattern::Mixed { .. } => 2,
            Pattern::Chase { .. } => 0,
        };
        let chains = match profile.pattern {
            Pattern::Chase { chains } => chains as usize,
            _ => 0,
        };
        let seg_len = if n_streams > 0 {
            (ws / n_streams as u64 / STREAM_ALIGN).max(1) * STREAM_ALIGN
        } else {
            0
        };
        let streams = (0..n_streams).map(|s| s as u64 * seg_len).collect();
        let chains = (0..chains).map(|_| rng.gen_range(0..ws)).collect();
        TraceGen {
            profile,
            rng,
            base,
            streams,
            seg_len,
            chains,
            history: Vec::new(),
            hist_slot: 0,
            pick: 0,
            count: 0,
        }
    }

    /// The driving profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Capture the generator mid-stream — RNG state, stream/chase
    /// cursors, reuse history and op count — as an owned checkpoint.
    /// Restoring resumes the op stream at exactly the next op.
    pub fn snapshot(&self) -> TraceGen {
        self.clone()
    }

    /// Overwrite this generator's state with a previously captured
    /// snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot drives a different benchmark or region —
    /// that would splice one workload's cursors into another's stream.
    pub fn restore(&mut self, snap: &TraceGen) {
        assert_eq!(
            (self.profile.bench, self.base),
            (snap.profile.bench, snap.base),
            "snapshot workload identity mismatch"
        );
        *self = snap.clone();
    }

    /// Serialise the full generator state into `w` (checkpoint-file
    /// payload). The profile itself is not stored — only the benchmark
    /// id, from which [`TraceGen::decode`] rebuilds it — so profile
    /// tuning changes naturally invalidate nothing (the warm-state
    /// fingerprint, not this payload, is what must change then).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.profile.bench.id());
        w.put_u64(self.base);
        for s in self.rng.state() {
            w.put_u64(s);
        }
        w.put_u64(self.seg_len);
        w.put_u64_slice(&self.streams);
        w.put_u64_slice(&self.chains);
        w.put_u64_slice(&self.history);
        w.put_u64(self.hist_slot as u64);
        w.put_u64(self.pick);
        w.put_u64(self.count);
    }

    /// Rebuild a generator from a [`TraceGen::encode`] payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TraceGen, CodecError> {
        let id = r.u32()? as usize;
        let bench = *Benchmark::ALL
            .get(id)
            .ok_or(CodecError::new("unknown benchmark id"))?;
        let base = r.u64()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        if rng_state == [0; 4] {
            return Err(CodecError::new("all-zero RNG state"));
        }
        let seg_len = r.u64()?;
        let streams = r.u64_vec()?;
        let chains = r.u64_vec()?;
        let history = r.u64_vec()?;
        let hist_slot = r.u64()? as usize;
        if history.len() > HISTORY || (hist_slot >= HISTORY && !history.is_empty()) {
            return Err(CodecError::new("history ring out of bounds"));
        }
        // Cursor counts are fixed by the benchmark's pattern; a blob
        // that disagrees would panic deep in `next_op` (`pick % len`),
        // so reject it here instead.
        let profile = bench.profile();
        let (want_streams, want_chains) = match profile.pattern {
            Pattern::Stream { streams } => (streams as usize, 0),
            Pattern::Mixed { .. } => (2, 0),
            Pattern::Chase { chains } => (0, chains as usize),
        };
        if streams.len() != want_streams || chains.len() != want_chains {
            return Err(CodecError::new("cursor counts do not match benchmark"));
        }
        Ok(TraceGen {
            profile,
            rng: Prng::from_state(rng_state),
            base,
            streams,
            seg_len,
            chains,
            history,
            hist_slot,
            pick: r.u64()?,
            count: r.u64()?,
        })
    }

    /// Ops generated so far.
    pub fn generated(&self) -> u64 {
        self.count
    }

    /// Sample the compute gap before the next op (uniform in
    /// `[0, 2·mean]`, so the mean is the profile's `mean_gap`).
    fn sample_gap(&mut self) -> u32 {
        self.rng.gen_range(0..=2 * self.profile.mean_gap)
    }

    /// Remember a freshly visited block (region-relative) in the history.
    fn remember(&mut self, pos: u64) {
        if self.history.len() < HISTORY {
            self.history.push(pos);
        } else {
            self.hist_slot = (self.hist_slot + 1) % HISTORY;
            self.history[self.hist_slot] = pos;
        }
    }

    /// Produce the next op.
    pub fn next_op(&mut self) -> TraceOp {
        self.count += 1;
        self.pick = self.pick.wrapping_add(1);
        let gap = self.sample_gap();
        let ws = self.profile.ws_blocks;
        let bench_pc_base = self.profile.bench.id() * 4096;
        let is_store = self.rng.gen_bool(self.profile.store_fraction);

        // Far-reuse component: revisit a uniformly sampled block from the
        // recent-fresh-block history. The most recent slice of the window
        // is still L2-resident; the bulk has been evicted from SRAM but
        // lives in the DRAM cache — giving the mid-distance temporal
        // reuse that makes DRAM caches pay off on SPEC.
        if !self.history.is_empty() && self.rng.gen_bool(self.profile.reuse_prob) {
            let idx = self.rng.gen_range(0..self.history.len());
            let pos = self.history[idx];
            return TraceOp {
                gap,
                is_store,
                block: self.base + pos,
                pc: bench_pc_base + 2048 + (idx % 13) as u32,
                dependent: false,
                chain: 0,
            };
        }

        let op = match self.profile.pattern {
            Pattern::Stream { .. } => {
                let s = (self.pick % self.streams.len() as u64) as usize;
                let pos = self.streams[s];
                // Advance within this stream's segment, wrapping at its
                // end — streams stay in lockstep alignment.
                let seg_start = s as u64 * self.seg_len;
                let next = pos + 1;
                self.streams[s] = if next >= seg_start + self.seg_len || next >= ws {
                    seg_start
                } else {
                    next
                };
                TraceOp {
                    gap,
                    is_store,
                    block: self.base + pos,
                    pc: bench_pc_base + s as u32 * 16 + is_store as u32,
                    dependent: false,
                    chain: 0,
                }
            }
            Pattern::Chase { .. } => {
                let c = (self.pick % self.chains.len() as u64) as usize;
                let cur = self.chains[c];
                if is_store {
                    // Update the node just visited: no new dependence.
                    TraceOp {
                        gap,
                        is_store: true,
                        block: self.base + cur,
                        pc: bench_pc_base + 512 + c as u32,
                        dependent: false,
                        chain: c as u8,
                    }
                } else {
                    // Follow the chain: pseudo-random next node.
                    let next = self.rng.gen_range(0..ws);
                    self.chains[c] = next;
                    TraceOp {
                        gap,
                        is_store: false,
                        block: self.base + next,
                        pc: bench_pc_base + 256 + c as u32,
                        dependent: true,
                        chain: c as u8,
                    }
                }
            }
            Pattern::Mixed { stream_prob } => {
                if self.rng.gen_bool(stream_prob) {
                    let s = (self.pick % self.streams.len() as u64) as usize;
                    let pos = self.streams[s];
                    let seg_start = s as u64 * self.seg_len;
                    let next = pos + 1;
                    self.streams[s] = if next >= seg_start + self.seg_len || next >= ws {
                        seg_start
                    } else {
                        next
                    };
                    TraceOp {
                        gap,
                        is_store,
                        block: self.base + pos,
                        pc: bench_pc_base + s as u32 * 16 + is_store as u32,
                        dependent: false,
                        chain: 0,
                    }
                } else {
                    let pos = self.rng.gen_range(0..ws);
                    TraceOp {
                        gap,
                        is_store,
                        block: self.base + pos,
                        pc: bench_pc_base + 1024 + (pos % 7) as u32,
                        dependent: false,
                        chain: 0,
                    }
                }
            }
        };
        self.remember(op.block - self.base);
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;

    fn gen_for(b: Benchmark, seed: u64) -> TraceGen {
        TraceGen::new(b.profile(), 1 << 26, seed)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = gen_for(Benchmark::Mcf, 7);
        let mut b = gen_for(Benchmark::Mcf, 7);
        for _ in 0..1000 {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(x.block, y.block);
            assert_eq!(x.is_store, y.is_store);
            assert_eq!(x.gap, y.gap);
            assert_eq!(x.pc, y.pc);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = gen_for(Benchmark::Lbm, 1);
        let mut b = gen_for(Benchmark::Lbm, 2);
        let same = (0..100)
            .filter(|_| a.next_op().block == b.next_op().block)
            .count();
        assert!(same < 50, "streams should diverge, {same} matches");
    }

    #[test]
    fn addresses_stay_in_region() {
        for bench in Benchmark::ALL {
            let base = 1u64 << 26;
            let ws = bench.profile().ws_blocks;
            let mut g = TraceGen::new(bench.profile(), base, 3);
            for _ in 0..10_000 {
                let op = g.next_op();
                assert!(op.block >= base && op.block < base + ws, "{bench:?}");
            }
        }
    }

    #[test]
    fn streaming_is_sequential_within_each_stream() {
        let mut g = gen_for(Benchmark::Libquantum, 5);
        // Fresh stream ops advance by one block *within their stream*
        // (identified by pc); far-reuse ops use a separate pc range.
        let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let (mut seq, mut fresh) = (0, 0);
        for _ in 0..5000 {
            let op = g.next_op();
            let stream_pc = op.pc & !1; // strip the store bit
            if (op.pc % 4096) >= 2048 {
                continue; // reuse op
            }
            fresh += 1;
            if let Some(&prev) = last.get(&stream_pc) {
                if op.block == prev + 1 {
                    seq += 1;
                }
            }
            last.insert(stream_pc, op.block);
        }
        assert!(
            seq as f64 > fresh as f64 * 0.8,
            "libquantum streams sequentially per stream: {seq}/{fresh}"
        );
    }

    #[test]
    fn streams_are_bank_aligned() {
        // Concurrent streams start at STREAM_ALIGN-multiple offsets so
        // they alias to the same bank sequence (the remap study's
        // premise): the first block of every stream is aligned.
        let profile = Benchmark::GemsFDTD.profile();
        let mut g = TraceGen::new(profile, 0, 5);
        let mut first_of_stream: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();
        for _ in 0..500 {
            let op = g.next_op();
            if (op.pc % 4096) < 2048 {
                first_of_stream.entry(op.pc & !1).or_insert(op.block);
            }
        }
        assert!(first_of_stream.len() >= 7, "all 7 streams observed");
        for (&pc, &b) in &first_of_stream {
            assert_eq!(b % STREAM_ALIGN, 0, "stream pc={pc} starts at {b}");
        }
    }

    #[test]
    fn chase_loads_are_dependent() {
        let mut g = gen_for(Benchmark::Mcf, 5);
        let mut dep_loads = 0;
        let mut loads = 0;
        for _ in 0..2000 {
            let op = g.next_op();
            if !op.is_store {
                loads += 1;
                if op.dependent {
                    dep_loads += 1;
                }
            }
        }
        // Chain-following loads are dependent; far-reuse revisits are
        // not, and reuse dominates (reuse_prob 0.78).
        let frac = dep_loads as f64 / loads as f64;
        assert!(
            frac > 0.08 && frac < 0.6,
            "mcf has a dependent chase component, got {frac:.2}"
        );
    }

    #[test]
    fn far_reuse_revisits_past_blocks() {
        let mut g = gen_for(Benchmark::Libquantum, 5);
        let mut seen = std::collections::HashSet::new();
        let mut revisits = 0u32;
        for _ in 0..50_000 {
            let op = g.next_op();
            if !seen.insert(op.block) {
                revisits += 1;
            }
        }
        assert!(
            revisits > 5_000,
            "the reuse component must revisit blocks, got {revisits}"
        );
    }

    #[test]
    fn store_fraction_approximates_profile() {
        let mut g = gen_for(Benchmark::Lbm, 9);
        let stores = (0..20_000).filter(|_| g.next_op().is_store).count();
        let frac = stores as f64 / 20_000.0;
        let want = Benchmark::Lbm.profile().store_fraction;
        assert!((frac - want).abs() < 0.02, "got {frac}, want ~{want}");
    }

    #[test]
    fn mean_gap_approximates_profile() {
        let mut g = gen_for(Benchmark::Gcc, 11);
        let total: u64 = (0..20_000).map(|_| g.next_op().gap as u64).sum();
        let mean = total as f64 / 20_000.0;
        let want = Benchmark::Gcc.profile().mean_gap as f64;
        assert!((mean - want).abs() < 0.2, "got {mean}, want ~{want}");
    }

    fn ops_equal(a: &TraceOp, b: &TraceOp) -> bool {
        a.block == b.block
            && a.is_store == b.is_store
            && a.gap == b.gap
            && a.pc == b.pc
            && a.dependent == b.dependent
            && a.chain == b.chain
    }

    #[test]
    fn snapshot_restore_resumes_the_stream_exactly() {
        for bench in [Benchmark::Libquantum, Benchmark::Mcf, Benchmark::Milc] {
            let mut g = gen_for(bench, 11);
            for _ in 0..5_000 {
                g.next_op();
            }
            let snap = g.snapshot();
            let reference: Vec<TraceOp> = (0..2_000).map(|_| g.next_op()).collect();
            // Diverge further, then rewind.
            for _ in 0..777 {
                g.next_op();
            }
            g.restore(&snap);
            for want in &reference {
                let got = g.next_op();
                assert!(ops_equal(&got, want), "{bench:?} diverged after restore");
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_mid_stream() {
        for bench in Benchmark::ALL {
            let mut g = TraceGen::new(bench.profile(), 3 << 26, 23);
            for _ in 0..3_000 {
                g.next_op();
            }
            let mut w = dca_sim_core::ByteWriter::new();
            g.encode(&mut w);
            let buf = w.into_vec();
            let mut r = dca_sim_core::ByteReader::new(&buf);
            let mut decoded = TraceGen::decode(&mut r).expect("decode");
            r.finish().expect("fully consumed");
            assert_eq!(decoded.generated(), g.generated());
            for _ in 0..2_000 {
                let (a, b) = (g.next_op(), decoded.next_op());
                assert!(ops_equal(&a, &b), "{bench:?} codec round trip diverged");
            }
        }
    }

    #[test]
    fn decode_rejects_unknown_bench_and_truncation() {
        let mut g = gen_for(Benchmark::Gcc, 3);
        g.next_op();
        let mut w = dca_sim_core::ByteWriter::new();
        g.encode(&mut w);
        let mut buf = w.into_vec();
        let mut r = dca_sim_core::ByteReader::new(&buf[..buf.len() - 3]);
        assert!(TraceGen::decode(&mut r).is_err(), "truncated");
        buf[0] = 0xFF; // benchmark id far out of range
        let mut r = dca_sim_core::ByteReader::new(&buf);
        assert!(TraceGen::decode(&mut r).is_err(), "unknown bench");
        // Swap the id to a benchmark with a different pattern (gcc is
        // Mixed with 2 stream cursors; mcf is Chase with 8 chains): the
        // cursor counts no longer match and decode must reject, not
        // hand back a generator that panics in next_op.
        buf[0] = Benchmark::Mcf.id() as u8;
        let mut r = dca_sim_core::ByteReader::new(&buf);
        assert!(TraceGen::decode(&mut r).is_err(), "cursor count mismatch");
    }

    #[test]
    #[should_panic(expected = "workload identity mismatch")]
    fn restore_rejects_cross_benchmark_snapshot() {
        let mcf = gen_for(Benchmark::Mcf, 1);
        let mut gcc = gen_for(Benchmark::Gcc, 1);
        gcc.restore(&mcf.snapshot());
    }

    #[test]
    fn chains_use_distinct_ids() {
        let mut g = gen_for(Benchmark::Mcf, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let op = g.next_op();
            if op.dependent {
                seen.insert(op.chain);
            }
        }
        assert_eq!(seen.len(), 8, "mcf has 8 chains");
    }
}
