//! The 30 four-benchmark multiprogrammed mixes of Table I, plus
//! runtime-registered custom mixes (the entry point for trace-file
//! workloads: register traces with
//! [`crate::tracefile::register_trace_file`], bundle the handles into a
//! mix with [`register_mix`], and every harness path that accepts a mix
//! id — `RunSpec::run_mix`, `evaluate`, the figure binaries — runs it
//! unchanged).

use std::sync::{Mutex, OnceLock};

use crate::profile::Benchmark;

/// One 4-core workload mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// 1-based mix number as in Table I.
    pub id: u32,
    /// The four benchmarks, one per core.
    pub benches: [Benchmark; 4],
}

impl Mix {
    /// Table I's "a-b-c-d" name.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.benches[0].name(),
            self.benches[1].name(),
            self.benches[2].name(),
            self.benches[3].name()
        )
    }
}

use Benchmark::*;

/// Table I verbatim: mixes 1–30.
pub const TABLE1_MIXES: [[Benchmark; 4]; 30] = [
    [Soplex, Mcf, Gcc, Libquantum],          // 1
    [Astar, Omnetpp, GemsFDTD, Gcc],         // 2
    [Mcf, Soplex, Astar, Leslie3d],          // 3
    [Bwaves, Lbm, Libquantum, Leslie3d],     // 4
    [Omnetpp, Milc, Leslie3d, Astar],        // 5
    [Soplex, Astar, Lbm, Mcf],               // 6
    [Lbm, Omnetpp, Leslie3d, Bwaves],        // 7
    [Milc, Leslie3d, Omnetpp, Gcc],          // 8
    [Bwaves, Astar, Gcc, Leslie3d],          // 9
    [Omnetpp, Libquantum, Mcf, Gcc],         // 10
    [Gcc, Libquantum, Lbm, Soplex],          // 11
    [Gcc, Leslie3d, GemsFDTD, Soplex],       // 12
    [Lbm, Libquantum, Omnetpp, Bwaves],      // 13
    [Gcc, Mcf, Leslie3d, Milc],              // 14
    [Omnetpp, Mcf, Leslie3d, Lbm],           // 15
    [Libquantum, Lbm, Soplex, Astar],        // 16
    [Milc, Libquantum, Bwaves, GemsFDTD],    // 17
    [Leslie3d, Astar, Libquantum, Bwaves],   // 18
    [Lbm, Gcc, Mcf, Libquantum],             // 19
    [Soplex, Astar, GemsFDTD, Leslie3d],     // 20
    [GemsFDTD, Astar, Leslie3d, Libquantum], // 21
    [Libquantum, Milc, Lbm, Mcf],            // 22
    [Lbm, Libquantum, Leslie3d, Bwaves],     // 23
    [Milc, Leslie3d, Omnetpp, Bwaves],       // 24
    [Bwaves, Astar, GemsFDTD, Leslie3d],     // 25
    [Gcc, Soplex, Libquantum, Milc],         // 26
    [Omnetpp, Lbm, Leslie3d, GemsFDTD],      // 27
    [Soplex, Bwaves, GemsFDTD, Leslie3d],    // 28
    [GemsFDTD, Leslie3d, Libquantum, Milc],  // 29
    [Omnetpp, Bwaves, Leslie3d, GemsFDTD],   // 30
];

/// First id handed out to runtime-registered mixes; 1..=30 stays
/// reserved for Table I.
pub const CUSTOM_MIX_BASE: u32 = 1000;

fn custom_mixes() -> &'static Mutex<Vec<Mix>> {
    static CUSTOM: OnceLock<Mutex<Vec<Mix>>> = OnceLock::new();
    CUSTOM.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a custom 4-core mix (typically holding [`Benchmark::Trace`]
/// handles), returning it with a fresh id ≥ [`CUSTOM_MIX_BASE`] that
/// [`mix`] resolves for the rest of the process lifetime. Registering
/// the same benchmark quadruple again returns the existing id.
pub fn register_mix(benches: [Benchmark; 4]) -> Mix {
    let mut reg = custom_mixes().lock().unwrap();
    if let Some(m) = reg.iter().find(|m| m.benches == benches) {
        return *m;
    }
    let m = Mix {
        id: CUSTOM_MIX_BASE + reg.len() as u32,
        benches,
    };
    reg.push(m);
    m
}

/// Mix `id`: 1-based Table I ids, or an id returned by [`register_mix`].
///
/// # Panics
/// Panics if `id` is neither in `1..=30` nor registered.
pub fn mix(id: u32) -> Mix {
    if (1..=30).contains(&id) {
        return Mix {
            id,
            benches: TABLE1_MIXES[(id - 1) as usize],
        };
    }
    if id >= CUSTOM_MIX_BASE {
        if let Some(m) = custom_mixes()
            .lock()
            .unwrap()
            .get((id - CUSTOM_MIX_BASE) as usize)
        {
            return *m;
        }
    }
    panic!("mix id must be 1..=30 or a registered custom mix, got {id}");
}

/// All thirty mixes.
pub fn all_mixes() -> Vec<Mix> {
    (1..=30).map(mix).collect()
}

/// The Table I names of all mixes, for reports.
pub fn mix_names() -> Vec<String> {
    all_mixes().iter().map(|m| m.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_mixes_of_four() {
        assert_eq!(all_mixes().len(), 30);
        for m in all_mixes() {
            assert_eq!(m.benches.len(), 4);
        }
    }

    #[test]
    fn spot_check_against_table1() {
        assert_eq!(mix(1).name(), "soplex-mcf-gcc-libquantum");
        assert_eq!(mix(2).name(), "astar-omnetpp-GemsFDTD-gcc");
        assert_eq!(mix(15).name(), "omnetpp-mcf-leslie3d-lbm");
        assert_eq!(mix(22).name(), "libquantum-milc-lbm-mcf");
        assert_eq!(mix(30).name(), "omnetpp-bwaves-leslie3d-GemsFDTD");
    }

    #[test]
    fn every_benchmark_appears() {
        let mut seen = std::collections::HashSet::new();
        for m in all_mixes() {
            for b in m.benches {
                seen.insert(b);
            }
        }
        assert_eq!(seen.len(), 11, "all 11 benchmarks used in Table I");
    }

    #[test]
    #[should_panic(expected = "1..=30")]
    fn mix_zero_panics() {
        mix(0);
    }

    #[test]
    fn custom_mixes_register_and_resolve() {
        let benches = [Mcf, Mcf, Gcc, Lbm]; // not a Table I quadruple
        let m = register_mix(benches);
        assert!(m.id >= CUSTOM_MIX_BASE);
        assert_eq!(mix(m.id), m);
        assert_eq!(register_mix(benches).id, m.id, "idempotent");
        let other = register_mix([Lbm, Lbm, Lbm, Lbm]);
        assert_ne!(other.id, m.id);
    }

    #[test]
    #[should_panic(expected = "registered custom mix")]
    fn unregistered_custom_mix_panics() {
        mix(CUSTOM_MIX_BASE + 9999);
    }

    #[test]
    fn names_list_matches() {
        let names = mix_names();
        assert_eq!(names.len(), 30);
        assert_eq!(names[0], "soplex-mcf-gcc-libquantum");
    }
}
