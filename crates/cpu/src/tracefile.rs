//! Trace-file workloads: a compact binary format for replayable memory
//! traces, a process-wide trace registry, and the [`TraceReader`] that
//! replays a trace through the same [`MemPort`](crate::port::MemPort)
//! the synthetic generators drive.
//!
//! ## File format (`.dcat`)
//!
//! A trace file is a little-endian blob:
//!
//! ```text
//! magic           8 B   "DCATRACE"
//! version         u32   TRACE_FORMAT_VERSION (currently 1)
//! flags           u32   bit 0: delta-encoded addresses; others reserved
//! record_count    u64   number of records, ≥ 1
//! records         …     see below
//! ```
//!
//! Each record is one memory operation `(gap, block, is_store)`:
//!
//! * `varint((gap << 1) | is_store)` — the compute-instruction gap
//!   preceding the op, with the store bit folded into bit 0;
//! * the 64-byte block address, **region-relative** (the replaying core
//!   adds its own region base, so one trace can drive any core slot of
//!   a multiprogrammed mix): `varint(block)` when flags bit 0 is clear,
//!   or `zigzag-varint(block − previous_block)` when set.
//!
//! Varints are LEB128 ([`ByteWriter::put_varint`]); delta encoding keeps
//! streaming traces near two bytes per record without any compression
//! dependency. Addresses must stay below [`MAX_TRACE_BLOCKS`] (the 4 GiB
//! per-core region of the simulated system); decoding rejects anything
//! larger with a typed [`TraceError`], never a panic.
//!
//! ## Registry and identity
//!
//! [`register_trace_file`] / [`register_trace_bytes`] parse and intern a
//! trace, returning a [`Benchmark::Trace`] handle — a `Copy` id usable
//! anywhere a Table I benchmark is (mixes, the `dca-bench` harness,
//! warm-state fingerprints). Interning is keyed by the **content
//! digest** ([`dca_sim_core::digest64`] over the file bytes): the same
//! bytes always yield the same handle, and an *edited* trace file yields
//! a new digest — which is how warm-state checkpoints keyed on the
//! digest invalidate by construction rather than by path or mtime.
//!
//! ## Replay semantics
//!
//! [`TraceReader`] replays records in order and wraps around at the end
//! (traces are finite; cores need an unbounded op stream). Replayed ops
//! carry a synthetic PC derived from the block address (traces carry no
//! program counters; MAP-I still needs a stable, address-correlated
//! index), and no dependence information — trace workloads expose full
//! MLP. Like [`TraceGen`](crate::trace::TraceGen), the reader supports
//! `snapshot`/`restore` and `encode`/`decode`, so trace workloads
//! participate in warm-state checkpointing; the encoded form stores the
//! content digest and is resolved back through the registry on decode.

use dca_sim_core::hash::FastHashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use dca_sim_core::{digest64, ByteReader, ByteWriter, CodecError};

use crate::profile::Benchmark;
use crate::trace::{TraceGen, TraceOp};

/// Magic prefix of a trace file.
pub const TRACE_MAGIC: &[u8; 8] = b"DCATRACE";

/// Version of the trace-file schema; bump on any layout change.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Flag bit 0: block addresses are zigzag deltas from the previous
/// record instead of absolute varints.
const FLAG_DELTA: u32 = 1;

/// Upper bound (exclusive) on a trace's region-relative block
/// addresses: the 4 GiB (`2^26` × 64 B blocks) per-core region the
/// system model gives each workload. A trace touching more than one
/// region's worth of address space cannot be placed without aliasing
/// another core, so the decoder rejects it up front.
pub const MAX_TRACE_BLOCKS: u64 = 1 << 26;

/// One trace record: a memory operation and the compute gap before it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Compute instructions preceding this op.
    pub gap: u32,
    /// Region-relative 64-byte block address (`< MAX_TRACE_BLOCKS`).
    pub block: u64,
    /// Store (true) or load (false).
    pub is_store: bool,
}

/// How record addresses are encoded on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceEncoding {
    /// Absolute varint block addresses.
    Absolute,
    /// Zigzag varint deltas from the previous record (default: smallest
    /// for both streaming and reuse-heavy traces).
    #[default]
    Delta,
}

/// Typed failure while loading or parsing a trace file. Malformed
/// headers and truncated files surface here — never as panics.
#[derive(Debug)]
pub enum TraceError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The first 8 bytes are not [`TRACE_MAGIC`].
    BadMagic,
    /// The header version is not [`TRACE_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The header sets flag bits this reader does not know.
    UnknownFlags(u32),
    /// A record count of zero (a reader could never produce an op).
    Empty,
    /// The declared record count cannot fit in the remaining bytes.
    CountExceedsPayload {
        /// Records the header declared.
        declared: u64,
        /// Payload bytes actually present.
        payload_bytes: usize,
    },
    /// A record's block address falls outside [`MAX_TRACE_BLOCKS`] (or,
    /// under delta encoding, went negative).
    BlockOutOfRange(i64),
    /// A record's compute gap exceeds `u32::MAX`.
    GapOutOfRange(u64),
    /// Truncated or otherwise malformed record bytes.
    Malformed(CodecError),
    /// Bytes remain after the declared records.
    TrailingBytes(usize),
    /// `TraceReader::decode` met a digest no registered trace has.
    UnregisteredDigest(u64),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a DCA trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::UnknownFlags(bits) => {
                write!(f, "trace header sets unknown flag bits {bits:#x}")
            }
            TraceError::Empty => write!(f, "trace file declares zero records"),
            TraceError::CountExceedsPayload {
                declared,
                payload_bytes,
            } => write!(
                f,
                "trace declares {declared} records but only {payload_bytes} payload bytes follow"
            ),
            TraceError::BlockOutOfRange(b) => {
                write!(f, "trace block address {b} outside [0, {MAX_TRACE_BLOCKS})")
            }
            TraceError::GapOutOfRange(g) => write!(f, "trace compute gap {g} exceeds u32"),
            TraceError::Malformed(e) => write!(f, "malformed trace records: {e}"),
            TraceError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared records")
            }
            TraceError::UnregisteredDigest(d) => {
                write!(f, "no registered trace has content digest {d:#018x}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> Self {
        TraceError::Malformed(e)
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serialise records into the on-disk trace format.
///
/// # Panics
/// Panics if `records` is empty or any block address reaches
/// [`MAX_TRACE_BLOCKS`] — those are writer bugs, not file corruption.
pub fn encode_trace(records: &[TraceRecord], encoding: TraceEncoding) -> Vec<u8> {
    assert!(!records.is_empty(), "a trace must hold at least one record");
    let mut w = ByteWriter::with_capacity(24 + records.len() * 4);
    w.put_bytes(TRACE_MAGIC);
    w.put_u32(TRACE_FORMAT_VERSION);
    w.put_u32(match encoding {
        TraceEncoding::Absolute => 0,
        TraceEncoding::Delta => FLAG_DELTA,
    });
    w.put_u64(records.len() as u64);
    let mut prev: u64 = 0;
    for r in records {
        assert!(
            r.block < MAX_TRACE_BLOCKS,
            "trace block {} outside the per-core region",
            r.block
        );
        w.put_varint(((r.gap as u64) << 1) | r.is_store as u64);
        match encoding {
            TraceEncoding::Absolute => w.put_varint(r.block),
            TraceEncoding::Delta => {
                w.put_varint_signed(r.block as i64 - prev as i64);
                prev = r.block;
            }
        }
    }
    w.into_vec()
}

/// Parse an on-disk trace blob, validating the header, every record and
/// full consumption of the buffer.
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    let mut r = ByteReader::new(bytes);
    if r.bytes(TRACE_MAGIC.len())
        .map_err(|_| TraceError::BadMagic)?
        != TRACE_MAGIC
    {
        return Err(TraceError::BadMagic);
    }
    let version = r.u32()?;
    if version != TRACE_FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let flags = r.u32()?;
    if flags & !FLAG_DELTA != 0 {
        return Err(TraceError::UnknownFlags(flags & !FLAG_DELTA));
    }
    let delta = flags & FLAG_DELTA != 0;
    let count = r.u64()?;
    if count == 0 {
        return Err(TraceError::Empty);
    }
    // Every record is at least two one-byte varints; reject an absurd
    // declared count before allocating for it.
    if count.saturating_mul(2) > r.remaining() as u64 {
        return Err(TraceError::CountExceedsPayload {
            declared: count,
            payload_bytes: r.remaining(),
        });
    }
    let mut records = Vec::with_capacity(count as usize);
    let mut prev: i64 = 0;
    for _ in 0..count {
        let head = r.varint()?;
        let gap = head >> 1;
        if gap > u32::MAX as u64 {
            return Err(TraceError::GapOutOfRange(gap));
        }
        let block = if delta {
            let b = prev
                .checked_add(r.varint_signed()?)
                .ok_or(TraceError::BlockOutOfRange(i64::MIN))?;
            prev = b;
            b
        } else {
            let b = r.varint()?;
            i64::try_from(b).map_err(|_| TraceError::BlockOutOfRange(i64::MAX))?
        };
        if block < 0 || block as u64 >= MAX_TRACE_BLOCKS {
            return Err(TraceError::BlockOutOfRange(block));
        }
        records.push(TraceRecord {
            gap: gap as u32,
            block: block as u64,
            is_store: head & 1 == 1,
        });
    }
    if r.remaining() != 0 {
        return Err(TraceError::TrailingBytes(r.remaining()));
    }
    Ok(records)
}

/// Write records to `path` in the on-disk format.
pub fn write_trace(
    path: impl AsRef<Path>,
    records: &[TraceRecord],
    encoding: TraceEncoding,
) -> Result<(), TraceError> {
    std::fs::write(path, encode_trace(records, encoding))?;
    Ok(())
}

/// Run `bench`'s synthetic generator for `ops` operations and collect
/// the stream as trace records (the `tracegen-dump` utility's engine,
/// also used by the round-trip self-tests).
///
/// # Panics
/// Panics if `bench` is itself a trace workload.
pub fn dump_synthetic(bench: Benchmark, ops: u64, seed: u64) -> Vec<TraceRecord> {
    let mut gen = TraceGen::new(bench.profile(), 0, seed);
    (0..ops)
        .map(|_| {
            let op = gen.next_op();
            TraceRecord {
                gap: op.gap,
                block: op.block,
                is_store: op.is_store,
            }
        })
        .collect()
}

/// Process-local handle of a registered trace (the payload of
/// [`Benchmark::Trace`]). Ids are assigned in registration order and
/// are **not** stable across processes — persistent formats must use
/// the content digest instead (see [`TraceReader::encode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub(crate) u16);

impl TraceId {
    /// The registry index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned, fully parsed trace.
#[derive(Debug)]
pub struct TraceData {
    /// The registry handle.
    pub id: TraceId,
    /// Display name (file stem, or the name given at registration).
    pub name: &'static str,
    /// Source path, when registered from a file.
    pub path: Option<PathBuf>,
    /// [`digest64`] over the raw file bytes — the trace's persistent
    /// identity (edited content ⇒ new digest ⇒ new identity).
    pub digest: u64,
    /// The decoded records, in replay order (never empty).
    pub records: Vec<TraceRecord>,
}

/// The process-wide trace registry.
struct Registry {
    traces: Vec<Arc<TraceData>>,
    by_digest: FastHashMap<u64, TraceId>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            traces: Vec::new(),
            by_digest: FastHashMap::default(),
        })
    })
}

/// Register the trace stored at `path`, returning its benchmark handle.
/// Idempotent by content: re-registering identical bytes (from any
/// path) returns the existing handle; changed bytes yield a fresh one.
pub fn register_trace_file(path: impl AsRef<Path>) -> Result<Benchmark, TraceError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace")
        .to_string();
    register(name, Some(path.to_path_buf()), &bytes)
}

/// Register a trace from in-memory bytes under a display `name`.
pub fn register_trace_bytes(name: &str, bytes: &[u8]) -> Result<Benchmark, TraceError> {
    register(name.to_string(), None, bytes)
}

fn register(name: String, path: Option<PathBuf>, bytes: &[u8]) -> Result<Benchmark, TraceError> {
    let digest = digest64(bytes);
    if let Some(&id) = registry().lock().unwrap().by_digest.get(&digest) {
        return Ok(Benchmark::Trace(id));
    }
    // Parse outside the lock; registration is rare and parsing is the
    // expensive part.
    let records = decode_trace(bytes)?;
    let mut reg = registry().lock().unwrap();
    if let Some(&id) = reg.by_digest.get(&digest) {
        return Ok(Benchmark::Trace(id)); // lost a benign race
    }
    let id = TraceId(u16::try_from(reg.traces.len()).expect("fewer than 65536 traces"));
    let name: &'static str = Box::leak(name.into_boxed_str());
    reg.traces.push(Arc::new(TraceData {
        id,
        name,
        path,
        digest,
        records,
    }));
    reg.by_digest.insert(digest, id);
    Ok(Benchmark::Trace(id))
}

/// The interned data behind a [`TraceId`].
///
/// # Panics
/// Panics on an id this process never registered (impossible for ids
/// obtained from the registry — they are never evicted).
pub fn trace_data(id: TraceId) -> Arc<TraceData> {
    registry()
        .lock()
        .unwrap()
        .traces
        .get(id.index())
        .unwrap_or_else(|| panic!("trace id {} was never registered", id.0))
        .clone()
}

/// Look up a registered trace by its content digest.
pub fn find_trace_by_digest(digest: u64) -> Option<Arc<TraceData>> {
    let reg = registry().lock().unwrap();
    let id = *reg.by_digest.get(&digest)?;
    Some(reg.traces[id.index()].clone())
}

/// Look up a registered trace by display name (latest registration
/// wins when names collide).
pub fn find_trace_by_name(name: &str) -> Option<Benchmark> {
    let reg = registry().lock().unwrap();
    reg.traces
        .iter()
        .rev()
        .find(|t| t.name == name)
        .map(|t| Benchmark::Trace(t.id))
}

/// Deterministic replayer of a registered trace: drives the same
/// [`MemPort`] as [`TraceGen`], wrapping at the end of the records.
#[derive(Clone, Debug)]
pub struct TraceReader {
    data: Arc<TraceData>,
    /// Base block address of this core's private region.
    base: u64,
    /// Next record to replay.
    pos: u64,
    /// Ops produced so far.
    count: u64,
}

impl TraceReader {
    /// A reader replaying registered trace `id` over the region starting
    /// at block `base`.
    pub fn new(id: TraceId, base: u64) -> Self {
        TraceReader {
            data: trace_data(id),
            base,
            pos: 0,
            count: 0,
        }
    }

    /// The benchmark handle this reader replays.
    pub fn bench(&self) -> Benchmark {
        Benchmark::Trace(self.data.id)
    }

    /// Ops produced so far.
    pub fn generated(&self) -> u64 {
        self.count
    }

    /// Records in one pass of the trace.
    pub fn len(&self) -> u64 {
        self.data.records.len() as u64
    }

    /// Whether the trace is empty (never true for registered traces).
    pub fn is_empty(&self) -> bool {
        self.data.records.is_empty()
    }

    /// Produce the next op, wrapping at the end of the trace.
    pub fn next_op(&mut self) -> TraceOp {
        let rec = self.data.records[self.pos as usize];
        self.pos += 1;
        if self.pos == self.len() {
            self.pos = 0;
        }
        self.count += 1;
        // Traces carry no PCs; synthesise one correlated with the block
        // address so MAP-I sees stable per-"instruction" behaviour, in
        // this trace's private 4096-entry PC window.
        let pc_base = self.bench().id() * 4096;
        let pc = pc_base + ((rec.block ^ (rec.block >> 7)) & 0xFFF) as u32;
        TraceOp {
            gap: rec.gap,
            is_store: rec.is_store,
            block: self.base + rec.block,
            pc,
            dependent: false,
            chain: 0,
        }
    }

    /// Capture the replay cursor as an owned checkpoint.
    pub fn snapshot(&self) -> TraceReader {
        self.clone()
    }

    /// Rewind to a previously captured snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot replays a different trace or region.
    pub fn restore(&mut self, snap: &TraceReader) {
        assert_eq!(
            (self.data.digest, self.base),
            (snap.data.digest, snap.base),
            "snapshot workload identity mismatch"
        );
        *self = snap.clone();
    }

    /// Serialise the replay state. The records themselves are not
    /// stored — only the content digest, which [`TraceReader::decode`]
    /// resolves through the registry — so checkpoints stay small and an
    /// edited trace file can never silently satisfy a stale checkpoint.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.data.digest);
        w.put_u64(self.base);
        w.put_u64(self.pos);
        w.put_u64(self.count);
    }

    /// Rebuild a reader from a [`TraceReader::encode`] payload. The
    /// trace must already be registered in this process (the caller
    /// registers workloads before restoring checkpoints); an unknown
    /// digest or out-of-range cursor is a [`CodecError`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TraceReader, CodecError> {
        let digest = r.u64()?;
        let data = find_trace_by_digest(digest).ok_or(CodecError::new(
            "trace digest not registered in this process",
        ))?;
        let base = r.u64()?;
        let pos = r.u64()?;
        if pos >= data.records.len() as u64 {
            return Err(CodecError::new("trace cursor beyond record count"));
        }
        Ok(TraceReader {
            data,
            base,
            pos,
            count: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        (0..500)
            .map(|i| TraceRecord {
                gap: (i % 7) as u32,
                block: (i * 37 % 4096) as u64,
                is_store: i % 3 == 0,
            })
            .collect()
    }

    #[test]
    fn both_encodings_round_trip() {
        let records = sample_records();
        for enc in [TraceEncoding::Absolute, TraceEncoding::Delta] {
            let bytes = encode_trace(&records, enc);
            let back = decode_trace(&bytes).expect("decode");
            assert_eq!(back, records, "{enc:?}");
            // Re-encoding is bit-for-bit stable.
            assert_eq!(encode_trace(&back, enc), bytes, "{enc:?}");
        }
    }

    #[test]
    fn delta_encoding_is_compact_for_streams() {
        let streaming: Vec<TraceRecord> = (0..1000)
            .map(|i| TraceRecord {
                gap: 2,
                block: i,
                is_store: false,
            })
            .collect();
        let delta = encode_trace(&streaming, TraceEncoding::Delta);
        // Header + ~2 bytes per record.
        assert!(delta.len() < 24 + 1000 * 3, "got {} bytes", delta.len());
        let absolute = encode_trace(&streaming, TraceEncoding::Absolute);
        assert!(delta.len() < absolute.len());
    }

    #[test]
    fn synthetic_dump_round_trips_bit_for_bit() {
        for bench in [Benchmark::Libquantum, Benchmark::Mcf, Benchmark::Soplex] {
            let records = dump_synthetic(bench, 2_000, 7);
            let bytes = encode_trace(&records, TraceEncoding::Delta);
            let back = decode_trace(&bytes).expect("decode");
            assert_eq!(back, records, "{bench:?}");
            assert_eq!(encode_trace(&back, TraceEncoding::Delta), bytes);
        }
    }

    #[test]
    fn malformed_headers_yield_typed_errors() {
        let good = encode_trace(&sample_records(), TraceEncoding::Delta);

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_trace(&bad), Err(TraceError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 99; // version
        assert!(matches!(
            decode_trace(&bad),
            Err(TraceError::UnsupportedVersion(99))
        ));

        let mut bad = good.clone();
        bad[12] |= 0x80; // unknown flag bit
        assert!(matches!(
            decode_trace(&bad),
            Err(TraceError::UnknownFlags(_))
        ));

        let mut empty = encode_trace(&sample_records()[..1], TraceEncoding::Delta);
        empty[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(decode_trace(&empty), Err(TraceError::Empty)));

        // Declared count far beyond the payload.
        let mut bad = good.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_trace(&bad),
            Err(TraceError::CountExceedsPayload { .. })
        ));

        // Truncations at every boundary class: inside the header,
        // inside the records, and just shy of the end.
        for cut in [3, 11, 17, good.len() / 2, good.len() - 1] {
            assert!(
                decode_trace(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            decode_trace(&bad),
            Err(TraceError::TrailingBytes(1))
        ));
    }

    #[test]
    fn out_of_region_blocks_rejected() {
        let rec = [TraceRecord {
            gap: 0,
            block: MAX_TRACE_BLOCKS - 1,
            is_store: false,
        }];
        // Legal at the boundary…
        decode_trace(&encode_trace(&rec, TraceEncoding::Absolute)).expect("boundary block");
        // …but hand-crafted beyond-region addresses are typed errors.
        let mut w = ByteWriter::new();
        w.put_bytes(TRACE_MAGIC);
        w.put_u32(TRACE_FORMAT_VERSION);
        w.put_u32(0);
        w.put_u64(1);
        w.put_varint(0);
        w.put_varint(MAX_TRACE_BLOCKS);
        assert!(matches!(
            decode_trace(&w.into_vec()),
            Err(TraceError::BlockOutOfRange(_))
        ));
        // Delta walking negative.
        let mut w = ByteWriter::new();
        w.put_bytes(TRACE_MAGIC);
        w.put_u32(TRACE_FORMAT_VERSION);
        w.put_u32(FLAG_DELTA);
        w.put_u64(1);
        w.put_varint(0);
        w.put_varint_signed(-5);
        assert!(matches!(
            decode_trace(&w.into_vec()),
            Err(TraceError::BlockOutOfRange(-5))
        ));
    }

    #[test]
    fn registry_interns_by_content() {
        let bytes = encode_trace(&sample_records(), TraceEncoding::Delta);
        let a = register_trace_bytes("intern-test", &bytes).expect("register");
        let b = register_trace_bytes("intern-test-other-name", &bytes).expect("register");
        assert_eq!(a, b, "same bytes, same handle");
        // Changed content: a different handle and digest.
        let mut records = sample_records();
        records[0].gap += 1;
        let edited = encode_trace(&records, TraceEncoding::Delta);
        let c = register_trace_bytes("intern-test", &edited).expect("register");
        assert_ne!(a, c, "edited content must get a new identity");
        let (Benchmark::Trace(ia), Benchmark::Trace(ic)) = (a, c) else {
            panic!("registry must return trace handles");
        };
        assert_ne!(trace_data(ia).digest, trace_data(ic).digest);
    }

    #[test]
    fn reader_replays_and_wraps() {
        let records = sample_records();
        let bytes = encode_trace(&records, TraceEncoding::Delta);
        let Benchmark::Trace(id) = register_trace_bytes("wrap-test", &bytes).unwrap() else {
            panic!()
        };
        let base = 7u64 << 26;
        let mut reader = TraceReader::new(id, base);
        for lap in 0..3 {
            for rec in &records {
                let op = reader.next_op();
                assert_eq!(op.block, base + rec.block, "lap {lap}");
                assert_eq!(op.gap, rec.gap);
                assert_eq!(op.is_store, rec.is_store);
                assert!(!op.dependent);
            }
        }
        assert_eq!(reader.generated(), 3 * records.len() as u64);
    }

    #[test]
    fn reader_snapshot_restore_and_codec_round_trip() {
        let bytes = encode_trace(&sample_records(), TraceEncoding::Delta);
        let Benchmark::Trace(id) = register_trace_bytes("snap-test", &bytes).unwrap() else {
            panic!()
        };
        let mut reader = TraceReader::new(id, 1 << 26);
        for _ in 0..777 {
            reader.next_op();
        }
        let snap = reader.snapshot();
        let mut w = ByteWriter::new();
        reader.encode(&mut w);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        let mut decoded = TraceReader::decode(&mut r).expect("decode");
        r.finish().expect("fully consumed");

        let reference: Vec<TraceOp> = (0..1500).map(|_| reader.next_op()).collect();
        for want in &reference {
            let got = decoded.next_op();
            assert_eq!(
                (got.block, got.gap, got.is_store),
                (want.block, want.gap, want.is_store)
            );
        }
        // Diverge, rewind, replay.
        for _ in 0..99 {
            reader.next_op();
        }
        reader.restore(&snap);
        for want in &reference {
            let got = reader.next_op();
            assert_eq!(got.block, want.block);
        }
    }

    #[test]
    fn reader_decode_rejects_unknown_digest_and_bad_cursor() {
        let bytes = encode_trace(&sample_records(), TraceEncoding::Delta);
        let Benchmark::Trace(id) = register_trace_bytes("decode-reject", &bytes).unwrap() else {
            panic!()
        };
        let reader = TraceReader::new(id, 0);
        let mut w = ByteWriter::new();
        reader.encode(&mut w);
        let mut buf = w.into_vec();
        buf[0] ^= 0xFF; // digest no longer matches any registration
        assert!(TraceReader::decode(&mut ByteReader::new(&buf)).is_err());
        // Cursor beyond the record count.
        let mut w = ByteWriter::new();
        w.put_u64(reader.data.digest);
        w.put_u64(0);
        w.put_u64(reader.len());
        w.put_u64(0);
        let buf = w.into_vec();
        assert!(TraceReader::decode(&mut ByteReader::new(&buf)).is_err());
    }
}
