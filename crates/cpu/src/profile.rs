//! Benchmark profiles: the 11 SPEC CPU2006 memory-intensive benchmarks of
//! Table I, characterised for the synthetic generators.
//!
//! The parameters are qualitative but deliberate, drawn from the standard
//! characterisation literature for these benchmarks: lbm is a write-heavy
//! streaming stencil; libquantum streams one large array with modest
//! writes; mcf and omnetpp are pointer-chasers with large and mid-size
//! working sets respectively; leslie3d/bwaves/GemsFDTD/milc are multi-
//! stream scientific codes; gcc/soplex/astar sit in between. What matters
//! for the controller study is the *shape* of the resulting L2 miss and
//! writeback streams (row locality, read/write balance, dependence), not
//! exact MPKI values.

use crate::tracefile::{self, TraceId};

/// The benchmarks appearing in Table I, plus registered trace-file
/// workloads (see [`crate::tracefile`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(non_camel_case_types)]
pub enum Benchmark {
    /// 429.mcf — pointer-chasing over a huge graph.
    Mcf,
    /// 450.soplex — sparse LP solver, mixed pattern.
    Soplex,
    /// 403.gcc — compiler, mixed, moderate intensity.
    Gcc,
    /// 462.libquantum — single-array streaming.
    Libquantum,
    /// 473.astar — path-finding, pointer-heavy, small-ish working set.
    Astar,
    /// 471.omnetpp — discrete-event simulator, pointer-chasing.
    Omnetpp,
    /// 459.GemsFDTD — FDTD solver, many concurrent streams.
    GemsFDTD,
    /// 437.leslie3d — CFD, multi-stream.
    Leslie3d,
    /// 410.bwaves — CFD, large streams.
    Bwaves,
    /// 470.lbm — lattice-Boltzmann, write-heavy streaming.
    Lbm,
    /// 433.milc — lattice QCD, strided/mixed.
    Milc,
    /// A replayed trace-file workload, registered through
    /// [`crate::tracefile::register_trace_file`]. The handle is `Copy`
    /// like every Table I benchmark, so trace workloads slot into mixes
    /// and harness tables unchanged; the records live in the process
    /// trace registry.
    Trace(TraceId),
}

impl Benchmark {
    /// All *synthetic* benchmarks, in a fixed order (indexing PCs and
    /// seeds). Trace workloads are registered at runtime and do not
    /// appear here.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Mcf,
        Benchmark::Soplex,
        Benchmark::Gcc,
        Benchmark::Libquantum,
        Benchmark::Astar,
        Benchmark::Omnetpp,
        Benchmark::GemsFDTD,
        Benchmark::Leslie3d,
        Benchmark::Bwaves,
        Benchmark::Lbm,
        Benchmark::Milc,
    ];

    /// Canonical lower-case name as used in Table I; for trace
    /// workloads, the name given at registration (usually the file
    /// stem).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mcf => "mcf",
            Benchmark::Soplex => "soplex",
            Benchmark::Gcc => "gcc",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Astar => "astar",
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::GemsFDTD => "GemsFDTD",
            Benchmark::Leslie3d => "leslie3d",
            Benchmark::Bwaves => "bwaves",
            Benchmark::Lbm => "lbm",
            Benchmark::Milc => "milc",
            Benchmark::Trace(id) => tracefile::trace_data(id).name,
        }
    }

    /// Parse a Table I name, falling back to registered trace names.
    pub fn from_name(s: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == s)
            .or_else(|| tracefile::find_trace_by_name(s))
    }

    /// Stable small integer id (PC-space partitioning). Synthetic
    /// benchmarks occupy 0..11; trace workloads follow in registration
    /// order, so every workload keeps a private 4096-entry PC window.
    pub fn id(self) -> u32 {
        match self {
            Benchmark::Trace(id) => Benchmark::ALL.len() as u32 + id.index() as u32,
            b => Benchmark::ALL.iter().position(|&x| x == b).unwrap() as u32,
        }
    }

    /// Whether this workload replays a trace file rather than a
    /// synthetic generator.
    pub fn is_trace(self) -> bool {
        matches!(self, Benchmark::Trace(_))
    }

    /// This benchmark's generator profile.
    ///
    /// # Panics
    /// Panics for trace workloads — a replayed trace has no synthetic
    /// profile; build an op stream with
    /// [`OpStream::for_bench`](crate::stream::OpStream::for_bench)
    /// instead of reaching for the generator parameters.
    pub fn profile(self) -> Profile {
        use Pattern::*;
        // (pattern, mem_fraction, store_fraction, ws_mb, mean_gap)
        match self {
            Benchmark::Mcf => Profile::new(self, Chase { chains: 8 }, 0.42, 0.18, 160, 2),
            Benchmark::Soplex => Profile::new(self, Mixed { stream_prob: 0.55 }, 0.36, 0.28, 32, 3),
            Benchmark::Gcc => Profile::new(self, Mixed { stream_prob: 0.60 }, 0.28, 0.30, 24, 3),
            Benchmark::Libquantum => Profile::new(self, Stream { streams: 2 }, 0.35, 0.25, 24, 2),
            Benchmark::Astar => Profile::new(self, Chase { chains: 4 }, 0.32, 0.24, 24, 3),
            Benchmark::Omnetpp => Profile::new(self, Chase { chains: 6 }, 0.33, 0.33, 32, 3),
            Benchmark::GemsFDTD => Profile::new(self, Stream { streams: 7 }, 0.40, 0.32, 128, 2),
            Benchmark::Leslie3d => Profile::new(self, Stream { streams: 5 }, 0.36, 0.30, 48, 2),
            Benchmark::Bwaves => Profile::new(self, Stream { streams: 4 }, 0.40, 0.30, 96, 2),
            Benchmark::Lbm => Profile::new(self, Stream { streams: 3 }, 0.40, 0.47, 192, 2),
            Benchmark::Milc => Profile::new(self, Mixed { stream_prob: 0.45 }, 0.36, 0.34, 64, 3),
            Benchmark::Trace(id) => panic!(
                "trace workload '{}' has no synthetic profile; drive it through an OpStream",
                tracefile::trace_data(id).name
            ),
        }
    }
}

/// Memory access pattern family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// `streams` concurrent sequential streams over the working set.
    Stream {
        /// Number of concurrent streams.
        streams: u8,
    },
    /// Pointer chasing over `chains` independent chains (dependent loads).
    Chase {
        /// Number of independent chains (= exploitable MLP).
        chains: u8,
    },
    /// Stream with probability `stream_prob`, random access otherwise.
    Mixed {
        /// Probability of taking the streaming component.
        stream_prob: f64,
    },
}

/// Full generator profile for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Which benchmark this is.
    pub bench: Benchmark,
    /// Access pattern family.
    pub pattern: Pattern,
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
    /// Working-set size in 64-byte blocks.
    pub ws_blocks: u64,
    /// Mean compute-instruction gap between memory ops (geometric).
    pub mean_gap: u32,
    /// Probability an access revisits far-past data (reuse distance
    /// beyond the L2 but within DRAM-cache residency). This is what makes
    /// the DRAM cache *hit* — SPEC's medium-distance temporal reuse.
    pub reuse_prob: f64,
}

impl Profile {
    fn new(
        bench: Benchmark,
        pattern: Pattern,
        mem_fraction: f64,
        store_fraction: f64,
        ws_mb: u64,
        mean_gap: u32,
    ) -> Profile {
        // Pointer-chasers re-traverse structures more than pure streams.
        let reuse_prob = match pattern {
            Pattern::Stream { .. } => 0.75,
            Pattern::Chase { .. } => 0.78,
            Pattern::Mixed { .. } => 0.78,
        };
        Profile {
            bench,
            pattern,
            mem_fraction,
            store_fraction,
            ws_blocks: ws_mb * 1024 * 1024 / 64,
            mean_gap,
            reuse_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("firefox"), None);
    }

    #[test]
    fn ids_are_unique_and_dense() {
        for (i, b) in Benchmark::ALL.iter().enumerate() {
            assert_eq!(b.id() as usize, i);
        }
    }

    #[test]
    fn profiles_are_sane() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.mem_fraction > 0.2 && p.mem_fraction < 0.5, "{b:?}");
            assert!(p.store_fraction > 0.1 && p.store_fraction < 0.5, "{b:?}");
            assert!(p.ws_blocks >= 20 * 1024 * 1024 / 64, "{b:?} ws too small");
            assert!(p.mean_gap >= 2, "{b:?}");
        }
    }

    #[test]
    fn trace_handles_have_names_ids_and_no_profile() {
        use crate::tracefile::{encode_trace, register_trace_bytes, TraceEncoding, TraceRecord};
        let bytes = encode_trace(
            &[TraceRecord {
                gap: 1,
                block: 42,
                is_store: false,
            }],
            TraceEncoding::Delta,
        );
        let b = register_trace_bytes("profile-trace-test", &bytes).expect("register");
        assert!(b.is_trace());
        assert_eq!(b.name(), "profile-trace-test");
        assert!(b.id() >= Benchmark::ALL.len() as u32, "ids follow Table I");
        assert_eq!(Benchmark::from_name("profile-trace-test"), Some(b));
        assert!(std::panic::catch_unwind(move || b.profile()).is_err());
    }

    #[test]
    fn lbm_is_the_write_heaviest() {
        let max = Benchmark::ALL
            .iter()
            .max_by(|a, b| {
                a.profile()
                    .store_fraction
                    .partial_cmp(&b.profile().store_fraction)
                    .unwrap()
            })
            .copied()
            .unwrap();
        assert_eq!(max, Benchmark::Lbm);
    }

    #[test]
    fn working_sets_contest_cache_capacity() {
        // Individual working sets exceed the L2 by an order of magnitude,
        // and the large benchmarks combine in 4-core mixes to contest the
        // 240 MB DRAM-cache data capacity.
        for b in Benchmark::ALL {
            assert!(b.profile().ws_blocks * 64 > 2 * 8 * 1024 * 1024, "{b:?}");
        }
        let big: u64 = Benchmark::ALL
            .iter()
            .map(|b| b.profile().ws_blocks * 64)
            .filter(|&ws| ws >= 96 * 1024 * 1024)
            .count() as u64;
        assert!(big >= 3, "need several large benchmarks, got {big}");
    }
}
