//! Weighted speedup and geometric-mean aggregation.

/// Weighted speedup of one multiprogrammed run:
/// `WS = Σ_i IPC_shared_i / IPC_alone_i` (Eyerman & Eeckhout \[15\]).
///
/// # Panics
/// Panics when the slices differ in length or an alone-IPC is
/// non-positive — both are harness bugs, not data.
pub fn weighted_speedup(ipc_shared: &[f64], ipc_alone: &[f64]) -> f64 {
    assert_eq!(ipc_shared.len(), ipc_alone.len(), "core count mismatch");
    ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive, got {a}");
            s / a
        })
        .sum()
}

/// Normalized weighted speedup: `WS_design / WS_baseline` — the y-axis of
/// Figs 8–11.
pub fn normalized_ws(ws_design: f64, ws_baseline: f64) -> f64 {
    assert!(ws_baseline > 0.0, "baseline WS must be positive");
    ws_design / ws_baseline
}

/// Geometric mean (the paper's cross-workload aggregate).
///
/// Returns 0.0 for an empty slice; panics on non-positive entries.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_of_identical_runs_is_core_count() {
        let ipc = [0.8, 1.2, 0.5, 2.0];
        assert!((weighted_speedup(&ipc, &ipc) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ws_reflects_slowdown() {
        let shared = [0.5, 0.5];
        let alone = [1.0, 1.0];
        assert!((weighted_speedup(&shared, &alone) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        assert!((normalized_ws(2.4, 2.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_order_invariant() {
        let a = geomean(&[1.1, 0.9, 1.3, 0.7]);
        let b = geomean(&[0.7, 1.3, 0.9, 1.1]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn ws_rejects_length_mismatch() {
        weighted_speedup(&[1.0], &[1.0, 2.0]);
    }
}
