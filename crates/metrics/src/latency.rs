//! Latency accumulation for the L2-miss-latency study (Figs 12–13).

use dca_sim_core::{Duration, Histogram, RunningMean, SimTime};

/// Accumulates request latencies with both a mean and a log2 histogram.
#[derive(Clone, Debug, Default)]
pub struct LatencyStat {
    mean: RunningMean,
    hist: Histogram,
}

impl LatencyStat {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request: issued at `start`, data at `end`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        let d = end.since(start);
        self.mean.push(d.as_ns_f64());
        self.hist.record(d.ps());
    }

    /// Record a pre-computed duration.
    pub fn record_duration(&mut self, d: Duration) {
        self.mean.push(d.as_ns_f64());
        self.hist.record(d.ps());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.mean.count()
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.mean.mean()
    }

    /// Approximate p99 in nanoseconds (log2-bucket resolution).
    pub fn p99_ns(&self) -> f64 {
        self.hist.quantile(0.99) as f64 / 1000.0
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.mean.merge(&other.mean);
        self.hist.merge(&other.hist);
    }

    /// Latency *improvement* of this stat relative to `baseline`, as the
    /// ratio `baseline_mean / self_mean` (>1 means faster than baseline).
    /// This is the Figs 12–13 metric.
    pub fn improvement_over(&self, baseline: &LatencyStat) -> f64 {
        if self.mean_ns() <= 0.0 {
            return 1.0;
        }
        baseline.mean_ns() / self.mean_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn records_and_averages() {
        let mut l = LatencyStat::new();
        l.record(t(0), t(100));
        l.record(t(50), t(150));
        l.record(t(0), t(400));
        assert_eq!(l.count(), 3);
        assert!((l.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_ratio() {
        let mut fast = LatencyStat::new();
        let mut slow = LatencyStat::new();
        fast.record_duration(Duration::from_ns(100));
        slow.record_duration(Duration::from_ns(150));
        assert!((fast.improvement_over(&slow) - 1.5).abs() < 1e-12);
        assert!(slow.improvement_over(&fast) < 1.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStat::new();
        let mut b = LatencyStat::new();
        a.record_duration(Duration::from_ns(100));
        b.record_duration(Duration::from_ns(300));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn p99_reflects_tail() {
        let mut l = LatencyStat::new();
        for _ in 0..99 {
            l.record_duration(Duration::from_ns(10));
        }
        l.record_duration(Duration::from_ns(10_000));
        assert!(l.p99_ns() >= 10.0);
    }
}
