//! # dca-metrics — evaluation metrics and report tables
//!
//! The paper's metrics (§V): **normalized weighted speedup** (Eyerman &
//! Eeckhout \[15\]) per workload, **geometric mean** across the 30 mixes,
//! and the per-request **L2 miss latency** averages behind Figs 12–13.

pub mod latency;
pub mod speedup;
pub mod table;

pub use latency::LatencyStat;
pub use speedup::{geomean, normalized_ws, weighted_speedup};
pub use table::Table;
