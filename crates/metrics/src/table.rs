//! Minimal fixed-column report tables (markdown-ish) for the figure
//! harness — keeps the bench binaries free of formatting clutter.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(out, " {c:<w$} |");
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<1$}|", "", w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as a small JSON document: `{"title", "header", "rows"}`.
    /// All cells are emitted as JSON strings — the table stores
    /// formatted text, not raw values — so the output is stable across
    /// renderers.
    pub fn to_json(&self, title: &str) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let cells = |row: &[String]| {
            row.iter()
                .map(|c| format!("\"{}\"", esc(c)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"title\": \"{}\",\n  \"header\": [{}],\n  \"rows\": [",
            esc(title),
            cells(&self.header)
        );
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = write!(out, "\n    [{}]{}", cells(row), sep);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new(vec!["design", "speedup"]);
        t.row(vec!["CD", "1.000"]);
        t.row(vec!["DCA", "1.164"]);
        let md = t.to_markdown();
        assert!(md.contains("| design | speedup |"));
        assert!(md.contains("| DCA    | 1.164   |"));
        assert!(md.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a\"b\\c", "1"]);
        let js = t.to_json("Fig X — \"quoted\"");
        assert!(js.contains("\"title\": \"Fig X — \\\"quoted\\\"\""));
        assert!(js.contains("\"a\\\"b\\\\c\""));
        assert!(js.contains("\"header\": [\"name\", \"value\"]"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a,b", "1"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\",1"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["one"]);
        t.row(vec!["a", "b"]);
    }
}
