//! Functional tag / dirty / replacement state.
//!
//! This array answers "hit or miss, which way, who's the victim" — the
//! *functional* half of the cache. The *timing* of reading and writing
//! this state through the DRAM array is what the controller designs
//! schedule; it is modelled by the access streams, not here.
//!
//! Replacement is pluggable per [`ReplacementPolicy`]:
//!
//! * [`ReplacementPolicy::Srrip`] (the default, and the only policy the
//!   seed model had): SRRIP (Jaleel et al., the paper's citation \[12\]
//!   for re-reference prediction) — 2-bit RRPV per way, hit promotes to
//!   0, insertion at 2, victim = first way with RRPV 3 (aging increments
//!   all until one qualifies).
//! * [`ReplacementPolicy::Lru`] / [`ReplacementPolicy::LruClean`] /
//!   [`ReplacementPolicy::LruDirty`]: true LRU stack positions per way
//!   (0 = MRU), with the gem5 `DRAMCacheCtrl` exemplar's `lruc`/`lrud`
//!   variants preferring to evict the LRU *clean* (no victim writeback)
//!   or LRU *dirty* (drain dirt early) way when one exists.
//!
//! For the direct-mapped organisation the set has one way and every
//! policy degenerates to the same trivial replacement.

use dca_sim_core::{ByteReader, ByteWriter, CodecError};

/// Outcome of inserting a block into a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Way the block was placed in.
    pub way: u16,
    /// Evicted victim `(tag, was_dirty)` if a valid block was displaced.
    pub evicted: Option<(u32, bool)>,
}

const RRPV_MAX: u8 = 3;
const RRPV_INSERT: u8 = 2;

/// Which replacement policy governs a [`TagArray`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// 2-bit SRRIP (seed behaviour, bit-identical to the pre-layer code).
    #[default]
    Srrip,
    /// True LRU: evict the least-recently-used way.
    Lru,
    /// LRU preferring clean victims (gem5 exemplar `lruc`): evict the
    /// LRU clean way when any way is clean, else plain LRU.
    LruClean,
    /// LRU preferring dirty victims (gem5 exemplar `lrud`): evict the
    /// LRU dirty way when any way is dirty, else plain LRU.
    LruDirty,
}

impl ReplacementPolicy {
    /// Every policy, SRRIP (the default) first.
    pub const ALL: [ReplacementPolicy; 4] = [
        ReplacementPolicy::Srrip,
        ReplacementPolicy::Lru,
        ReplacementPolicy::LruClean,
        ReplacementPolicy::LruDirty,
    ];

    /// Display label for reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::Srrip => "srrip",
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::LruClean => "lruc",
            ReplacementPolicy::LruDirty => "lrud",
        }
    }

    /// Stable numeric code for codecs and fingerprints.
    pub fn code(self) -> u8 {
        match self {
            ReplacementPolicy::Srrip => 0,
            ReplacementPolicy::Lru => 1,
            ReplacementPolicy::LruClean => 2,
            ReplacementPolicy::LruDirty => 3,
        }
    }

    /// Inverse of [`ReplacementPolicy::code`].
    pub fn from_code(code: u8) -> Option<ReplacementPolicy> {
        ReplacementPolicy::ALL
            .into_iter()
            .find(|p| p.code() == code)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TagEntry {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Per-way replacement state: the RRPV under SRRIP, the LRU stack
    /// position (0 = MRU) under the LRU family.
    state: u8,
}

/// The functional tag array: `sets × ways` entries, flat storage.
#[derive(Clone, Debug)]
pub struct TagArray {
    entries: Vec<TagEntry>,
    sets: u64,
    ways: u16,
    policy: ReplacementPolicy,
}

impl TagArray {
    /// An all-invalid array under the default (SRRIP) policy.
    pub fn new(sets: u64, ways: u16) -> Self {
        Self::with_policy(sets, ways, ReplacementPolicy::Srrip)
    }

    /// An all-invalid array governed by `policy`.
    pub fn with_policy(sets: u64, ways: u16, policy: ReplacementPolicy) -> Self {
        assert!(ways >= 1);
        assert!(sets >= 1);
        TagArray {
            entries: vec![TagEntry::default(); (sets * ways as u64) as usize],
            sets,
            ways,
            policy,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u16 {
        self.ways
    }

    /// Replacement policy in force.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    #[inline]
    fn base(&self, set: u64) -> usize {
        debug_assert!(set < self.sets);
        (set * self.ways as u64) as usize
    }

    /// Look up `tag` in `set`; returns the way on a hit. Pure.
    pub fn lookup(&self, set: u64, tag: u32) -> Option<u16> {
        let base = self.base(set);
        self.entries[base..base + self.ways as usize]
            .iter()
            .position(|e| e.valid && e.tag == tag)
            .map(|w| w as u16)
    }

    /// Whether (set, way) currently holds dirty data.
    pub fn is_dirty(&self, set: u64, way: u16) -> bool {
        self.entries[self.base(set) + way as usize].dirty
    }

    /// Record a hit on (set, way): promote its replacement state.
    pub fn touch(&mut self, set: u64, way: u16) {
        let base = self.base(set);
        match self.policy {
            ReplacementPolicy::Srrip => self.entries[base + way as usize].state = 0,
            _ => {
                // LRU family: move to MRU, older entries shift down.
                let old = self.entries[base + way as usize].state;
                for e in &mut self.entries[base..base + self.ways as usize] {
                    if e.valid && e.state < old {
                        e.state += 1;
                    }
                }
                self.entries[base + way as usize].state = 0;
            }
        }
    }

    /// Mark (set, way) dirty (hit by a writeback).
    pub fn set_dirty(&mut self, set: u64, way: u16, dirty: bool) {
        let base = self.base(set);
        self.entries[base + way as usize].dirty = dirty;
    }

    /// The LRU-family victim among a full set: the preferred class's
    /// oldest way, falling back to the overall LRU way. Ties cannot
    /// happen — stack positions are a permutation of `0..ways`.
    fn lru_victim(&self, base: usize) -> usize {
        let ways = &self.entries[base..base + self.ways as usize];
        let prefer: Option<fn(&TagEntry) -> bool> = match self.policy {
            ReplacementPolicy::LruClean => Some(|e| !e.dirty),
            ReplacementPolicy::LruDirty => Some(|e| e.dirty),
            _ => None,
        };
        let oldest = |pred: &dyn Fn(&TagEntry) -> bool| {
            ways.iter()
                .enumerate()
                .filter(|(_, e)| pred(e))
                .max_by_key(|(_, e)| e.state)
                .map(|(i, _)| i)
        };
        prefer
            .and_then(|p| oldest(&p))
            .or_else(|| oldest(&|_| true))
            .expect("full set has a victim")
    }

    /// Identify the victim way an insertion into `set` would use, without
    /// modifying anything. Invalid ways win first; otherwise the policy
    /// decides (SRRIP aging is *simulated* — the actual aging happens on
    /// insert).
    pub fn victim_way(&self, set: u64) -> (u16, Option<(u32, bool)>) {
        let base = self.base(set);
        let ways = &self.entries[base..base + self.ways as usize];
        if let Some(w) = ways.iter().position(|e| !e.valid) {
            return (w as u16, None);
        }
        let best = match self.policy {
            ReplacementPolicy::Srrip => {
                // SRRIP: pick the first way whose RRPV would reach MAX
                // first — i.e. the way with the highest current RRPV;
                // ties to lowest index.
                let mut best = 0usize;
                for (i, e) in ways.iter().enumerate().skip(1) {
                    if e.state > ways[best].state {
                        best = i;
                    }
                }
                best
            }
            _ => self.lru_victim(base),
        };
        let v = &ways[best];
        (best as u16, Some((v.tag, v.dirty)))
    }

    /// Insert `tag` into `set`, evicting per the policy if needed.
    pub fn insert(&mut self, set: u64, tag: u32, dirty: bool) -> InsertOutcome {
        match self.policy {
            ReplacementPolicy::Srrip => self.insert_srrip(set, tag, dirty),
            _ => self.insert_lru(set, tag, dirty),
        }
    }

    fn insert_srrip(&mut self, set: u64, tag: u32, dirty: bool) -> InsertOutcome {
        let base = self.base(set);
        // Reuse an invalid way when available.
        if let Some(w) = (0..self.ways as usize).find(|&w| !self.entries[base + w].valid) {
            self.entries[base + w] = TagEntry {
                tag,
                valid: true,
                dirty,
                state: RRPV_INSERT,
            };
            return InsertOutcome {
                way: w as u16,
                evicted: None,
            };
        }
        // Age until some way reaches RRPV_MAX.
        loop {
            if let Some(w) =
                (0..self.ways as usize).find(|&w| self.entries[base + w].state >= RRPV_MAX)
            {
                let victim = self.entries[base + w];
                self.entries[base + w] = TagEntry {
                    tag,
                    valid: true,
                    dirty,
                    state: RRPV_INSERT,
                };
                return InsertOutcome {
                    way: w as u16,
                    evicted: Some((victim.tag, victim.dirty)),
                };
            }
            for w in 0..self.ways as usize {
                self.entries[base + w].state += 1;
            }
        }
    }

    fn insert_lru(&mut self, set: u64, tag: u32, dirty: bool) -> InsertOutcome {
        let base = self.base(set);
        if let Some(w) = (0..self.ways as usize).find(|&w| !self.entries[base + w].valid) {
            // New block enters at MRU; every resident ages one step.
            for e in &mut self.entries[base..base + self.ways as usize] {
                if e.valid {
                    e.state += 1;
                }
            }
            self.entries[base + w] = TagEntry {
                tag,
                valid: true,
                dirty,
                state: 0,
            };
            return InsertOutcome {
                way: w as u16,
                evicted: None,
            };
        }
        let w = self.lru_victim(base);
        let victim = self.entries[base + w];
        // Ways younger than the victim age one step; older ones keep
        // their positions — the stack stays a permutation of 0..ways.
        for e in &mut self.entries[base..base + self.ways as usize] {
            if e.state < victim.state {
                e.state += 1;
            }
        }
        self.entries[base + w] = TagEntry {
            tag,
            valid: true,
            dirty,
            state: 0,
        };
        InsertOutcome {
            way: w as u16,
            evicted: Some((victim.tag, victim.dirty)),
        }
    }

    /// Invalidate (set, way); returns `(tag, was_dirty)` if it was valid.
    pub fn invalidate(&mut self, set: u64, way: u16) -> Option<(u32, bool)> {
        let base = self.base(set);
        let e = &mut self.entries[base + way as usize];
        if e.valid {
            e.valid = false;
            Some((e.tag, e.dirty))
        } else {
            None
        }
    }

    /// Count of valid entries (test/diagnostic helper; O(sets×ways)).
    pub fn valid_count(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }

    /// Capture the complete tag/dirty/replacement state as an owned
    /// checkpoint (one flat clone).
    pub fn snapshot(&self) -> TagArray {
        self.clone()
    }

    /// Overwrite this array's state with a previously captured snapshot.
    ///
    /// # Panics
    /// Panics on a geometry or policy mismatch.
    pub fn restore(&mut self, snap: &TagArray) {
        assert_eq!(
            (self.sets, self.ways),
            (snap.sets, snap.ways),
            "snapshot geometry mismatch: {}x{} vs {}x{}",
            snap.sets,
            snap.ways,
            self.sets,
            self.ways
        );
        assert_eq!(self.policy, snap.policy, "snapshot policy mismatch");
        *self = snap.clone();
    }

    /// Serialise the full state into `w` (checkpoint-file payload).
    /// Layout: sets, ways, policy code, then one
    /// `(tag, valid|dirty flags, state)` record per entry.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.sets);
        w.put_u16(self.ways);
        w.put_u8(self.policy.code());
        for e in &self.entries {
            w.put_u32(e.tag);
            w.put_u8(e.valid as u8 | (e.dirty as u8) << 1);
            w.put_u8(e.state);
        }
    }

    /// Rebuild an array from a [`TagArray::encode`] payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TagArray, CodecError> {
        let sets = r.u64()?;
        let ways = r.u16()?;
        if sets == 0 || ways == 0 {
            return Err(CodecError::new("invalid tag array geometry"));
        }
        let policy = ReplacementPolicy::from_code(r.u8()?)
            .ok_or(CodecError::new("unknown replacement policy code"))?;
        let n = sets
            .checked_mul(ways as u64)
            .ok_or(CodecError::new("tag array entry count overflow"))? as usize;
        // 6 bytes per entry follow; reject implausible counts from a
        // corrupt header *before* allocating for them.
        if r.remaining() < n.saturating_mul(6) {
            return Err(CodecError::new("tag array entry count exceeds buffer"));
        }
        // Per-policy bound on the per-way state byte.
        let state_ok = |s: u8| match policy {
            ReplacementPolicy::Srrip => s <= RRPV_MAX,
            _ => (s as u16) < ways,
        };
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.u32()?;
            let flags = r.u8()?;
            let state = r.u8()?;
            if flags > 0b11 || !state_ok(state) {
                return Err(CodecError::new("invalid tag entry state"));
            }
            entries.push(TagEntry {
                tag,
                valid: flags & 1 != 0,
                dirty: flags & 2 != 0,
                state,
            });
        }
        Ok(TagArray {
            entries,
            sets,
            ways,
            policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = TagArray::new(16, 4);
        assert_eq!(t.lookup(3, 77), None);
        let out = t.insert(3, 77, false);
        assert_eq!(out.evicted, None);
        assert_eq!(t.lookup(3, 77), Some(out.way));
    }

    #[test]
    fn dirty_tracking() {
        let mut t = TagArray::new(4, 2);
        let out = t.insert(1, 5, false);
        assert!(!t.is_dirty(1, out.way));
        t.set_dirty(1, out.way, true);
        assert!(t.is_dirty(1, out.way));
        t.set_dirty(1, out.way, false);
        assert!(!t.is_dirty(1, out.way));
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        for policy in ReplacementPolicy::ALL {
            let mut t = TagArray::with_policy(1, 4, policy);
            for tag in 0..4 {
                let out = t.insert(0, tag, false);
                assert_eq!(out.evicted, None, "{policy:?}: way {tag} should be free");
            }
            let out = t.insert(0, 99, false);
            assert!(out.evicted.is_some(), "{policy:?}: 5th insert must evict");
            assert_eq!(t.valid_count(), 4);
        }
    }

    #[test]
    fn srrip_protects_recently_touched() {
        let mut t = TagArray::new(1, 2);
        let a = t.insert(0, 1, false);
        let _b = t.insert(0, 2, false);
        // Touch tag 1 so its RRPV drops to 0; tag 2 stays at insert RRPV.
        t.touch(0, a.way);
        let out = t.insert(0, 3, false);
        let (victim_tag, _) = out.evicted.unwrap();
        assert_eq!(victim_tag, 2, "untouched block is the victim");
        assert_eq!(t.lookup(0, 1), Some(a.way));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut t = TagArray::with_policy(1, 3, ReplacementPolicy::Lru);
        for tag in 1..=3 {
            t.insert(0, tag, false);
        }
        // Touch 1 then 2: tag 3 becomes the LRU way.
        t.touch(0, t.lookup(0, 1).unwrap());
        t.touch(0, t.lookup(0, 2).unwrap());
        let out = t.insert(0, 9, false);
        assert_eq!(out.evicted, Some((3, false)));
        assert!(t.lookup(0, 1).is_some());
        assert!(t.lookup(0, 2).is_some());
    }

    #[test]
    fn lruc_prefers_clean_victims() {
        let mut t = TagArray::with_policy(1, 3, ReplacementPolicy::LruClean);
        t.insert(0, 1, true); // oldest, dirty
        t.insert(0, 2, false); // middle, clean
        t.insert(0, 3, true); // newest, dirty
        let out = t.insert(0, 9, false);
        assert_eq!(out.evicted, Some((2, false)), "clean way evicts first");
        // All dirty now: falls back to plain LRU (tag 1 is oldest).
        t.set_dirty(0, t.lookup(0, 9).unwrap(), true);
        let out = t.insert(0, 10, false);
        assert_eq!(out.evicted, Some((1, true)));
    }

    #[test]
    fn lrud_prefers_dirty_victims() {
        let mut t = TagArray::with_policy(1, 3, ReplacementPolicy::LruDirty);
        t.insert(0, 1, false); // oldest, clean
        t.insert(0, 2, true); // middle, dirty
        t.insert(0, 3, false); // newest, clean
        let out = t.insert(0, 9, false);
        assert_eq!(out.evicted, Some((2, true)), "dirty way evicts first");
        // All clean now: falls back to plain LRU (tag 1 is oldest).
        let out = t.insert(0, 10, false);
        assert_eq!(out.evicted, Some((1, false)));
    }

    #[test]
    fn lru_touch_never_evicts_and_keeps_permutation() {
        let mut t = TagArray::with_policy(2, 4, ReplacementPolicy::Lru);
        for tag in 0..4 {
            t.insert(1, tag, false);
        }
        for tag in 0..4u32 {
            t.touch(1, t.lookup(1, tag).unwrap());
            assert_eq!(t.valid_count(), 4);
            // Every resident must still be found.
            for probe in 0..4 {
                assert!(t.lookup(1, probe).is_some());
            }
        }
    }

    #[test]
    fn victim_way_predicts_insert() {
        for policy in ReplacementPolicy::ALL {
            let mut t = TagArray::with_policy(1, 4, policy);
            for tag in 0..4 {
                t.insert(0, tag, tag % 2 == 1);
            }
            let (way, evicted) = t.victim_way(0);
            let out = t.insert(0, 42, false);
            assert_eq!(way, out.way, "{policy:?}");
            assert_eq!(evicted, out.evicted, "{policy:?}");
        }
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut t = TagArray::new(1, 1);
        t.insert(0, 7, true);
        let out = t.insert(0, 8, false);
        assert_eq!(out.evicted, Some((7, true)));
        let out = t.insert(0, 9, false);
        assert_eq!(out.evicted, Some((8, false)));
    }

    #[test]
    fn invalidate_round_trip() {
        let mut t = TagArray::new(2, 2);
        let out = t.insert(1, 3, true);
        assert_eq!(t.invalidate(1, out.way), Some((3, true)));
        assert_eq!(t.invalidate(1, out.way), None);
        assert_eq!(t.lookup(1, 3), None);
    }

    #[test]
    fn direct_mapped_single_way() {
        for policy in ReplacementPolicy::ALL {
            let mut t = TagArray::with_policy(8, 1, policy);
            t.insert(5, 1, false);
            let out = t.insert(5, 2, true);
            assert_eq!(out.way, 0);
            assert_eq!(out.evicted, Some((1, false)));
            assert_eq!(t.lookup(5, 2), Some(0));
            assert_eq!(t.lookup(5, 1), None);
        }
    }

    #[test]
    fn snapshot_restore_and_codec_round_trip() {
        for policy in ReplacementPolicy::ALL {
            let mut t = TagArray::with_policy(64, 4, policy);
            let mut x = 5u64;
            for _ in 0..600 {
                x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
                let (set, tag) = (x % 64, (x >> 8) as u32 & 0xFF);
                match t.lookup(set, tag) {
                    Some(w) => t.touch(set, w),
                    None => {
                        t.insert(set, tag, x & 1 == 0);
                    }
                }
            }
            let snap = t.snapshot();

            // Codec round trip reproduces the snapshot bit-for-bit.
            let mut w = dca_sim_core::ByteWriter::new();
            snap.encode(&mut w);
            let buf = w.into_vec();
            let mut r = dca_sim_core::ByteReader::new(&buf);
            let mut decoded = TagArray::decode(&mut r).expect("decode");
            r.finish().expect("fully consumed");
            assert_eq!(decoded.policy(), policy);

            // Diverge, restore, then both must behave identically.
            for s in 0..64 {
                t.insert(s, 999, true);
            }
            t.restore(&snap);
            for _ in 0..600 {
                x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
                let (set, tag) = (x % 64, (x >> 8) as u32 & 0xFF);
                assert_eq!(t.lookup(set, tag), decoded.lookup(set, tag));
                assert_eq!(t.victim_way(set), decoded.victim_way(set));
                assert_eq!(
                    t.insert(set, tag, x & 1 == 0),
                    decoded.insert(set, tag, x & 1 == 0)
                );
            }
        }
    }

    #[test]
    fn decode_rejects_invalid_state() {
        for policy in [ReplacementPolicy::Srrip, ReplacementPolicy::Lru] {
            let mut t = TagArray::with_policy(2, 1, policy);
            t.insert(0, 1, false);
            let mut w = dca_sim_core::ByteWriter::new();
            t.encode(&mut w);
            let mut buf = w.into_vec();
            let last = buf.len() - 1; // state byte of the final entry
            buf[last] = match policy {
                ReplacementPolicy::Srrip => RRPV_MAX + 1,
                _ => 1, // stack position must stay below ways (= 1)
            };
            let mut r = dca_sim_core::ByteReader::new(&buf);
            assert!(TagArray::decode(&mut r).is_err(), "{policy:?}");
        }
    }

    #[test]
    fn decode_rejects_unknown_policy() {
        let t = TagArray::new(2, 1);
        let mut w = dca_sim_core::ByteWriter::new();
        t.encode(&mut w);
        let mut buf = w.into_vec();
        buf[10] = 0xEE; // the policy byte follows sets (8) + ways (2)
        let mut r = dca_sim_core::ByteReader::new(&buf);
        let err = TagArray::decode(&mut r).unwrap_err();
        assert!(err.to_string().contains("replacement policy"));
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn restore_rejects_wrong_geometry() {
        let a = TagArray::new(4, 2);
        let mut b = TagArray::new(8, 2);
        b.restore(&a.snapshot());
    }

    #[test]
    #[should_panic(expected = "policy mismatch")]
    fn restore_rejects_wrong_policy() {
        let a = TagArray::with_policy(4, 2, ReplacementPolicy::Lru);
        let mut b = TagArray::new(4, 2);
        b.restore(&a.snapshot());
    }

    #[test]
    fn sets_are_independent() {
        let mut t = TagArray::new(4, 1);
        t.insert(0, 1, false);
        t.insert(1, 2, false);
        assert_eq!(t.lookup(0, 1), Some(0));
        assert_eq!(t.lookup(1, 2), Some(0));
        assert_eq!(t.lookup(2, 1), None);
    }
}
