//! Functional tag / dirty / replacement state.
//!
//! This array answers "hit or miss, which way, who's the victim" — the
//! *functional* half of the cache. The *timing* of reading and writing
//! this state through the DRAM array is what the controller designs
//! schedule; it is modelled by the access streams, not here.
//!
//! Replacement is SRRIP (Jaleel et al., the paper's citation \[12\] for
//! re-reference prediction): 2-bit RRPV per way, hit promotes to 0,
//! insertion at 2, victim = first way with RRPV 3 (aging increments all
//! until one qualifies). For the direct-mapped organisation the set has
//! one way and replacement is trivial.

use dca_sim_core::{ByteReader, ByteWriter, CodecError};

/// Outcome of inserting a block into a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Way the block was placed in.
    pub way: u16,
    /// Evicted victim `(tag, was_dirty)` if a valid block was displaced.
    pub evicted: Option<(u32, bool)>,
}

const RRPV_MAX: u8 = 3;
const RRPV_INSERT: u8 = 2;

#[derive(Clone, Copy, Debug, Default)]
struct TagEntry {
    tag: u32,
    valid: bool,
    dirty: bool,
    rrpv: u8,
}

/// The functional tag array: `sets × ways` entries, flat storage.
#[derive(Clone, Debug)]
pub struct TagArray {
    entries: Vec<TagEntry>,
    sets: u64,
    ways: u16,
}

impl TagArray {
    /// An all-invalid array.
    pub fn new(sets: u64, ways: u16) -> Self {
        assert!(ways >= 1);
        assert!(sets >= 1);
        TagArray {
            entries: vec![TagEntry::default(); (sets * ways as u64) as usize],
            sets,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u16 {
        self.ways
    }

    #[inline]
    fn base(&self, set: u64) -> usize {
        debug_assert!(set < self.sets);
        (set * self.ways as u64) as usize
    }

    /// Look up `tag` in `set`; returns the way on a hit. Pure.
    pub fn lookup(&self, set: u64, tag: u32) -> Option<u16> {
        let base = self.base(set);
        self.entries[base..base + self.ways as usize]
            .iter()
            .position(|e| e.valid && e.tag == tag)
            .map(|w| w as u16)
    }

    /// Whether (set, way) currently holds dirty data.
    pub fn is_dirty(&self, set: u64, way: u16) -> bool {
        self.entries[self.base(set) + way as usize].dirty
    }

    /// Record a hit on (set, way): promote its replacement state.
    pub fn touch(&mut self, set: u64, way: u16) {
        let base = self.base(set);
        self.entries[base + way as usize].rrpv = 0;
    }

    /// Mark (set, way) dirty (hit by a writeback).
    pub fn set_dirty(&mut self, set: u64, way: u16, dirty: bool) {
        let base = self.base(set);
        self.entries[base + way as usize].dirty = dirty;
    }

    /// Identify the victim way an insertion into `set` would use, without
    /// modifying anything. Invalid ways win first; otherwise SRRIP aging
    /// is *simulated* (the actual aging happens on insert).
    pub fn victim_way(&self, set: u64) -> (u16, Option<(u32, bool)>) {
        let base = self.base(set);
        let ways = &self.entries[base..base + self.ways as usize];
        if let Some(w) = ways.iter().position(|e| !e.valid) {
            return (w as u16, None);
        }
        // SRRIP: pick the first way whose RRPV would reach MAX first —
        // i.e. the way with the highest current RRPV; ties to lowest index.
        let mut best = 0usize;
        for (i, e) in ways.iter().enumerate().skip(1) {
            if e.rrpv > ways[best].rrpv {
                best = i;
            }
        }
        let v = &ways[best];
        (best as u16, Some((v.tag, v.dirty)))
    }

    /// Insert `tag` into `set`, evicting per SRRIP if needed.
    pub fn insert(&mut self, set: u64, tag: u32, dirty: bool) -> InsertOutcome {
        let base = self.base(set);
        // Reuse an invalid way when available.
        if let Some(w) = (0..self.ways as usize).find(|&w| !self.entries[base + w].valid) {
            self.entries[base + w] = TagEntry {
                tag,
                valid: true,
                dirty,
                rrpv: RRPV_INSERT,
            };
            return InsertOutcome {
                way: w as u16,
                evicted: None,
            };
        }
        // Age until some way reaches RRPV_MAX.
        loop {
            if let Some(w) =
                (0..self.ways as usize).find(|&w| self.entries[base + w].rrpv >= RRPV_MAX)
            {
                let victim = self.entries[base + w];
                self.entries[base + w] = TagEntry {
                    tag,
                    valid: true,
                    dirty,
                    rrpv: RRPV_INSERT,
                };
                return InsertOutcome {
                    way: w as u16,
                    evicted: Some((victim.tag, victim.dirty)),
                };
            }
            for w in 0..self.ways as usize {
                self.entries[base + w].rrpv += 1;
            }
        }
    }

    /// Invalidate (set, way); returns `(tag, was_dirty)` if it was valid.
    pub fn invalidate(&mut self, set: u64, way: u16) -> Option<(u32, bool)> {
        let base = self.base(set);
        let e = &mut self.entries[base + way as usize];
        if e.valid {
            e.valid = false;
            Some((e.tag, e.dirty))
        } else {
            None
        }
    }

    /// Count of valid entries (test/diagnostic helper; O(sets×ways)).
    pub fn valid_count(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }

    /// Capture the complete tag/dirty/replacement state as an owned
    /// checkpoint (one flat clone).
    pub fn snapshot(&self) -> TagArray {
        self.clone()
    }

    /// Overwrite this array's state with a previously captured snapshot.
    ///
    /// # Panics
    /// Panics on a geometry mismatch.
    pub fn restore(&mut self, snap: &TagArray) {
        assert_eq!(
            (self.sets, self.ways),
            (snap.sets, snap.ways),
            "snapshot geometry mismatch: {}x{} vs {}x{}",
            snap.sets,
            snap.ways,
            self.sets,
            self.ways
        );
        *self = snap.clone();
    }

    /// Serialise the full state into `w` (checkpoint-file payload).
    /// Layout: sets, ways, then one `(tag, valid|dirty flags, rrpv)`
    /// record per entry.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.sets);
        w.put_u16(self.ways);
        for e in &self.entries {
            w.put_u32(e.tag);
            w.put_u8(e.valid as u8 | (e.dirty as u8) << 1);
            w.put_u8(e.rrpv);
        }
    }

    /// Rebuild an array from a [`TagArray::encode`] payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TagArray, CodecError> {
        let sets = r.u64()?;
        let ways = r.u16()?;
        if sets == 0 || ways == 0 {
            return Err(CodecError::new("invalid tag array geometry"));
        }
        let n = sets
            .checked_mul(ways as u64)
            .ok_or(CodecError::new("tag array entry count overflow"))? as usize;
        // 6 bytes per entry follow; reject implausible counts from a
        // corrupt header *before* allocating for them.
        if r.remaining() < n.saturating_mul(6) {
            return Err(CodecError::new("tag array entry count exceeds buffer"));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.u32()?;
            let flags = r.u8()?;
            let rrpv = r.u8()?;
            if flags > 0b11 || rrpv > RRPV_MAX {
                return Err(CodecError::new("invalid tag entry state"));
            }
            entries.push(TagEntry {
                tag,
                valid: flags & 1 != 0,
                dirty: flags & 2 != 0,
                rrpv,
            });
        }
        Ok(TagArray {
            entries,
            sets,
            ways,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = TagArray::new(16, 4);
        assert_eq!(t.lookup(3, 77), None);
        let out = t.insert(3, 77, false);
        assert_eq!(out.evicted, None);
        assert_eq!(t.lookup(3, 77), Some(out.way));
    }

    #[test]
    fn dirty_tracking() {
        let mut t = TagArray::new(4, 2);
        let out = t.insert(1, 5, false);
        assert!(!t.is_dirty(1, out.way));
        t.set_dirty(1, out.way, true);
        assert!(t.is_dirty(1, out.way));
        t.set_dirty(1, out.way, false);
        assert!(!t.is_dirty(1, out.way));
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut t = TagArray::new(1, 4);
        for tag in 0..4 {
            let out = t.insert(0, tag, false);
            assert_eq!(out.evicted, None, "way {} should be free", tag);
        }
        let out = t.insert(0, 99, false);
        assert!(out.evicted.is_some(), "5th insert must evict");
        assert_eq!(t.valid_count(), 4);
    }

    #[test]
    fn srrip_protects_recently_touched() {
        let mut t = TagArray::new(1, 2);
        let a = t.insert(0, 1, false);
        let _b = t.insert(0, 2, false);
        // Touch tag 1 so its RRPV drops to 0; tag 2 stays at insert RRPV.
        t.touch(0, a.way);
        let out = t.insert(0, 3, false);
        let (victim_tag, _) = out.evicted.unwrap();
        assert_eq!(victim_tag, 2, "untouched block is the victim");
        assert_eq!(t.lookup(0, 1), Some(a.way));
    }

    #[test]
    fn victim_way_predicts_insert() {
        let mut t = TagArray::new(1, 4);
        for tag in 0..4 {
            t.insert(0, tag, tag % 2 == 1);
        }
        let (way, evicted) = t.victim_way(0);
        let out = t.insert(0, 42, false);
        assert_eq!(way, out.way);
        assert_eq!(evicted, out.evicted);
    }

    #[test]
    fn eviction_reports_dirtiness() {
        let mut t = TagArray::new(1, 1);
        t.insert(0, 7, true);
        let out = t.insert(0, 8, false);
        assert_eq!(out.evicted, Some((7, true)));
        let out = t.insert(0, 9, false);
        assert_eq!(out.evicted, Some((8, false)));
    }

    #[test]
    fn invalidate_round_trip() {
        let mut t = TagArray::new(2, 2);
        let out = t.insert(1, 3, true);
        assert_eq!(t.invalidate(1, out.way), Some((3, true)));
        assert_eq!(t.invalidate(1, out.way), None);
        assert_eq!(t.lookup(1, 3), None);
    }

    #[test]
    fn direct_mapped_single_way() {
        let mut t = TagArray::new(8, 1);
        t.insert(5, 1, false);
        let out = t.insert(5, 2, true);
        assert_eq!(out.way, 0);
        assert_eq!(out.evicted, Some((1, false)));
        assert_eq!(t.lookup(5, 2), Some(0));
        assert_eq!(t.lookup(5, 1), None);
    }

    #[test]
    fn snapshot_restore_and_codec_round_trip() {
        let mut t = TagArray::new(64, 4);
        let mut x = 5u64;
        for _ in 0..600 {
            x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
            let (set, tag) = (x % 64, (x >> 8) as u32 & 0xFF);
            match t.lookup(set, tag) {
                Some(w) => t.touch(set, w),
                None => {
                    t.insert(set, tag, x & 1 == 0);
                }
            }
        }
        let snap = t.snapshot();

        // Codec round trip reproduces the snapshot bit-for-bit.
        let mut w = dca_sim_core::ByteWriter::new();
        snap.encode(&mut w);
        let buf = w.into_vec();
        let mut r = dca_sim_core::ByteReader::new(&buf);
        let mut decoded = TagArray::decode(&mut r).expect("decode");
        r.finish().expect("fully consumed");

        // Diverge, restore, then both must behave identically.
        for s in 0..64 {
            t.insert(s, 999, true);
        }
        t.restore(&snap);
        for _ in 0..600 {
            x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
            let (set, tag) = (x % 64, (x >> 8) as u32 & 0xFF);
            assert_eq!(t.lookup(set, tag), decoded.lookup(set, tag));
            assert_eq!(t.victim_way(set), decoded.victim_way(set));
            assert_eq!(
                t.insert(set, tag, x & 1 == 0),
                decoded.insert(set, tag, x & 1 == 0)
            );
        }
    }

    #[test]
    fn decode_rejects_invalid_rrpv() {
        let mut t = TagArray::new(2, 1);
        t.insert(0, 1, false);
        let mut w = dca_sim_core::ByteWriter::new();
        t.encode(&mut w);
        let mut buf = w.into_vec();
        let last = buf.len() - 1; // rrpv of the final entry
        buf[last] = RRPV_MAX + 1;
        let mut r = dca_sim_core::ByteReader::new(&buf);
        assert!(TagArray::decode(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn restore_rejects_wrong_geometry() {
        let a = TagArray::new(4, 2);
        let mut b = TagArray::new(8, 2);
        b.restore(&a.snapshot());
    }

    #[test]
    fn sets_are_independent() {
        let mut t = TagArray::new(4, 1);
        t.insert(0, 1, false);
        t.insert(1, 2, false);
        assert_eq!(t.lookup(0, 1), Some(0));
        assert_eq!(t.lookup(1, 2), Some(0));
        assert_eq!(t.lookup(2, 1), None);
    }
}
