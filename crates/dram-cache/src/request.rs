//! Cache-level request types.

/// Unique id for a cache request, assigned by the controller front-end.
pub type RequestId = u64;

/// The three request kinds a DRAM cache services (§II-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheReqKind {
    /// Demand read from the upper-level cache (L2 miss). Critical path.
    Read,
    /// Writeback of a dirty block evicted from the upper-level cache.
    Writeback,
    /// Refill: a block fetched from main memory being installed. The
    /// paper treats its translation as identical to a writeback.
    Refill,
}

impl CacheReqKind {
    /// True for demand reads (the PR class in DCA).
    pub fn is_demand_read(self) -> bool {
        matches!(self, CacheReqKind::Read)
    }
}

/// One request presented to the DRAM-cache controller.
#[derive(Clone, Copy, Debug)]
pub struct CacheRequest {
    /// Unique id.
    pub id: RequestId,
    /// Request kind.
    pub kind: CacheReqKind,
    /// 64-byte block address (byte address >> 6).
    pub block: u64,
    /// Issuing application / core (BLISS unit).
    pub app: u8,
    /// Synthetic instruction address of the triggering memory op, used by
    /// the MAP-I predictor. Zero for writebacks/refills.
    pub pc: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_read_classification() {
        assert!(CacheReqKind::Read.is_demand_read());
        assert!(!CacheReqKind::Writeback.is_demand_read());
        assert!(!CacheReqKind::Refill.is_demand_read());
    }
}
