//! Request → DRAM-access translation state machines (paper Fig 2).
//!
//! A DRAM-cache request cannot be expanded into accesses up front: the
//! tag read must *complete* before the design knows whether a read hit
//! (data read + replacement-bit tag write follow) or missed (go to main
//! memory), and before a writeback knows its victim. [`RequestFsm`]
//! models exactly this dependency structure:
//!
//! * **Set-associative read**: `RTr` → (hit) `RDr` + `WTr`, or (miss)
//!   respond-miss. Three accesses on a hit, one on a miss.
//! * **Set-associative writeback/refill**: `RTw` → (hit) `WDw` + `WTw`;
//!   (miss, dirty victim) `RDw` → `WDw` + `WTw` and the victim's data
//!   goes to main memory; (miss, clean victim) `WDw` + `WTw`.
//! * **Direct-mapped read**: one fused `TAD` read; hit answers directly,
//!   miss responds-miss.
//! * **Direct-mapped writeback/refill**: `TAD` read (tag check + victim
//!   capture in the same burst) → `TAD` write.
//!
//! The FSM also carries the DCA classification: every read access of a
//! demand-read request is a priority read (PR); every read access of a
//! writeback/refill is a low-priority read (LR) — §IV-B.

use dca_dram::AccessKind;
use dca_sched::ReadClass;

use crate::geometry::{BlockPlace, CacheGeometry, OrgKind};
use crate::request::{CacheReqKind, CacheRequest};
use crate::tags::TagArray;

/// What role an access plays within its request (paper Fig 2 labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessRole {
    /// RT: tag-block read (set-associative).
    TagRead,
    /// RD: data read for a read hit.
    DataRead,
    /// WT: tag write (replacement bits / tag install).
    TagWrite,
    /// WD: data write (writeback or refill data).
    DataWrite,
    /// RDw: dirty-victim data read on a writeback/refill miss.
    VictimRead,
    /// Fused tag+data read (direct-mapped).
    TadRead,
    /// Fused tag+data write (direct-mapped).
    TadWrite,
}

/// An access the controller should enqueue, with its scheduling metadata.
#[derive(Clone, Copy, Debug)]
pub struct AccessSpec {
    /// The DRAM access.
    pub access: dca_dram::DramAccess,
    /// Role within the request.
    pub role: AccessRole,
    /// DCA read classification (PR for demand-read reads, LR otherwise).
    pub class: ReadClass,
}

/// Everything a completed FSM step tells the controller to do.
#[derive(Clone, Debug, Default)]
pub struct FsmOutput {
    /// Accesses to enqueue now.
    pub enqueue: Vec<AccessSpec>,
    /// Read data is available — answer the demand read.
    pub respond_hit: bool,
    /// The read missed — the requester must fetch from main memory.
    pub respond_miss: bool,
    /// A dirty victim with this block address must be written to main
    /// memory.
    pub evict_dirty: Option<u64>,
    /// The request has fully completed (all its accesses done).
    pub done: bool,
    /// Set when the tag check resolved: `Some(true)` hit, `Some(false)`
    /// miss. Feeds the MAP-I predictor update.
    pub hit_known: Option<bool>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    AwaitTag,
    AwaitVictimRead,
    Draining,
    Done,
}

/// The per-request translation state machine.
#[derive(Clone, Debug)]
pub struct RequestFsm {
    req: CacheRequest,
    place: BlockPlace,
    state: State,
    /// Accesses issued but not yet completed.
    outstanding: u8,
    hit: Option<bool>,
    /// Pending writes to enqueue once the victim read completes.
    deferred_writes: bool,
    /// Victim block address to evict once its data has been read.
    pending_victim: Option<u64>,
}

impl RequestFsm {
    /// Start a request: returns the FSM and the initial accesses to
    /// enqueue (always exactly the tag/TAD read).
    pub fn start(req: CacheRequest, geom: &CacheGeometry) -> (RequestFsm, Vec<AccessSpec>) {
        let place = geom.place(req.block);
        let class = if req.kind.is_demand_read() {
            ReadClass::Priority
        } else {
            ReadClass::LowPriority
        };
        let first = match geom.kind() {
            OrgKind::SetAssoc { .. } => AccessSpec {
                access: geom.tag_access(&place, AccessKind::Read),
                role: AccessRole::TagRead,
                class,
            },
            OrgKind::DirectMapped => AccessSpec {
                access: geom.tad_access(&place, AccessKind::Read),
                role: AccessRole::TadRead,
                class,
            },
        };
        (
            RequestFsm {
                req,
                place,
                state: State::AwaitTag,
                outstanding: 1,
                hit: None,
                deferred_writes: false,
                pending_victim: None,
            },
            vec![first],
        )
    }

    /// The request this FSM serves.
    pub fn request(&self) -> &CacheRequest {
        &self.req
    }

    /// The block's cache placement.
    pub fn place(&self) -> &BlockPlace {
        &self.place
    }

    /// Whether the tag check has resolved, and how.
    pub fn hit(&self) -> Option<bool> {
        self.hit
    }

    /// Reconstruct a victim's block address from its tag.
    fn victim_block(&self, geom: &CacheGeometry, victim_tag: u32) -> u64 {
        victim_tag as u64 * geom.num_sets() + self.place.set
    }

    /// Drive the FSM: one of this request's accesses (`role`) completed.
    ///
    /// `tags` is the functional tag array — mutated here at tag-resolution
    /// time (the timing of the corresponding tag-write access is tracked
    /// separately by the controller's queues).
    pub fn on_access_done(
        &mut self,
        role: AccessRole,
        tags: &mut TagArray,
        geom: &CacheGeometry,
    ) -> FsmOutput {
        assert!(
            self.outstanding > 0,
            "completion with no outstanding access"
        );
        self.outstanding -= 1;
        let mut out = FsmOutput::default();

        match (self.state, role) {
            (State::AwaitTag, AccessRole::TagRead) | (State::AwaitTag, AccessRole::TadRead) => {
                self.resolve_tag(&mut out, tags, geom);
            }
            (State::AwaitVictimRead, AccessRole::VictimRead) => {
                // Victim data now read; release it to main memory and let
                // the deferred writes proceed.
                out.evict_dirty = self.pending_victim.take();
                debug_assert!(out.evict_dirty.is_some());
                if self.deferred_writes {
                    self.deferred_writes = false;
                    self.push_writes(&mut out, geom);
                }
                self.state = State::Draining;
            }
            (State::Draining, AccessRole::DataRead) => {
                // Demand-read data arrived.
                out.respond_hit = true;
            }
            (State::Draining, _) => {
                // Tag/data writes completing; nothing functional to do.
            }
            (state, role) => {
                unreachable!("unexpected completion {role:?} in state {state:?}")
            }
        }

        if self.outstanding == 0 && self.state == State::Draining {
            self.state = State::Done;
            out.done = true;
        }
        // Queue the freshly enqueued accesses into the outstanding count.
        self.outstanding += out.enqueue.len() as u8;
        if !out.enqueue.is_empty() && self.state == State::Done {
            // New work revives the request.
            self.state = State::Draining;
            out.done = false;
        }
        out
    }

    /// Handle tag-check resolution for all request kinds.
    fn resolve_tag(&mut self, out: &mut FsmOutput, tags: &mut TagArray, geom: &CacheGeometry) {
        let set = self.place.set;
        let tag = self.place.tag;
        let lookup = tags.lookup(set, tag);
        let is_dm = matches!(geom.kind(), OrgKind::DirectMapped);

        match self.req.kind {
            CacheReqKind::Read => match lookup {
                Some(way) => {
                    self.hit = Some(true);
                    out.hit_known = Some(true);
                    tags.touch(set, way);
                    if is_dm {
                        // TAD read already returned the data.
                        out.respond_hit = true;
                        self.state = State::Draining;
                    } else {
                        // Data read (PR) + replacement-bit tag write.
                        out.enqueue.push(AccessSpec {
                            access: geom.data_access(&self.place, way, AccessKind::Read),
                            role: AccessRole::DataRead,
                            class: ReadClass::Priority,
                        });
                        out.enqueue.push(AccessSpec {
                            access: geom.tag_access(&self.place, AccessKind::Write),
                            role: AccessRole::TagWrite,
                            class: ReadClass::LowPriority,
                        });
                        self.state = State::Draining;
                    }
                }
                None => {
                    self.hit = Some(false);
                    out.hit_known = Some(false);
                    out.respond_miss = true;
                    self.state = State::Draining;
                }
            },
            CacheReqKind::Writeback | CacheReqKind::Refill => {
                let install_dirty = matches!(self.req.kind, CacheReqKind::Writeback);
                match lookup {
                    Some(way) => {
                        self.hit = Some(true);
                        out.hit_known = Some(true);
                        tags.touch(set, way);
                        if install_dirty {
                            tags.set_dirty(set, way, true);
                        }
                        self.state = State::Draining;
                        self.push_writes(out, geom);
                    }
                    None => {
                        self.hit = Some(false);
                        out.hit_known = Some(false);
                        let outcome = tags.insert(set, tag, install_dirty);
                        match outcome.evicted {
                            Some((victim_tag, true)) => {
                                // Dirty victim: its data must be read out
                                // before the new data overwrites the slot.
                                let victim_block = self.victim_block(geom, victim_tag);
                                self.pending_victim = Some(victim_block);
                                if is_dm {
                                    // The TAD read already carried the
                                    // victim's data — no extra access.
                                    out.evict_dirty = self.pending_victim.take();
                                    self.state = State::Draining;
                                    self.push_writes(out, geom);
                                } else {
                                    out.enqueue.push(AccessSpec {
                                        access: geom.data_access(
                                            &self.place,
                                            outcome.way,
                                            AccessKind::Read,
                                        ),
                                        role: AccessRole::VictimRead,
                                        class: ReadClass::LowPriority,
                                    });
                                    self.deferred_writes = true;
                                    self.state = State::AwaitVictimRead;
                                }
                            }
                            _ => {
                                // Clean or no victim: write straight away.
                                self.state = State::Draining;
                                self.push_writes(out, geom);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Enqueue the write half of a writeback/refill.
    fn push_writes(&self, out: &mut FsmOutput, geom: &CacheGeometry) {
        match geom.kind() {
            OrgKind::SetAssoc { .. } => {
                out.enqueue.push(AccessSpec {
                    access: geom.data_access(&self.place, 0, AccessKind::Write),
                    role: AccessRole::DataWrite,
                    class: ReadClass::LowPriority,
                });
                out.enqueue.push(AccessSpec {
                    access: geom.tag_access(&self.place, AccessKind::Write),
                    role: AccessRole::TagWrite,
                    class: ReadClass::LowPriority,
                });
            }
            OrgKind::DirectMapped => {
                out.enqueue.push(AccessSpec {
                    access: geom.tad_access(&self.place, AccessKind::Write),
                    role: AccessRole::TadWrite,
                    class: ReadClass::LowPriority,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_dram::MappingScheme;

    fn sa_geom() -> CacheGeometry {
        CacheGeometry::paper(OrgKind::paper_set_assoc(), MappingScheme::Direct)
    }

    fn dm_geom() -> CacheGeometry {
        CacheGeometry::paper(OrgKind::DirectMapped, MappingScheme::Direct)
    }

    fn read_req(block: u64) -> CacheRequest {
        CacheRequest {
            id: 1,
            kind: CacheReqKind::Read,
            block,
            app: 0,
            pc: 0x400,
        }
    }

    fn wb_req(block: u64) -> CacheRequest {
        CacheRequest {
            id: 2,
            kind: CacheReqKind::Writeback,
            block,
            app: 0,
            pc: 0,
        }
    }

    fn refill_req(block: u64) -> CacheRequest {
        CacheRequest {
            id: 3,
            kind: CacheReqKind::Refill,
            block,
            app: 0,
            pc: 0,
        }
    }

    fn drive_to_done(
        fsm: &mut RequestFsm,
        first: Vec<AccessSpec>,
        tags: &mut TagArray,
        geom: &CacheGeometry,
    ) -> (Vec<AccessRole>, Vec<FsmOutput>) {
        // Complete accesses FIFO, collecting roles and outputs.
        let mut pending: Vec<AccessSpec> = first;
        let mut roles = Vec::new();
        let mut outs = Vec::new();
        let mut guard = 0;
        while !pending.is_empty() {
            guard += 1;
            assert!(guard < 32, "fsm did not terminate");
            let spec = pending.remove(0);
            roles.push(spec.role);
            let out = fsm.on_access_done(spec.role, tags, geom);
            pending.extend(out.enqueue.iter().copied());
            outs.push(out);
        }
        assert!(outs.last().unwrap().done, "last completion must finish fsm");
        (roles, outs)
    }

    #[test]
    fn sa_read_miss_is_one_access() {
        let geom = sa_geom();
        let mut tags = TagArray::new(geom.num_sets(), 15);
        let (mut fsm, first) = RequestFsm::start(read_req(100), &geom);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].role, AccessRole::TagRead);
        assert_eq!(first[0].class, ReadClass::Priority);
        let (roles, outs) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        assert_eq!(roles, vec![AccessRole::TagRead]);
        assert!(outs[0].respond_miss);
        assert_eq!(outs[0].hit_known, Some(false));
    }

    #[test]
    fn sa_read_hit_is_three_accesses() {
        let geom = sa_geom();
        let mut tags = TagArray::new(geom.num_sets(), 15);
        let p = geom.place(100);
        tags.insert(p.set, p.tag, false);
        let (mut fsm, first) = RequestFsm::start(read_req(100), &geom);
        let (roles, outs) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        assert_eq!(
            roles,
            vec![
                AccessRole::TagRead,
                AccessRole::DataRead,
                AccessRole::TagWrite
            ]
        );
        assert!(outs[1].respond_hit, "data read completion answers the read");
        assert_eq!(outs[0].hit_known, Some(true));
        // Data read is PR, the replacement-bit write rides low priority.
        assert_eq!(fsm.hit(), Some(true));
    }

    #[test]
    fn sa_writeback_hit_updates_in_place() {
        let geom = sa_geom();
        let mut tags = TagArray::new(geom.num_sets(), 15);
        let p = geom.place(100);
        tags.insert(p.set, p.tag, false);
        let (mut fsm, first) = RequestFsm::start(wb_req(100), &geom);
        assert_eq!(first[0].class, ReadClass::LowPriority, "RTw is an LR");
        let (roles, outs) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        assert_eq!(
            roles,
            vec![
                AccessRole::TagRead,
                AccessRole::DataWrite,
                AccessRole::TagWrite
            ]
        );
        assert!(outs.iter().all(|o| o.evict_dirty.is_none()));
        assert!(tags.is_dirty(p.set, tags.lookup(p.set, p.tag).unwrap()));
    }

    #[test]
    fn sa_writeback_miss_with_dirty_victim_reads_victim_first() {
        let geom = sa_geom();
        let mut tags = TagArray::new(geom.num_sets(), 15);
        let p = geom.place(100);
        // Fill the whole set with dirty blocks so insertion evicts dirty.
        for w in 0..15u64 {
            let block = 100 + (w + 1) * geom.num_sets();
            let q = geom.place(block);
            assert_eq!(q.set, p.set);
            tags.insert(q.set, q.tag, true);
        }
        let (mut fsm, first) = RequestFsm::start(wb_req(100), &geom);
        let (roles, outs) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        assert_eq!(
            roles,
            vec![
                AccessRole::TagRead,
                AccessRole::VictimRead,
                AccessRole::DataWrite,
                AccessRole::TagWrite
            ]
        );
        let evicts: Vec<u64> = outs.iter().filter_map(|o| o.evict_dirty).collect();
        assert_eq!(evicts.len(), 1);
        // The evicted block maps back to the same set.
        assert_eq!(geom.place(evicts[0]).set, p.set);
        // VictimRead must be an LR — this is precisely the access class
        // whose scheduling the paper is about.
        assert_eq!(
            outs[0].enqueue[0].class,
            ReadClass::LowPriority,
            "victim read is low priority"
        );
    }

    #[test]
    fn sa_refill_installs_clean() {
        let geom = sa_geom();
        let mut tags = TagArray::new(geom.num_sets(), 15);
        let (mut fsm, first) = RequestFsm::start(refill_req(500), &geom);
        let (roles, _) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        assert_eq!(
            roles,
            vec![
                AccessRole::TagRead,
                AccessRole::DataWrite,
                AccessRole::TagWrite
            ]
        );
        let p = geom.place(500);
        let way = tags.lookup(p.set, p.tag).unwrap();
        assert!(!tags.is_dirty(p.set, way), "refill data is clean");
    }

    #[test]
    fn dm_read_hit_is_single_access() {
        let geom = dm_geom();
        let mut tags = TagArray::new(geom.num_sets(), 1);
        let p = geom.place(100);
        tags.insert(p.set, p.tag, false);
        let (mut fsm, first) = RequestFsm::start(read_req(100), &geom);
        assert_eq!(first[0].role, AccessRole::TadRead);
        let (roles, outs) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        assert_eq!(roles, vec![AccessRole::TadRead]);
        assert!(outs[0].respond_hit);
        assert!(outs[0].done);
    }

    #[test]
    fn dm_read_miss_single_access() {
        let geom = dm_geom();
        let mut tags = TagArray::new(geom.num_sets(), 1);
        let (mut fsm, first) = RequestFsm::start(read_req(100), &geom);
        let (_, outs) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        assert!(outs[0].respond_miss);
    }

    #[test]
    fn dm_writeback_miss_dirty_victim_needs_no_extra_read() {
        let geom = dm_geom();
        let mut tags = TagArray::new(geom.num_sets(), 1);
        let p = geom.place(100);
        // Occupy the slot with a dirty block of a different tag.
        let other = 100 + geom.num_sets();
        let q = geom.place(other);
        assert_eq!(q.set, p.set);
        tags.insert(q.set, q.tag, true);
        let (mut fsm, first) = RequestFsm::start(wb_req(100), &geom);
        let (roles, outs) = drive_to_done(&mut fsm, first, &mut tags, &geom);
        // TAD read carried the victim: straight to the TAD write.
        assert_eq!(roles, vec![AccessRole::TadRead, AccessRole::TadWrite]);
        let evicts: Vec<u64> = outs.iter().filter_map(|o| o.evict_dirty).collect();
        assert_eq!(evicts, vec![other]);
    }

    #[test]
    fn dm_refill_after_read_miss_makes_future_hits() {
        let geom = dm_geom();
        let mut tags = TagArray::new(geom.num_sets(), 1);
        let (mut fsm, first) = RequestFsm::start(refill_req(100), &geom);
        drive_to_done(&mut fsm, first, &mut tags, &geom);
        let (mut fsm2, first2) = RequestFsm::start(read_req(100), &geom);
        let (_, outs) = drive_to_done(&mut fsm2, first2, &mut tags, &geom);
        assert!(outs[0].respond_hit, "refilled block now hits");
    }

    #[test]
    fn pr_lr_classification_follows_request_kind() {
        let geom = sa_geom();
        // Demand read → PR tag read; writeback → LR tag read (§IV-B).
        let (_, r) = RequestFsm::start(read_req(7), &geom);
        assert_eq!(r[0].class, ReadClass::Priority);
        let (_, w) = RequestFsm::start(wb_req(7), &geom);
        assert_eq!(w[0].class, ReadClass::LowPriority);
        let (_, f) = RequestFsm::start(refill_req(7), &geom);
        assert_eq!(f[0].class, ReadClass::LowPriority);
    }
}
