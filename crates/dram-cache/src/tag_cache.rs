//! ATCache-style SRAM tag cache (Huang & Nagarajan \[4\]) — the Fig 18 study.
//!
//! A small SRAM cache holds recently used *tag blocks* (one 64-byte tag
//! block per cache set). Because tag-block temporal locality is poor (the
//! tag working set of a 256 MB cache is ~12 MB, far beyond any affordable
//! SRAM), ATCache earns its latency wins from *spatial prefetching*:
//! a demand tag-block miss also fetches adjacent tag blocks.
//!
//! The paper's §VII observation, which this model reproduces: the
//! prefetches mean the number of DRAM **tag accesses does not drop — it
//! roughly doubles** even at 192 KB, so a tag cache aggravates rather
//! than solves the DRAM-cache scheduling problem.

/// Statistics of a tag-cache run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TagCacheStats {
    /// Demand lookups.
    pub lookups: u64,
    /// Demand lookups served from SRAM.
    pub hits: u64,
    /// Tag blocks read from DRAM (demand misses + prefetches).
    pub dram_tag_reads: u64,
    /// Dirty tag blocks written back to DRAM on eviction.
    pub dram_tag_writes: u64,
    /// Prefetch reads issued.
    pub prefetches: u64,
}

impl TagCacheStats {
    /// Total DRAM tag accesses (reads + writes) — the Fig 18 numerator.
    pub fn dram_tag_accesses(&self) -> u64 {
        self.dram_tag_reads + self.dram_tag_writes
    }

    /// Demand hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    block: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// The SRAM tag cache: set-associative over tag-block addresses, LRU.
#[derive(Clone, Debug)]
pub struct TagCache {
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    prefetch_degree: usize,
    clock: u64,
    stats: TagCacheStats,
}

impl TagCache {
    /// A tag cache of `capacity_bytes` of 64-byte tag blocks, 8-way, with
    /// `prefetch_degree` adjacent-block prefetches per demand miss.
    pub fn new(capacity_bytes: usize, prefetch_degree: usize) -> Self {
        let entries = (capacity_bytes / 64).max(8);
        let ways = 8usize;
        let sets = (entries / ways).next_power_of_two();
        TagCache {
            lines: vec![Line::default(); sets * ways],
            sets,
            ways,
            prefetch_degree,
            clock: 0,
            stats: TagCacheStats::default(),
        }
    }

    /// Capacity in bytes actually allocated.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * 64
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TagCacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        // Multiplicative hash: adjacent tag blocks land in different sets,
        // so prefetched neighbours do not thrash a single set.
        ((block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.sets - 1)
    }

    fn probe(&mut self, block: u64) -> Option<usize> {
        let base = self.set_of(block) * self.ways;
        (0..self.ways)
            .find(|&w| self.lines[base + w].valid && self.lines[base + w].block == block)
            .map(|w| base + w)
    }

    /// Insert `block`, evicting LRU; dirty evictions count a DRAM write.
    fn fill(&mut self, block: u64, dirty: bool) {
        let base = self.set_of(block) * self.ways;
        let mut victim = base;
        for w in 0..self.ways {
            let idx = base + w;
            if !self.lines[idx].valid {
                victim = idx;
                break;
            }
            if self.lines[idx].stamp < self.lines[victim].stamp {
                victim = idx;
            }
        }
        if self.lines[victim].valid && self.lines[victim].dirty {
            self.stats.dram_tag_writes += 1;
        }
        self.clock += 1;
        self.lines[victim] = Line {
            block,
            valid: true,
            dirty,
            stamp: self.clock,
        };
    }

    /// Capture the complete SRAM state (lines, LRU clock, stats) as an
    /// owned checkpoint.
    ///
    /// Note: the tag cache is an *offline* study (Fig 18) driven
    /// outside the simulated system — warm-up never touches it, so it
    /// is deliberately not part of `dca::WarmState`. Snapshots exist
    /// for the same reason as every other component's: so studies that
    /// share a warmed prefix (e.g. branching a prefetch-degree sweep
    /// off one streamed-in state) pay for it once.
    pub fn snapshot(&self) -> TagCache {
        self.clone()
    }

    /// Overwrite this cache's state with a previously captured snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot's geometry or prefetch degree differ.
    pub fn restore(&mut self, snap: &TagCache) {
        assert_eq!(
            (self.sets, self.ways, self.prefetch_degree),
            (snap.sets, snap.ways, snap.prefetch_degree),
            "snapshot configuration mismatch"
        );
        *self = snap.clone();
    }

    /// A demand access to the tag block of cache set `set_id`.
    ///
    /// `update` marks the access as modifying the tags (replacement-bit or
    /// tag-install write) — served in SRAM, written back on eviction.
    pub fn access(&mut self, set_id: u64, update: bool) {
        self.stats.lookups += 1;
        self.clock += 1;
        if let Some(idx) = self.probe(set_id) {
            self.stats.hits += 1;
            self.lines[idx].stamp = self.clock;
            if update {
                self.lines[idx].dirty = true;
            }
            return;
        }
        // Demand miss: one DRAM tag read, then spatial prefetches.
        self.stats.dram_tag_reads += 1;
        self.fill(set_id, update);
        for d in 1..=self.prefetch_degree as u64 {
            let neighbour = set_id + d;
            if self.probe(neighbour).is_none() {
                self.stats.dram_tag_reads += 1;
                self.stats.prefetches += 1;
                self.fill(neighbour, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_round_to_geometry() {
        let tc = TagCache::new(192 * 1024, 3);
        assert!(tc.capacity_bytes() >= 128 * 1024, "some rounding allowed");
    }

    #[test]
    fn repeated_access_hits() {
        let mut tc = TagCache::new(64 * 1024, 0);
        tc.access(42, false);
        tc.access(42, false);
        tc.access(42, false);
        assert_eq!(tc.stats().lookups, 3);
        assert_eq!(tc.stats().hits, 2);
        assert_eq!(tc.stats().dram_tag_reads, 1);
    }

    #[test]
    fn prefetch_fetches_neighbours() {
        let mut tc = TagCache::new(64 * 1024, 3);
        tc.access(100, false);
        // Demand + 3 neighbours.
        assert_eq!(tc.stats().dram_tag_reads, 4);
        assert_eq!(tc.stats().prefetches, 3);
        // Sequential walk now hits the prefetched blocks.
        tc.access(101, false);
        tc.access(102, false);
        assert_eq!(tc.stats().hits, 2);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut tc = TagCache::new(4 * 1024, 0); // 64 entries: easy to thrash
                                                 // Touch many distinct blocks with updates; dirty evictions follow.
        for b in 0..1000u64 {
            tc.access(b * 7919, true); // spread across sets
        }
        assert!(
            tc.stats().dram_tag_writes > 0,
            "dirty blocks must write back"
        );
    }

    #[test]
    fn low_temporal_locality_doubles_tag_traffic() {
        // The Fig 18 effect: a stream with little tag-block reuse sees
        // MORE DRAM tag accesses with prefetching than the 1-per-request
        // baseline.
        let mut tc = TagCache::new(192 * 1024, 3);
        let requests = 100_000u64;
        for i in 0..requests {
            // Pseudo-random set ids over a 256K-set space: reuse distance
            // far beyond SRAM capacity.
            let set = (i.wrapping_mul(2654435761)) % 262_144;
            tc.access(set, i % 4 == 0);
        }
        let ratio = tc.stats().dram_tag_accesses() as f64 / requests as f64;
        assert!(
            ratio > 1.5,
            "prefetching must inflate tag traffic, got {ratio:.2}"
        );
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        let mut tc = TagCache::new(16 * 1024, 2);
        for i in 0..5_000u64 {
            tc.access(i.wrapping_mul(2654435761) % 65_536, i % 5 == 0);
        }
        let snap = tc.snapshot();
        let mut twin = TagCache::new(16 * 1024, 2);
        twin.restore(&snap);
        for _ in 0..1_000 {
            tc.access(42, false);
        }
        tc.restore(&snap);
        for i in 0..5_000u64 {
            let set = i.wrapping_mul(2246822519) % 65_536;
            tc.access(set, i % 3 == 0);
            twin.access(set, i % 3 == 0);
        }
        assert_eq!(tc.stats().lookups, twin.stats().lookups);
        assert_eq!(tc.stats().hits, twin.stats().hits);
        assert_eq!(tc.stats().dram_tag_reads, twin.stats().dram_tag_reads);
        assert_eq!(tc.stats().dram_tag_writes, twin.stats().dram_tag_writes);
    }

    #[test]
    fn streaming_workload_benefits_from_prefetch() {
        // Conversely, a sequential set walk mostly hits after prefetch.
        let mut tc = TagCache::new(192 * 1024, 3);
        for set in 0..10_000u64 {
            tc.access(set, false);
        }
        assert!(
            tc.stats().hit_rate() > 0.5,
            "sequential walk should hit prefetched blocks, rate={:.2}",
            tc.stats().hit_rate()
        );
    }
}
