//! Cache geometry: block addresses → sets, slots and DRAM locations.
//!
//! Both organisations carve the stacked DRAM into 4 KB row frames of 64
//! 64-byte slots. Four slots per row hold tags, sixty hold data — giving
//! the paper's "256 MB (240 MB data capacity)" (Table II):
//!
//! * **Set-associative**: slots 0–3 are the tag blocks of the row's four
//!   sets; set `s`'s fifteen ways live in slots `4 + 15·s .. 4 + 15·(s+1)`.
//! * **Direct-mapped**: the same sixty data slots each hold one block's
//!   TAD (tag-and-data); tags ride in the spare slot capacity and move
//!   with the data in a single 80-byte burst, so no separate tag slot is
//!   ever addressed.

use dca_dram::{
    AccessKind, AddressMapper, BurstLen, DramAccess, Location, MappingScheme, Organization,
};

/// Which cache organisation is in force.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrgKind {
    /// Loh–Hill-style tags-in-row set-associative cache.
    SetAssoc {
        /// Associativity (paper: 15).
        ways: u16,
    },
    /// Alloy-style direct-mapped TAD cache.
    DirectMapped,
}

impl OrgKind {
    /// The paper's 15-way set-associative configuration.
    pub fn paper_set_assoc() -> Self {
        OrgKind::SetAssoc { ways: 15 }
    }

    /// Associativity of this organisation.
    pub fn ways(&self) -> u16 {
        match self {
            OrgKind::SetAssoc { ways } => *ways,
            OrgKind::DirectMapped => 1,
        }
    }

    /// Short label for reports ("SA"/"DM").
    pub fn label(&self) -> &'static str {
        match self {
            OrgKind::SetAssoc { .. } => "SA",
            OrgKind::DirectMapped => "DM",
        }
    }
}

/// Where a block lives (or would live) in the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockPlace {
    /// Global set index (direct-mapped: the slot index acts as the set).
    pub set: u64,
    /// Tag value to match within the set.
    pub tag: u32,
    /// Row frame index in the device.
    pub frame: u64,
    /// DRAM location of the frame (channel, bank, row).
    pub loc: Location,
    /// Set index within the row (SA: 0..4) or data slot within the row
    /// (DM: 0..60).
    pub slot_in_row: u32,
}

/// Full geometry: organisation kind + device shape + address mapping.
#[derive(Clone, Copy, Debug)]
pub struct CacheGeometry {
    kind: OrgKind,
    org: Organization,
    mapper: AddressMapper,
    sets_per_row: u64,
    data_slots_per_row: u64,
}

/// Data slots in a 4 KB row (64 total minus 4 tag slots).
const DATA_SLOTS: u64 = 60;
/// Sets per row in the set-associative organisation.
const SA_SETS_PER_ROW: u64 = 4;

impl CacheGeometry {
    /// Geometry for `kind` over `org` with mapping `scheme`.
    pub fn new(kind: OrgKind, org: Organization, scheme: MappingScheme) -> Self {
        if let OrgKind::SetAssoc { ways } = kind {
            assert_eq!(
                ways as u64 * SA_SETS_PER_ROW,
                DATA_SLOTS,
                "set-associative geometry must fill the 60 data slots"
            );
        }
        CacheGeometry {
            kind,
            org,
            mapper: AddressMapper::new(&org, scheme),
            sets_per_row: match kind {
                OrgKind::SetAssoc { .. } => SA_SETS_PER_ROW,
                OrgKind::DirectMapped => DATA_SLOTS,
            },
            data_slots_per_row: DATA_SLOTS,
        }
    }

    /// The paper's configuration for `kind` (256 MB device, RoBaRaChCo).
    pub fn paper(kind: OrgKind, scheme: MappingScheme) -> Self {
        Self::new(kind, Organization::paper(), scheme)
    }

    /// Organisation kind.
    pub fn kind(&self) -> OrgKind {
        self.kind
    }

    /// Device organisation.
    pub fn org(&self) -> &Organization {
        &self.org
    }

    /// The address mapper (for RRPC global-bank ids etc.).
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Total sets in the cache.
    pub fn num_sets(&self) -> u64 {
        self.mapper.frames() * self.sets_per_row
    }

    /// Data capacity in bytes (the paper's 240 MB).
    pub fn data_capacity_bytes(&self) -> u64 {
        self.mapper.frames() * self.data_slots_per_row * 64
    }

    /// Locate `block` (a 64-byte block address, i.e. byte address >> 6).
    pub fn place(&self, block: u64) -> BlockPlace {
        let set = block % self.num_sets();
        let tag = (block / self.num_sets()) as u32;
        let frame = set / self.sets_per_row;
        let slot_in_row = (set % self.sets_per_row) as u32;
        BlockPlace {
            set,
            tag,
            frame,
            loc: self.mapper.locate(frame),
            slot_in_row,
        }
    }

    /// The tag-block access for a set-associative request.
    ///
    /// # Panics
    /// Panics for direct-mapped geometry — DM never addresses a tag slot.
    pub fn tag_access(&self, place: &BlockPlace, kind: AccessKind) -> DramAccess {
        assert!(
            matches!(self.kind, OrgKind::SetAssoc { .. }),
            "tag slots only exist in the set-associative organisation"
        );
        DramAccess {
            bank: place.loc.bank,
            row: place.loc.row,
            kind,
            burst: BurstLen::Block64,
        }
    }

    /// A data access for way `way` of the set (set-associative).
    pub fn data_access(&self, place: &BlockPlace, _way: u16, kind: AccessKind) -> DramAccess {
        assert!(matches!(self.kind, OrgKind::SetAssoc { .. }));
        DramAccess {
            bank: place.loc.bank,
            row: place.loc.row,
            kind,
            burst: BurstLen::Block64,
        }
    }

    /// A fused TAD access (direct-mapped): one 80-byte burst.
    pub fn tad_access(&self, place: &BlockPlace, kind: AccessKind) -> DramAccess {
        assert!(matches!(self.kind, OrgKind::DirectMapped));
        DramAccess {
            bank: place.loc.bank,
            row: place.loc.row,
            kind,
            burst: BurstLen::Tad80,
        }
    }

    /// Global bank id of the place, for the DCA RRPC counters.
    pub fn global_bank(&self, place: &BlockPlace) -> u32 {
        self.mapper.global_bank(place.loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa() -> CacheGeometry {
        CacheGeometry::paper(OrgKind::paper_set_assoc(), MappingScheme::Direct)
    }

    fn dm() -> CacheGeometry {
        CacheGeometry::paper(OrgKind::DirectMapped, MappingScheme::Direct)
    }

    #[test]
    fn capacities_match_table2() {
        // 240 MB of data in both organisations.
        assert_eq!(sa().data_capacity_bytes(), 240 * 1024 * 1024);
        assert_eq!(dm().data_capacity_bytes(), 240 * 1024 * 1024);
        // SA: 65536 frames x 4 sets; DM: 65536 x 60 slots.
        assert_eq!(sa().num_sets(), 262_144);
        assert_eq!(dm().num_sets(), 3_932_160);
    }

    #[test]
    fn consecutive_blocks_share_rows() {
        // SA: 4 consecutive sets (blocks) per row; DM: 60 per row.
        let g = sa();
        let p0 = g.place(0);
        let p3 = g.place(3);
        let p4 = g.place(4);
        assert_eq!(p0.frame, p3.frame);
        assert_ne!(p0.frame, p4.frame);

        let g = dm();
        let p0 = g.place(0);
        let p59 = g.place(59);
        let p60 = g.place(60);
        assert_eq!(p0.frame, p59.frame);
        assert_ne!(p0.frame, p60.frame);
    }

    #[test]
    fn tag_extraction_round_trips() {
        let g = sa();
        let sets = g.num_sets();
        for &block in &[0u64, 1, sets - 1, sets, 7 * sets + 123, 1 << 30] {
            let p = g.place(block);
            assert_eq!(p.set + p.tag as u64 * sets, block, "block {block}");
        }
    }

    #[test]
    fn blocks_with_same_set_different_tag_collide() {
        let g = dm();
        let a = g.place(42);
        let b = g.place(42 + g.num_sets());
        assert_eq!(a.set, b.set);
        assert_ne!(a.tag, b.tag);
        assert_eq!(a.loc, b.loc);
    }

    #[test]
    fn sa_access_kinds() {
        let g = sa();
        let p = g.place(1234);
        let t = g.tag_access(&p, AccessKind::Read);
        assert_eq!(t.burst, BurstLen::Block64);
        assert_eq!(t.bank, p.loc.bank);
        assert_eq!(t.row, p.loc.row);
        let d = g.data_access(&p, 7, AccessKind::Write);
        assert_eq!(d.kind, AccessKind::Write);
    }

    #[test]
    fn dm_uses_tad_bursts() {
        let g = dm();
        let p = g.place(1234);
        let a = g.tad_access(&p, AccessKind::Read);
        assert_eq!(a.burst, BurstLen::Tad80);
    }

    #[test]
    #[should_panic(expected = "tag slots only exist")]
    fn dm_tag_access_panics() {
        let g = dm();
        let p = g.place(0);
        g.tag_access(&p, AccessKind::Read);
    }

    #[test]
    fn ways_and_labels() {
        assert_eq!(OrgKind::paper_set_assoc().ways(), 15);
        assert_eq!(OrgKind::DirectMapped.ways(), 1);
        assert_eq!(OrgKind::paper_set_assoc().label(), "SA");
        assert_eq!(OrgKind::DirectMapped.label(), "DM");
    }

    #[test]
    #[should_panic(expected = "60 data slots")]
    fn bad_associativity_panics() {
        CacheGeometry::paper(OrgKind::SetAssoc { ways: 8 }, MappingScheme::Direct);
    }

    #[test]
    fn xor_scheme_changes_banks_only() {
        let d = sa();
        let x = CacheGeometry::paper(OrgKind::paper_set_assoc(), MappingScheme::XorRemap);
        let mut diffs = 0;
        for block in (0..100_000u64).step_by(997) {
            let a = d.place(block);
            let b = x.place(block);
            assert_eq!(a.set, b.set);
            assert_eq!(a.loc.channel, b.loc.channel);
            assert_eq!(a.loc.row, b.loc.row);
            if a.loc.bank != b.loc.bank {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "remap must move some banks");
    }
}
