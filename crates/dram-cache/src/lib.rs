//! # dca-dram-cache — tags-in-DRAM cache organisations
//!
//! The DRAM cache proper: the functional and structural model of a 256 MB
//! die-stacked cache whose tags are embedded in the DRAM array (§II-B),
//! in both organisations the paper evaluates:
//!
//! * **Set-associative** (Loh & Hill \[6\]): each 4 KB row holds 4 sets of
//!   15 ways; the first four 64-byte slots of the row are tag blocks (one
//!   per set), the remaining 60 slots are data ways. A cache read costs a
//!   tag-block read, then a data read, then a tag write to update
//!   replacement state (Fig 2).
//! * **Direct-mapped** (Qureshi & Loh's Alloy cache \[7\]): tag and data are
//!   fused into an 80-byte TAD streamed in one wider burst, so a read is
//!   a single access — which is exactly why the paper's DCA gains are
//!   larger for direct-mapped (§VI-A).
//!
//! ## Design × organisation × replacement matrix
//!
//! Any controller design runs over any organisation under any
//! replacement policy; the axes are orthogonal:
//!
//! | Axis | Variants | Decided in |
//! |------|----------|------------|
//! | Controller design | CD, ROD, DCA, BAN (Banshee-style frequency-gated fill) | `dca_core::config::Design` |
//! | Organisation | SA (4×15-way tags-in-row), DM (Alloy TAD) | [`OrgKind`] |
//! | Replacement | `srrip` (default), `lru`, `lruc`, `lrud` | [`tags::ReplacementPolicy`] |
//! | Main memory | flat 50 ns, cycle-level DDR4, cycle-level XPoint | `dca_mem_hier::MainMemConfig` |
//!
//! The design axis lives in the controller/system crate (it schedules
//! the access streams); the organisation and replacement axes live here
//! (they define what the access streams *are* and which blocks
//! survive). For the direct-mapped organisation every replacement
//! policy degenerates to the same single-way behaviour.
//!
//! Modules:
//!
//! * [`geometry`] — address → (set, way-slot, DRAM location) for both
//!   organisations, including the RoBaRaChCo frame mapping and optional
//!   XOR remap.
//! * [`tags`] — the functional tag/dirty/replacement array with a
//!   pluggable [`tags::ReplacementPolicy`] (SRRIP default, plus the
//!   LRU family).
//! * [`request`] — cache-level request types (read / writeback / refill).
//! * [`translate`] — the per-request state machines that expand a cache
//!   request into its DRAM accesses *as dependencies resolve* (a tag read
//!   must complete before the design knows whether a data read follows).
//! * [`predictor`] — the MAP-I hit/miss predictor \[7\] used by all designs
//!   in the evaluation to overlap miss handling with tag access.
//! * [`tag_cache`] — an ATCache-style SRAM tag cache \[4\] with spatial
//!   prefetch, used to reproduce Fig 18's observation that small tag
//!   caches *increase* DRAM tag traffic.

pub mod geometry;
pub mod predictor;
pub mod request;
pub mod tag_cache;
pub mod tags;
pub mod translate;

pub use geometry::{BlockPlace, CacheGeometry, OrgKind};
pub use predictor::MapI;
pub use request::{CacheReqKind, CacheRequest, RequestId};
pub use tag_cache::{TagCache, TagCacheStats};
pub use tags::{InsertOutcome, ReplacementPolicy, TagArray};
pub use translate::{AccessRole, AccessSpec, FsmOutput, RequestFsm};
