//! MAP-I: the instruction-based DRAM-cache hit/miss predictor of Qureshi
//! & Loh \[7\], used by all controller designs in the paper's evaluation to
//! overlap the main-memory fetch with the tag check on predicted misses.
//!
//! A table of 3-bit saturating counters is indexed by a hash of the
//! triggering instruction's address (Memory Access Pattern, per
//! Instruction). Counter ≥ half-range predicts *hit*; hits increment,
//! misses decrement. The insight carried over from the paper: miss/hit
//! behaviour is strongly instruction-correlated, so even a 256-entry
//! table predicts well.

use dca_sim_core::{ByteReader, ByteWriter, CodecError};

/// Per-instruction hit/miss predictor.
#[derive(Clone, Debug)]
pub struct MapI {
    table: Vec<u8>,
    mask: u32,
    predictions: u64,
    correct: u64,
}

const COUNTER_MAX: u8 = 7;
/// Initial value biases toward predicting hit (optimistic start, matching
/// the MAP-I description).
const COUNTER_INIT: u8 = 4;

impl MapI {
    /// A predictor with `entries` counters (must be a power of two).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        MapI {
            table: vec![COUNTER_INIT; entries],
            mask: (entries - 1) as u32,
            predictions: 0,
            correct: 0,
        }
    }

    /// The paper-scale default: 256 entries (96 bytes of counters).
    pub fn paper() -> Self {
        Self::new(256)
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        // Cheap avalanche then mask; low bits of real PCs are mostly zero.
        let h = pc.wrapping_mul(0x9E37_79B9) >> 8;
        (h & self.mask) as usize
    }

    /// Predict whether the access by instruction `pc` will hit.
    pub fn predict_hit(&mut self, pc: u32) -> bool {
        self.predictions += 1;
        self.table[self.index(pc)] > COUNTER_MAX / 2
    }

    /// Train with the actual outcome.
    pub fn update(&mut self, pc: u32, hit: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if hit {
            if *c < COUNTER_MAX {
                *c += 1;
            }
        } else if *c > 0 {
            *c -= 1;
        }
    }

    /// Record whether a prior prediction turned out correct (accuracy
    /// bookkeeping only; call alongside [`MapI::update`]).
    pub fn record_outcome(&mut self, predicted_hit: bool, actual_hit: bool) {
        if predicted_hit == actual_hit {
            self.correct += 1;
        }
    }

    /// Fraction of predictions that were correct.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Capture the counter table and accuracy bookkeeping as an owned
    /// checkpoint.
    pub fn snapshot(&self) -> MapI {
        self.clone()
    }

    /// Overwrite this predictor's state with a previously captured
    /// snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot's table size differs.
    pub fn restore(&mut self, snap: &MapI) {
        assert_eq!(
            self.table.len(),
            snap.table.len(),
            "snapshot table size mismatch"
        );
        *self = snap.clone();
    }

    /// Serialise the full state into `w` (checkpoint-file payload).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.table.len() as u32);
        w.put_bytes(&self.table);
        w.put_u64(self.predictions);
        w.put_u64(self.correct);
    }

    /// Rebuild a predictor from a [`MapI::encode`] payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<MapI, CodecError> {
        let entries = r.u32()? as usize;
        if entries == 0 || !entries.is_power_of_two() {
            return Err(CodecError::new("invalid predictor table size"));
        }
        let table = r.bytes(entries)?.to_vec();
        if table.iter().any(|&c| c > COUNTER_MAX) {
            return Err(CodecError::new("predictor counter out of range"));
        }
        Ok(MapI {
            table,
            mask: (entries - 1) as u32,
            predictions: r.u64()?,
            correct: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_predicting_hit() {
        let mut p = MapI::paper();
        assert!(p.predict_hit(0x400), "optimistic initialisation");
    }

    #[test]
    fn learns_a_missing_instruction() {
        let mut p = MapI::paper();
        let pc = 0x1234;
        for _ in 0..4 {
            p.update(pc, false);
        }
        assert!(!p.predict_hit(pc), "after consistent misses, predicts miss");
        for _ in 0..4 {
            p.update(pc, true);
        }
        assert!(p.predict_hit(pc), "re-learns hits");
    }

    #[test]
    fn counters_saturate() {
        let mut p = MapI::new(64);
        let pc = 0x10;
        for _ in 0..100 {
            p.update(pc, true);
        }
        for _ in 0..4 {
            p.update(pc, false);
        }
        // 7 -> 3 after four misses: exactly at the threshold, predicts miss.
        assert!(!p.predict_hit(pc));
    }

    #[test]
    fn different_pcs_learn_independently() {
        let mut p = MapI::new(1024);
        // Use PCs that map to different table slots.
        let (a, b) = (0x4000, 0x8124);
        assert_ne!(p.index(a), p.index(b), "test PCs must not alias");
        for _ in 0..8 {
            p.update(a, false);
            p.update(b, true);
        }
        assert!(!p.predict_hit(a));
        assert!(p.predict_hit(b));
    }

    #[test]
    fn accuracy_tracking() {
        let mut p = MapI::paper();
        let pred = p.predict_hit(0x77);
        p.record_outcome(pred, true);
        let pred2 = p.predict_hit(0x77);
        p.record_outcome(pred2, false);
        assert_eq!(p.predictions(), 2);
        assert!((p.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        MapI::new(100);
    }

    #[test]
    fn snapshot_and_codec_round_trip() {
        let mut p = MapI::new(128);
        for pc in 0..500u32 {
            let pred = p.predict_hit(pc * 7);
            p.update(pc * 7, pc % 3 == 0);
            p.record_outcome(pred, pc % 3 == 0);
        }
        let snap = p.snapshot();
        let mut w = dca_sim_core::ByteWriter::new();
        snap.encode(&mut w);
        let buf = w.into_vec();
        let mut r = dca_sim_core::ByteReader::new(&buf);
        let mut decoded = MapI::decode(&mut r).expect("decode");
        r.finish().expect("fully consumed");

        // Diverge, restore, then live/decoded must agree exactly.
        for _ in 0..50 {
            p.update(0x40, false);
        }
        p.restore(&snap);
        assert_eq!(p.predictions(), decoded.predictions());
        assert_eq!(p.accuracy(), decoded.accuracy());
        for pc in 0..500u32 {
            assert_eq!(p.predict_hit(pc * 13), decoded.predict_hit(pc * 13));
            p.update(pc * 13, pc % 2 == 0);
            decoded.update(pc * 13, pc % 2 == 0);
        }
    }

    #[test]
    fn decode_rejects_out_of_range_counter() {
        let p = MapI::new(64);
        let mut w = dca_sim_core::ByteWriter::new();
        p.encode(&mut w);
        let mut buf = w.into_vec();
        buf[4] = COUNTER_MAX + 1; // first table byte, after the u32 size
        let mut r = dca_sim_core::ByteReader::new(&buf);
        assert!(MapI::decode(&mut r).is_err());
    }
}
