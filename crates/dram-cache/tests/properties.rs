//! Property-based tests: the functional tag array against a reference
//! model, geometry round-trips, and FSM access-count invariants.

use dca_dram::MappingScheme;
use dca_dram_cache::{
    CacheGeometry, CacheReqKind, CacheRequest, OrgKind, ReplacementPolicy, RequestFsm, TagArray,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// TagArray agrees with a reference map on membership after an
    /// arbitrary interleaving of inserts, touches and invalidates, and
    /// never exceeds its associativity per set.
    #[test]
    fn tag_array_matches_reference(
        ops in prop::collection::vec((0u64..32, 0u32..64, any::<bool>()), 1..300)
    ) {
        let ways = 4u16;
        let mut tags = TagArray::new(32, ways);
        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        for (set, tag, dirty) in ops {
            match tags.lookup(set, tag) {
                Some(way) => {
                    tags.touch(set, way);
                    tags.set_dirty(set, way, dirty);
                    prop_assert!(reference.get(&set).is_some_and(|v| v.contains(&tag)));
                }
                None => {
                    let out = tags.insert(set, tag, dirty);
                    let entry = reference.entry(set).or_default();
                    if let Some((victim, _)) = out.evicted {
                        entry.retain(|&t| t != victim);
                    }
                    entry.push(tag);
                    prop_assert!(entry.len() <= ways as usize, "set overflow");
                }
            }
            // Membership check both ways.
            for (&s, v) in &reference {
                for &t in v {
                    prop_assert!(tags.lookup(s, t).is_some(), "lost tag {t} in set {s}");
                }
            }
        }
    }

    /// Block placement round-trips: set + tag uniquely reconstruct the
    /// block, and all of a block's accesses land in one row frame.
    #[test]
    fn geometry_round_trip(blocks in prop::collection::vec(0u64..(1 << 34), 1..100), dm in any::<bool>()) {
        let kind = if dm { OrgKind::DirectMapped } else { OrgKind::paper_set_assoc() };
        let geom = CacheGeometry::paper(kind, MappingScheme::Direct);
        for b in blocks {
            let p = geom.place(b);
            prop_assert_eq!(p.set + p.tag as u64 * geom.num_sets(), b);
            prop_assert!(p.loc.channel < 4);
            prop_assert!(p.loc.bank < 16);
            prop_assert!((p.loc.row as u64) < 1024);
        }
    }

    /// Fig 2 access-count invariants: a demand read is 1 access on a
    /// miss and ≤3 on a hit (SA) or exactly 1 (DM); a writeback is ≤4.
    #[test]
    fn fsm_access_counts_match_fig2(
        block in 0u64..(1 << 30),
        dm in any::<bool>(),
        warm in any::<bool>(),
        wb in any::<bool>(),
    ) {
        let kind = if dm { OrgKind::DirectMapped } else { OrgKind::paper_set_assoc() };
        let geom = CacheGeometry::paper(kind, MappingScheme::Direct);
        let mut tags = TagArray::new(geom.num_sets(), kind.ways());
        if warm {
            let p = geom.place(block);
            tags.insert(p.set, p.tag, false);
        }
        let req = CacheRequest {
            id: 1,
            kind: if wb { CacheReqKind::Writeback } else { CacheReqKind::Read },
            block,
            app: 0,
            pc: 0,
        };
        let (mut fsm, first) = RequestFsm::start(req, &geom);
        let mut pending = first;
        let mut total = 0usize;
        let mut guard = 0;
        while !pending.is_empty() {
            guard += 1;
            prop_assert!(guard < 16, "fsm did not converge");
            let spec = pending.remove(0);
            total += 1;
            let out = fsm.on_access_done(spec.role, &mut tags, &geom);
            pending.extend(out.enqueue);
        }
        match (dm, wb, warm) {
            (true, false, _) => prop_assert_eq!(total, 1),          // DM read: 1 TAD
            (true, true, _) => prop_assert_eq!(total, 2),           // DM wb: TAD rd + TAD wr
            (false, false, true) => prop_assert_eq!(total, 3),      // SA read hit: RT+RD+WT
            (false, false, false) => prop_assert_eq!(total, 1),     // SA read miss: RT
            (false, true, _) => prop_assert!((3..=4).contains(&total)), // SA wb: RT+WD+WT (+RDw)
        }
    }

    /// Functional coherence: after a writeback to a block, a read of the
    /// same block hits; after eviction it misses.
    #[test]
    fn writeback_then_read_hits(block in 0u64..(1 << 28)) {
        let geom = CacheGeometry::paper(OrgKind::DirectMapped, MappingScheme::Direct);
        let mut tags = TagArray::new(geom.num_sets(), 1);
        let wb = CacheRequest { id: 1, kind: CacheReqKind::Writeback, block, app: 0, pc: 0 };
        let (mut fsm, first) = RequestFsm::start(wb, &geom);
        let mut pending = first;
        while !pending.is_empty() {
            let spec = pending.remove(0);
            let out = fsm.on_access_done(spec.role, &mut tags, &geom);
            pending.extend(out.enqueue);
        }
        let rd = CacheRequest { id: 2, kind: CacheReqKind::Read, block, app: 0, pc: 0 };
        let (mut fsm2, first2) = RequestFsm::start(rd, &geom);
        let out = fsm2.on_access_done(first2[0].role, &mut tags, &geom);
        prop_assert!(out.respond_hit, "block written back must be readable");
        // A conflicting block evicts it (direct-mapped).
        let other = block + geom.num_sets();
        let rf = CacheRequest { id: 3, kind: CacheReqKind::Refill, block: other, app: 0, pc: 0 };
        let (mut fsm3, first3) = RequestFsm::start(rf, &geom);
        let mut pending = first3;
        while !pending.is_empty() {
            let spec = pending.remove(0);
            let out = fsm3.on_access_done(spec.role, &mut tags, &geom);
            pending.extend(out.enqueue);
        }
        let rd2 = CacheRequest { id: 4, kind: CacheReqKind::Read, block, app: 0, pc: 0 };
        let (mut fsm4, first4) = RequestFsm::start(rd2, &geom);
        let out = fsm4.on_access_done(first4[0].role, &mut tags, &geom);
        prop_assert!(out.respond_miss, "evicted block must miss");
    }
}

// Replacement-policy invariants, checked for *every* policy the layer
// offers: the same op stream drives each policy's array, so a policy
// whose bookkeeping drifts (bad stack permutation, RRPV overflow, a
// victim outside the set) fails here before it can skew a figure.
proptest! {
    /// The victim is always a real way of the set, only a full set
    /// evicts, the evicted tag is resident, and `victim_way` exactly
    /// prophesies what `insert` then does.
    #[test]
    fn victim_is_always_a_valid_way_under_every_policy(
        ops in prop::collection::vec((0u64..16, 0u32..48, any::<bool>()), 1..200)
    ) {
        let (sets, ways) = (16u64, 4u16);
        for policy in ReplacementPolicy::ALL {
            let mut tags = TagArray::with_policy(sets, ways, policy);
            let mut resident: HashMap<u64, Vec<u32>> = HashMap::new();
            for &(set, tag, dirty) in &ops {
                if let Some(way) = tags.lookup(set, tag) {
                    tags.touch(set, way);
                    tags.set_dirty(set, way, dirty);
                    continue;
                }
                let entry = resident.entry(set).or_default();
                let (way, predicted) = tags.victim_way(set);
                prop_assert!(way < ways, "{policy:?}: victim way {way} out of range");
                prop_assert_eq!(
                    predicted.is_some(),
                    entry.len() == ways as usize,
                    "{policy:?}: eviction iff the set is full"
                );
                if let Some((vt, _)) = predicted {
                    prop_assert!(
                        entry.contains(&vt),
                        "{policy:?}: predicted victim {vt} is not resident in set {set}"
                    );
                }
                let out = tags.insert(set, tag, dirty);
                prop_assert_eq!(
                    (out.way, out.evicted),
                    (way, predicted),
                    "{policy:?}: victim_way must prophesy insert exactly"
                );
                if let Some((vt, _)) = out.evicted {
                    entry.retain(|&t| t != vt);
                }
                entry.push(tag);
                prop_assert!(entry.len() <= ways as usize, "{policy:?}: set overflow");
            }
        }
    }

    /// Promoting a hit never changes residency: no eviction, no lost
    /// tags, and the promoted block stays in its way.
    #[test]
    fn hit_promotion_never_evicts_under_every_policy(
        ops in prop::collection::vec((0u64..8, 0u32..24, any::<bool>()), 1..250)
    ) {
        for policy in ReplacementPolicy::ALL {
            let mut tags = TagArray::with_policy(8, 4, policy);
            let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
            for &(set, tag, dirty) in &ops {
                match tags.lookup(set, tag) {
                    Some(way) => {
                        let before = tags.valid_count();
                        tags.touch(set, way);
                        tags.set_dirty(set, way, dirty);
                        prop_assert_eq!(
                            tags.valid_count(),
                            before,
                            "{policy:?}: a hit promotion changed residency"
                        );
                        prop_assert_eq!(
                            tags.lookup(set, tag),
                            Some(way),
                            "{policy:?}: promoted block moved ways"
                        );
                    }
                    None => {
                        let out = tags.insert(set, tag, dirty);
                        let entry = reference.entry(set).or_default();
                        if let Some((vt, _)) = out.evicted {
                            entry.retain(|&t| t != vt);
                        }
                        entry.push(tag);
                    }
                }
                for (&s, v) in &reference {
                    for &t in v {
                        prop_assert!(
                            tags.lookup(s, t).is_some(),
                            "{policy:?}: lost tag {t} in set {s} after a promotion"
                        );
                    }
                }
            }
        }
    }

    /// Insert/invalidate round-trips preserve `valid_count`: an insert
    /// changes it by exactly the net fill, invalidating the inserted
    /// way returns exactly what went in, and a double invalidate is a
    /// no-op.
    #[test]
    fn insert_invalidate_round_trips_preserve_valid_count_under_every_policy(
        ops in prop::collection::vec(
            (0u64..8, 0u32..32, any::<bool>(), any::<bool>()), 1..200
        )
    ) {
        for policy in ReplacementPolicy::ALL {
            let mut tags = TagArray::with_policy(8, 4, policy);
            for &(set, tag, dirty, undo) in &ops {
                if tags.lookup(set, tag).is_some() {
                    continue;
                }
                let before = tags.valid_count();
                let out = tags.insert(set, tag, dirty);
                let expect = before + 1 - u64::from(out.evicted.is_some());
                prop_assert_eq!(
                    tags.valid_count(),
                    expect,
                    "{policy:?}: insert must change valid_count by the net fill"
                );
                if undo {
                    prop_assert_eq!(
                        tags.invalidate(set, out.way),
                        Some((tag, dirty)),
                        "{policy:?}: invalidate must return the inserted block"
                    );
                    prop_assert!(
                        tags.lookup(set, tag).is_none(),
                        "{policy:?}: invalidated block still hits"
                    );
                    prop_assert_eq!(
                        tags.invalidate(set, out.way),
                        None,
                        "{policy:?}: double invalidate must be a no-op"
                    );
                    prop_assert_eq!(
                        tags.valid_count(),
                        expect - 1,
                        "{policy:?}: round-trip must restore valid_count"
                    );
                }
            }
        }
    }
}
