//! Generic set-associative SRAM cache (L1 / L2 functional model).

use dca_sim_core::{ByteReader, ByteWriter, CodecError, Counter};

/// Statistics for one SRAM cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct SramStats {
    /// Total probes.
    pub accesses: Counter,
    /// Probe hits.
    pub hits: Counter,
    /// Probe misses.
    pub misses: Counter,
    /// Dirty evictions produced by allocations.
    pub writebacks: Counter,
}

impl SramStats {
    /// Hit rate over all probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// A set-associative write-back, write-allocate SRAM cache with LRU
/// replacement.
///
/// Functional only: the enclosing system model applies the fixed hit
/// latency (2 cycles L1, 20 cycles L2 per Table II). `probe` and
/// `allocate` are split so the system can model miss timing: a miss does
/// not install the block until its refill returns.
#[derive(Clone, Debug)]
pub struct SramCache {
    lines: Vec<Line>,
    sets: u64,
    ways: u16,
    clock: u64,
    stats: SramStats,
}

impl SramCache {
    /// A cache of `capacity_bytes` with 64-byte blocks and `ways`
    /// associativity. Set count must come out a power of two.
    pub fn new(capacity_bytes: u64, ways: u16) -> Self {
        assert!(ways >= 1);
        let blocks = capacity_bytes / 64;
        let sets = blocks / ways as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SramCache {
            lines: vec![Line::default(); (sets * ways as u64) as usize],
            sets,
            ways,
            clock: 0,
            stats: SramStats::default(),
        }
    }

    /// The paper's L1: 32 KB, 2-way.
    pub fn paper_l1() -> Self {
        Self::new(32 * 1024, 2)
    }

    /// The paper's shared L2: 8 MB, 16-way.
    pub fn paper_l2() -> Self {
        Self::new(8 * 1024 * 1024, 16)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u16 {
        self.ways
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SramStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, block: u64) -> u64 {
        block & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, block: u64) -> u64 {
        block >> self.sets.trailing_zeros()
    }

    #[inline]
    fn base(&self, set: u64) -> usize {
        (set * self.ways as u64) as usize
    }

    /// Probe for `block`; on a hit, updates LRU and (for writes) the dirty
    /// bit, and returns `true`.
    pub fn probe(&mut self, block: u64, is_write: bool) -> bool {
        self.stats.accesses.inc();
        self.clock += 1;
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = self.base(set);
        for w in 0..self.ways as usize {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.stamp = self.clock;
                if is_write {
                    line.dirty = true;
                }
                self.stats.hits.inc();
                return true;
            }
        }
        self.stats.misses.inc();
        false
    }

    /// Probe without any state change (no LRU update, no stats).
    pub fn peek(&self, block: u64) -> bool {
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = self.base(set);
        (0..self.ways as usize).any(|w| {
            let line = &self.lines[base + w];
            line.valid && line.tag == tag
        })
    }

    /// Whether `block` is present and dirty (no state change).
    pub fn peek_dirty(&self, block: u64) -> bool {
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = self.base(set);
        (0..self.ways as usize).any(|w| {
            let line = &self.lines[base + w];
            line.valid && line.tag == tag && line.dirty
        })
    }

    /// Install `block` (refill). Returns the evicted victim block and its
    /// dirtiness, if a valid line was displaced.
    pub fn allocate(&mut self, block: u64, dirty: bool) -> Option<(u64, bool)> {
        self.clock += 1;
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = self.base(set);
        // Already present (racing refills): just update.
        for w in 0..self.ways as usize {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.stamp = self.clock;
                line.dirty |= dirty;
                return None;
            }
        }
        let mut victim = base;
        for w in 0..self.ways as usize {
            let idx = base + w;
            if !self.lines[idx].valid {
                victim = idx;
                break;
            }
            if self.lines[idx].stamp < self.lines[victim].stamp {
                victim = idx;
            }
        }
        let evicted = if self.lines[victim].valid {
            let v = self.lines[victim];
            if v.dirty {
                self.stats.writebacks.inc();
            }
            Some((v.tag << self.sets.trailing_zeros() | set, v.dirty))
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty,
            stamp: self.clock,
        };
        evicted
    }

    /// Capture the cache's complete functional state — lines, LRU clock
    /// and statistics — as an owned checkpoint. One flat clone; no
    /// structural transformation, so `snapshot` → [`SramCache::restore`]
    /// is exact by construction.
    pub fn snapshot(&self) -> SramCache {
        self.clone()
    }

    /// Overwrite this cache's state with a previously captured snapshot.
    ///
    /// # Panics
    /// Panics if the snapshot was taken from a cache of different
    /// geometry — restoring across shapes is always a harness bug.
    pub fn restore(&mut self, snap: &SramCache) {
        assert_eq!(
            (self.sets, self.ways),
            (snap.sets, snap.ways),
            "snapshot geometry mismatch: {}x{} vs {}x{}",
            snap.sets,
            snap.ways,
            self.sets,
            self.ways
        );
        *self = snap.clone();
    }

    /// Serialise the full state into `w` (checkpoint-file payload).
    /// Layout: sets, ways, clock, the four statistics counters, then one
    /// `(tag, valid|dirty flags, stamp)` record per line.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.sets);
        w.put_u16(self.ways);
        w.put_u64(self.clock);
        for c in [
            self.stats.accesses,
            self.stats.hits,
            self.stats.misses,
            self.stats.writebacks,
        ] {
            w.put_u64(c.get());
        }
        for line in &self.lines {
            w.put_u64(line.tag);
            w.put_u8(line.valid as u8 | (line.dirty as u8) << 1);
            w.put_u64(line.stamp);
        }
    }

    /// Rebuild a cache from an [`SramCache::encode`] payload.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<SramCache, CodecError> {
        let sets = r.u64()?;
        let ways = r.u16()?;
        if ways == 0 || !sets.is_power_of_two() {
            return Err(CodecError::new("invalid SRAM cache geometry"));
        }
        let clock = r.u64()?;
        let stats = SramStats {
            accesses: Counter(r.u64()?),
            hits: Counter(r.u64()?),
            misses: Counter(r.u64()?),
            writebacks: Counter(r.u64()?),
        };
        let n = sets
            .checked_mul(ways as u64)
            .ok_or(CodecError::new("SRAM cache line count overflow"))? as usize;
        // 17 bytes per line follow; reject implausible counts from a
        // corrupt header *before* allocating for them.
        if r.remaining() < n.saturating_mul(17) {
            return Err(CodecError::new("SRAM cache line count exceeds buffer"));
        }
        let mut lines = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.u64()?;
            let flags = r.u8()?;
            if flags > 0b11 {
                return Err(CodecError::new("invalid SRAM line flags"));
            }
            lines.push(Line {
                tag,
                valid: flags & 1 != 0,
                dirty: flags & 2 != 0,
                stamp: r.u64()?,
            });
        }
        Ok(SramCache {
            lines,
            sets,
            ways,
            clock,
            stats,
        })
    }

    /// Clear the dirty bit of `block` if present (used by the Lee eager
    /// writeback: data is pushed downstream but the line stays resident).
    pub fn clean(&mut self, block: u64) -> bool {
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = self.base(set);
        for w in 0..self.ways as usize {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag && line.dirty {
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// All valid block addresses in the same set as `block` that are
    /// dirty, excluding `block` itself. Bounded by associativity.
    pub fn dirty_set_neighbours(&self, block: u64) -> Vec<u64> {
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = self.base(set);
        let shift = self.sets.trailing_zeros();
        (0..self.ways as usize)
            .filter_map(|w| {
                let line = &self.lines[base + w];
                (line.valid && line.dirty && line.tag != tag).then_some(line.tag << shift | set)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes() {
        let l1 = SramCache::paper_l1();
        assert_eq!(l1.sets(), 256);
        assert_eq!(l1.ways(), 2);
        let l2 = SramCache::paper_l2();
        assert_eq!(l2.sets(), 8192);
        assert_eq!(l2.ways(), 16);
    }

    #[test]
    fn probe_miss_then_allocate_then_hit() {
        let mut c = SramCache::new(4096, 2);
        assert!(!c.probe(100, false));
        assert_eq!(c.allocate(100, false), None);
        assert!(c.probe(100, false));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_it() {
        let mut c = SramCache::new(128, 1); // 2 sets, 1 way: tiny
        c.allocate(0, false);
        assert!(c.probe(0, true), "write hit");
        // Install a conflicting block in set 0 (block 2 -> same set).
        let evicted = c.allocate(2, false).unwrap();
        assert_eq!(evicted, (0, true));
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SramCache::new(256, 2); // 2 sets, 2 ways
        c.allocate(0, false); // set 0
        c.allocate(2, false); // set 0
        c.probe(0, false); // touch 0: now 2 is LRU
        let evicted = c.allocate(4, false).unwrap(); // set 0 again
        assert_eq!(evicted.0, 2);
    }

    #[test]
    fn victim_block_address_reconstruction() {
        let mut c = SramCache::new(4096, 1); // 64 sets
        let block = 0xABCDu64;
        c.allocate(block, true);
        let conflicting = block + 64; // same set, different tag
        let (victim, dirty) = c.allocate(conflicting, false).unwrap();
        assert_eq!(victim, block);
        assert!(dirty);
    }

    #[test]
    fn peek_does_not_disturb_lru_or_stats() {
        let mut c = SramCache::new(256, 2);
        c.allocate(0, false);
        c.allocate(2, false);
        assert!(c.peek(0));
        assert!(!c.peek(100));
        // peek(0) must NOT have refreshed 0's LRU position: 0 is oldest.
        let evicted = c.allocate(4, false).unwrap();
        assert_eq!(evicted.0, 0);
        assert_eq!(c.stats().accesses.get(), 0);
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = SramCache::new(256, 2);
        c.allocate(0, true);
        assert!(c.peek_dirty(0));
        assert!(c.clean(0));
        assert!(!c.peek_dirty(0));
        assert!(!c.clean(0), "already clean");
        // Eviction of the cleaned line is no longer a writeback.
        c.allocate(2, false);
        let evicted = c.allocate(4, false).unwrap();
        assert!(!evicted.1);
    }

    #[test]
    fn dirty_set_neighbours_lists_only_dirty() {
        let mut c = SramCache::new(1024, 4); // 4 sets, 4 ways
                                             // Blocks 0,4,8,12 all map to set 0 (4 sets).
        c.allocate(0, true);
        c.allocate(4, false);
        c.allocate(8, true);
        let mut n = c.dirty_set_neighbours(0);
        n.sort_unstable();
        assert_eq!(n, vec![8]);
    }

    #[test]
    fn allocate_existing_merges() {
        let mut c = SramCache::new(256, 2);
        c.allocate(0, false);
        assert_eq!(c.allocate(0, true), None, "no eviction on re-allocate");
        assert!(c.peek_dirty(0), "dirtiness merged in");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        SramCache::new(3 * 64, 1);
    }

    /// Drive two caches with the same op stream and assert identical
    /// observable behaviour (hit/miss, evictions, stats).
    fn assert_same_behaviour(a: &mut SramCache, b: &mut SramCache, seed: u64) {
        let mut x = seed;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let block = (x >> 33) % 512;
            let is_write = x & 1 == 0;
            assert_eq!(a.probe(block, is_write), b.probe(block, is_write));
            if x & 2 == 0 {
                assert_eq!(a.allocate(block, is_write), b.allocate(block, is_write));
            }
        }
        assert_eq!(a.stats().accesses, b.stats().accesses);
        assert_eq!(a.stats().writebacks, b.stats().writebacks);
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        let mut c = SramCache::new(8 * 1024, 4);
        let mut x = 99u64;
        for _ in 0..500 {
            x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
            c.probe(x % 300, x & 1 == 0);
            c.allocate(x % 300, x & 1 == 0);
        }
        let snap = c.snapshot();
        // Diverge the live cache, then restore.
        for b in 0..200 {
            c.allocate(b, true);
        }
        let mut fresh = SramCache::new(8 * 1024, 4);
        fresh.restore(&snap);
        c.restore(&snap);
        assert_same_behaviour(&mut c, &mut fresh, 7);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut c = SramCache::new(4 * 1024, 2);
        for b in 0..150u64 {
            c.probe(b * 3, b % 2 == 0);
            c.allocate(b * 3, b % 2 == 0);
        }
        let mut w = dca_sim_core::ByteWriter::new();
        c.encode(&mut w);
        let buf = w.into_vec();
        let mut r = dca_sim_core::ByteReader::new(&buf);
        let mut d = SramCache::decode(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(d.sets(), c.sets());
        assert_eq!(d.ways(), c.ways());
        assert_same_behaviour(&mut c, &mut d, 13);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_flags() {
        let mut c = SramCache::new(1024, 1);
        c.allocate(5, true);
        let mut w = dca_sim_core::ByteWriter::new();
        c.encode(&mut w);
        let mut buf = w.into_vec();
        let mut r = dca_sim_core::ByteReader::new(&buf[..buf.len() - 1]);
        assert!(SramCache::decode(&mut r).is_err(), "truncated");
        // Corrupt a flags byte (header is 8+2+8+32 bytes, then tag u64).
        buf[50 + 8] = 0xFF;
        let mut r = dca_sim_core::ByteReader::new(&buf);
        assert!(SramCache::decode(&mut r).is_err(), "bad flags");
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn restore_rejects_wrong_geometry() {
        let small = SramCache::new(1024, 1);
        let mut big = SramCache::new(4096, 2);
        big.restore(&small.snapshot());
    }
}
