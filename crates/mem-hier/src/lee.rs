//! Lee et al., "DRAM-aware last-level cache writeback" \[20\] (§VII, Fig 19).
//!
//! When the LLC (our L2) evicts a dirty block, the policy eagerly writes
//! back *other dirty blocks that map to the same DRAM row*, so the
//! writeback stream arrives at the memory controller with high row-buffer
//! locality and drains in long row-hit runs instead of scattered
//! conflicts. Lines stay resident (and clean) in the LLC.
//!
//! The DRAM-cache twist studied by the paper: even with this policy, the
//! writeback requests still carry tag *reads* (RTw) at the DRAM cache, so
//! read priority inversion persists and DCA keeps its edge (Fig 19).

use crate::sram::SramCache;

/// Find up to `limit` dirty blocks in `l2` that share a DRAM-cache row
/// with `evicted_block`, excluding the evicted block itself.
///
/// `row_of` maps a block address to its DRAM-cache row-frame index;
/// `blocks_per_row` bounds the candidate scan (blocks of one row are
/// contiguous in block-address space for both cache organisations, so a
/// bounded linear probe suffices — no reverse index required).
pub fn collect_same_row_dirty(
    l2: &SramCache,
    evicted_block: u64,
    row_of: impl Fn(u64) -> u64,
    blocks_per_row: u64,
    limit: usize,
) -> Vec<u64> {
    let row = row_of(evicted_block);
    // The row's blocks span a contiguous range of block addresses that
    // contains `evicted_block`; scan outward in both directions.
    let lo = evicted_block.saturating_sub(blocks_per_row);
    let hi = evicted_block + blocks_per_row;
    let mut found = Vec::new();
    for candidate in lo..=hi {
        if candidate == evicted_block {
            continue;
        }
        if row_of(candidate) != row {
            continue;
        }
        if l2.peek_dirty(candidate) {
            found.push(candidate);
            if found.len() >= limit {
                break;
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row = block / 60, mimicking the direct-mapped cache layout.
    fn row_of(block: u64) -> u64 {
        block / 60
    }

    #[test]
    fn finds_dirty_row_mates() {
        let mut l2 = SramCache::new(1024 * 1024, 16);
        // Blocks 120..180 share row 2. Dirty a few of them.
        for b in [121u64, 125, 150, 179] {
            l2.allocate(b, true);
        }
        l2.allocate(140, false); // clean row-mate: must not be collected
        l2.allocate(200, true); // dirty, different row: must not appear
        let found = collect_same_row_dirty(&l2, 122, row_of, 60, 8);
        let mut sorted = found.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![121, 125, 150, 179]);
    }

    #[test]
    fn respects_limit() {
        let mut l2 = SramCache::new(1024 * 1024, 16);
        for b in 60..120u64 {
            l2.allocate(b, true);
        }
        let found = collect_same_row_dirty(&l2, 90, row_of, 60, 4);
        assert_eq!(found.len(), 4);
        assert!(found.iter().all(|&b| row_of(b) == 1 && b != 90));
    }

    #[test]
    fn empty_when_no_dirty_mates() {
        let mut l2 = SramCache::new(1024 * 1024, 16);
        l2.allocate(61, false);
        let found = collect_same_row_dirty(&l2, 62, row_of, 60, 8);
        assert!(found.is_empty());
    }

    #[test]
    fn excludes_the_evicted_block() {
        let mut l2 = SramCache::new(1024 * 1024, 16);
        l2.allocate(90, true);
        let found = collect_same_row_dirty(&l2, 90, row_of, 60, 8);
        assert!(found.is_empty());
    }
}
