//! # dca-mem-hier — SRAM cache hierarchy and main-memory substrate
//!
//! Everything between the cores and the DRAM-cache controller, per the
//! paper's Table II system configuration:
//!
//! * [`sram`] — a generic set-associative SRAM cache model used for the
//!   per-core L1s (32 KB, 2-way, 2 cycles) and the shared L2 (8 MB,
//!   20 cycles). Functional tags + LRU + dirty bits; timing is a fixed
//!   hit latency applied by the system model.
//! * [`mshr`] — miss-status holding registers for the L2: merge duplicate
//!   block misses, bound outstanding misses, and provide backpressure.
//! * [`memory`] — off-chip main memory behind a per-run backend choice
//!   ([`MainMemConfig`]): the seed **flat** model (Table II's 50 ns
//!   access latency behind a 2 GHz × 64-bit bus, fixed latency plus
//!   bandwidth serialisation — preserved bit-for-bit) or the
//!   **cycle-level** DDR4-style device, which reuses the tier-generic
//!   `dca_dram` channel/bank/bus machinery behind an FR-FCFS-scheduled
//!   `dca_sched::AccessQueue`, so miss refills, dirty victims and Lee
//!   writebacks contend at a real device.
//! * [`lee`] — Lee et al.'s DRAM-aware last-level-cache writeback \[20\]
//!   (§VII, Fig 19): when a dirty block is written back, other dirty
//!   blocks of the same DRAM-cache row are eagerly written back too,
//!   trading extra writes for row-buffer locality.

pub mod lee;
pub mod memory;
pub mod mshr;
pub mod sram;

pub use lee::collect_same_row_dirty;
pub use memory::{CycleMemory, FlatMemory, MainMemConfig, MainMemStats, MainMemory, MemArrival};
pub use mshr::{Mshr, MshrOutcome};
pub use sram::{SramCache, SramStats};
