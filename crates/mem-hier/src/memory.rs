//! Off-chip main memory behind the DRAM cache, selectable per run via
//! [`MainMemConfig`]:
//!
//! * [`MainMemConfig::Flat`] — Table II's "Memory latency 50 ns" behind
//!   a 2 GHz × 64-bit off-chip bus: a fixed access latency plus
//!   bus-bandwidth serialisation (a 64-byte block on a 16 GB/s bus takes
//!   4 ns of bus time). This is the original seed model, preserved
//!   bit-for-bit — the analytic `read(now) -> done` contract and its
//!   arithmetic are untouched.
//! * [`MainMemConfig::Cycle`] — a real DDR-style device: the same
//!   tier-generic [`DramChannel`] bank/row/bus machinery the stacked
//!   DRAM cache uses, instantiated with main-memory timing/geometry
//!   (DDR4-2400 presets by default) behind a bounded FR-FCFS-scheduled
//!   access queue ([`dca_sched::AccessQueue`] + [`dca_sched::FrFcfs`]).
//!   Miss refills, dirty-victim writebacks and Lee-writeback traffic now
//!   contend for real banks and a real bus, so row conflicts, turnaround
//!   penalties and queueing delay shape the miss penalty exactly as the
//!   traffic mix demands — the behaviour a flat latency cannot express.
//!
//! The cycle-level backend is *event-driven*: the system enqueues
//! accesses ([`MainMemory::enqueue_read`] / [`MainMemory::enqueue_write`]),
//! pumps the scheduler ([`MainMemory::schedule`]) and asks when to pump
//! next ([`MainMemory::next_wakeup`] — the earliest instant a queued
//! access's bank frees). Read completions carry the caller's token back
//! so the system can route the arrival to its request. The flat backend
//! never generates events of its own, which is what keeps `FlatLatency`
//! runs bit-identical to the pre-refactor model (locked by
//! `tests/main_mem_equivalence.rs`).

use std::collections::VecDeque;

use dca_dram::{AccessKind, BurstLen, DramAccess, DramChannel, Organization, TimingParams};
use dca_sched::{AccessQueue, FrFcfs, QueueEntry, ReadClass};
use dca_sim_core::{Counter, Duration, FastHashMap, SimTime};

/// Which main-memory model backs the DRAM cache, plus its parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MainMemConfig {
    /// Fixed latency + bus serialisation (the seed model).
    Flat {
        /// Fixed access latency (Table II: 50 ns).
        latency: Duration,
        /// Bus occupancy per 64-byte block (Table II: 4 ns).
        bus_time: Duration,
    },
    /// Cycle-level DDR-style device: banks, rows, bus, FR-FCFS queue.
    Cycle {
        /// Device timing (e.g. [`TimingParams::ddr4_2400`]).
        timing: TimingParams,
        /// Device organisation (e.g. [`Organization::ddr4_main`]).
        org: Organization,
        /// Controller + on-chip interconnect latency added to every read
        /// completion (the part of the flat model's 50 ns that is not
        /// the DRAM array itself).
        extra_latency: Duration,
        /// Bounded per-channel access-queue capacity; overflow spills
        /// into an unbounded buffer so traffic is never dropped.
        queue_cap: u32,
    },
}

impl MainMemConfig {
    /// The seed model's Table II parameters: 50 ns + 4 ns/block.
    pub fn paper_flat() -> Self {
        MainMemConfig::Flat {
            latency: Duration::from_ns(50),
            bus_time: Duration::from_ns(4),
        }
    }

    /// Cycle-level DDR4-2400 main memory: one 16-bank channel with 8 KB
    /// rows and a 20 ns controller/interconnect overhead, so an unloaded
    /// row-conflict read lands near the flat model's 50 ns while loaded
    /// behaviour diverges with the traffic mix.
    pub fn ddr4() -> Self {
        MainMemConfig::Cycle {
            timing: TimingParams::ddr4_2400(),
            org: Organization::ddr4_main(),
            extra_latency: Duration::from_ns(20),
            queue_cap: 64,
        }
    }

    /// Cycle-level 3DXPoint-like slow main memory: the same DDR4-style
    /// channel geometry driven with [`TimingParams::xpoint`] — ~120 ns
    /// media reads and ~400 ns write recovery behind a DDR4-like link.
    /// With main memory this slow the DRAM cache becomes load-bearing,
    /// the regime where the controller designs diverge hardest.
    pub fn xpoint() -> Self {
        MainMemConfig::Cycle {
            timing: TimingParams::xpoint(),
            org: Organization::ddr4_main(),
            extra_latency: Duration::from_ns(20),
            queue_cap: 64,
        }
    }

    /// [`MainMemConfig::ddr4`] with the data bandwidth divided by `div`
    /// (burst time multiplied), the main-memory-bandwidth sensitivity
    /// knob.
    pub fn ddr4_bandwidth_div(div: u32) -> Self {
        match Self::ddr4() {
            MainMemConfig::Cycle {
                timing,
                org,
                extra_latency,
                queue_cap,
            } => MainMemConfig::Cycle {
                timing: timing.with_bandwidth_divisor(div),
                org,
                extra_latency,
                queue_cap,
            },
            MainMemConfig::Flat { .. } => unreachable!("ddr4() is cycle-level"),
        }
    }

    /// True for the cycle-level backend.
    pub fn is_cycle(&self) -> bool {
        matches!(self, MainMemConfig::Cycle { .. })
    }
}

/// Snapshot of a backend's statistics for reporting.
#[derive(Clone, Debug, Default)]
pub struct MainMemStats {
    /// Backend label: `"flat"` or `"cycle"`.
    pub backend: &'static str,
    /// Reads served (flat) or read accesses issued to the device (cycle).
    pub reads: u64,
    /// Writes absorbed / write accesses issued.
    pub writes: u64,
    /// Data-bus busy time, in picoseconds.
    pub busy_ps: u64,
    /// Row-buffer hits (cycle backend only).
    pub row_hits: u64,
    /// Row-buffer conflicts (cycle backend only).
    pub row_conflicts: u64,
    /// Bus direction switches (cycle backend only).
    pub turnarounds: u64,
    /// Highest access-queue occupancy observed, spill included (cycle).
    pub peak_queue: u64,
    /// Total picoseconds accesses spent queued before issue (cycle).
    pub queue_wait_ps: u64,
}

impl MainMemStats {
    /// Row-buffer hit rate over all issued accesses (0 for flat).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 || self.backend != "cycle" {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean queue wait per issued access, in nanoseconds (0 for flat).
    pub fn mean_queue_wait_ns(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.queue_wait_ps as f64 / total as f64 / 1000.0
        }
    }
}

/// The seed main-memory model: fixed latency + bus serialisation.
#[derive(Clone, Debug)]
pub struct FlatMemory {
    access_latency: Duration,
    bus_time_per_block: Duration,
    bus_free_at: SimTime,
    reads: Counter,
    writes: Counter,
    busy_ps: u64,
}

impl FlatMemory {
    /// Construct with explicit latency and per-block bus time.
    pub fn new(access_latency: Duration, bus_time_per_block: Duration) -> Self {
        FlatMemory {
            access_latency,
            bus_time_per_block,
            bus_free_at: SimTime::ZERO,
            reads: Counter::default(),
            writes: Counter::default(),
            busy_ps: 0,
        }
    }

    /// Accept a read at `now`; returns when the data is available.
    pub fn read(&mut self, now: SimTime) -> SimTime {
        self.reads.inc();
        self.schedule(now)
    }

    /// Accept a write at `now`; returns when the write has drained (used
    /// only for bandwidth accounting — callers fire-and-forget).
    pub fn write(&mut self, now: SimTime) -> SimTime {
        self.writes.inc();
        self.schedule(now)
    }

    fn schedule(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.bus_free_at);
        self.bus_free_at = start + self.bus_time_per_block;
        self.busy_ps += self.bus_time_per_block.ps();
        start + self.access_latency + self.bus_time_per_block
    }
}

/// A read completion the cycle-level backend hands back to the system:
/// the caller's token and the instant the block is on chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemArrival {
    /// Caller-supplied token (the owning request id).
    pub token: u64,
    /// When the data arrives (burst end + controller latency).
    pub at: SimTime,
}

/// Cycle-level main memory: one FR-FCFS-scheduled [`DramChannel`] per
/// configured channel, fed by a bounded [`AccessQueue`] with an
/// unbounded spill buffer.
#[derive(Debug)]
pub struct CycleMemory {
    timing: TimingParams,
    org: Organization,
    extra_latency: Duration,
    channels: Vec<DramChannel>,
    queues: Vec<AccessQueue>,
    spill: Vec<VecDeque<QueueEntry>>,
    /// Queue-entry id → caller token, for read completions.
    read_tokens: FastHashMap<u64, u64>,
    next_id: u64,
    reads: Counter,
    writes: Counter,
    peak_queue: u64,
    queue_wait_ps: u64,
    frfcfs: FrFcfs,
}

impl CycleMemory {
    fn new(timing: TimingParams, org: Organization, extra_latency: Duration, cap: u32) -> Self {
        CycleMemory {
            timing,
            org,
            extra_latency,
            channels: (0..org.channels)
                .map(|_| DramChannel::new(timing, &org))
                .collect(),
            queues: (0..org.channels)
                .map(|_| AccessQueue::new(cap.max(1) as usize))
                .collect(),
            spill: (0..org.channels).map(|_| VecDeque::new()).collect(),
            read_tokens: FastHashMap::default(),
            next_id: 0,
            reads: Counter::default(),
            writes: Counter::default(),
            peak_queue: 0,
            queue_wait_ps: 0,
            frfcfs: FrFcfs::new(),
        }
    }

    /// Map a 64-byte block address onto (channel, bank, row) in
    /// row:bank:channel:column order (RoBaChCo, the paper's order minus
    /// the rank level the preset does not use).
    fn locate(&self, block: u64) -> (usize, u32, u32) {
        let blocks_per_row = (self.org.row_bytes / 64).max(1) as u64;
        let frame = block / blocks_per_row;
        let ch = (frame % self.org.channels as u64) as usize;
        let above = frame / self.org.channels as u64;
        let bank = (above % self.org.banks_per_channel() as u64) as u32;
        let row =
            ((above / self.org.banks_per_channel() as u64) % self.org.rows_per_bank as u64) as u32;
        (ch, bank, row)
    }

    fn enqueue(&mut self, kind: AccessKind, block: u64, token: Option<u64>, now: SimTime) {
        let (ch, bank, row) = self.locate(block);
        let id = self.next_id;
        self.next_id += 1;
        if let Some(token) = token {
            self.read_tokens.insert(id, token);
        }
        let entry = QueueEntry {
            id,
            access: DramAccess {
                bank,
                row,
                kind,
                burst: BurstLen::Block64,
            },
            app: 0,
            class: ReadClass::Priority,
            enqueued_at: now,
        };
        if let Err(e) = self.queues[ch].push(entry) {
            self.spill[ch].push_back(e);
        }
        self.peak_queue = self.peak_queue.max(self.backlog() as u64);
    }

    fn drain_spill(&mut self, ch: usize) {
        while let Some(e) = self.spill[ch].front() {
            if self.queues[ch].is_full() {
                break;
            }
            let e = *e;
            self.spill[ch].pop_front();
            self.queues[ch].push(e).expect("queue had room");
        }
    }

    /// Issue every access whose bank is free at `now`, FR-FCFS order
    /// (row hits first, then oldest), appending read completions to
    /// `out`.
    fn schedule(&mut self, now: SimTime, out: &mut Vec<MemArrival>) {
        for ch in 0..self.channels.len() {
            self.drain_spill(ch);
            loop {
                let channel = &self.channels[ch];
                let picked = self.frfcfs.pick(
                    self.queues[ch]
                        .iter()
                        .filter(|(_, e)| channel.bank_free(e.access.bank, now)),
                    |e| channel.peek_outcome(e.access.bank, e.access.row),
                );
                let Some(pos) = picked else { break };
                let entry = self.queues[ch].remove(pos);
                let info = self.channels[ch].issue(entry.access, now);
                self.queue_wait_ps += now.since(entry.enqueued_at).ps();
                match entry.access.kind {
                    AccessKind::Read => {
                        self.reads.inc();
                        let token = self
                            .read_tokens
                            .remove(&entry.id)
                            .expect("read access carries a token");
                        out.push(MemArrival {
                            token,
                            at: info.burst_end + self.extra_latency,
                        });
                    }
                    AccessKind::Write => self.writes.inc(),
                }
                self.drain_spill(ch);
            }
        }
    }

    /// Earliest instant a queued access's bank frees — the next time a
    /// pump could make progress. `None` when nothing is queued.
    fn next_wakeup(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for (ch, queue) in self.queues.iter().enumerate() {
            for (_, e) in queue.iter() {
                let t = self.channels[ch].bank_busy_until(e.access.bank);
                earliest = Some(earliest.map_or(t, |b| b.min(t)));
            }
            // Spilled entries wait on queue room, which opens when any
            // queued entry issues — covered by the loop above (a spill
            // with an empty bounded queue cannot happen: push fills the
            // bounded queue first).
        }
        earliest
    }

    /// Queued accesses, spill included.
    fn backlog(&self) -> usize {
        self.queues.iter().map(AccessQueue::len).sum::<usize>()
            + self.spill.iter().map(VecDeque::len).sum::<usize>()
    }

    fn busy_ps(&self) -> u64 {
        // Burst time actually spent on each channel's data bus.
        self.channels
            .iter()
            .map(|c| {
                let s = c.stats();
                let bursts = s.reads.get() + s.writes.get();
                bursts * BurstLen::Block64.duration(&self.timing).ps()
            })
            .sum()
    }
}

/// Main memory: the backend selected by [`MainMemConfig`].
#[derive(Debug)]
pub enum MainMemory {
    /// Fixed latency + bus serialisation (seed model).
    Flat(FlatMemory),
    /// Cycle-level DDR-style device.
    Cycle(CycleMemory),
}

impl MainMemory {
    /// Build the backend `cfg` describes.
    pub fn build(cfg: &MainMemConfig) -> Self {
        match *cfg {
            MainMemConfig::Flat { latency, bus_time } => {
                MainMemory::Flat(FlatMemory::new(latency, bus_time))
            }
            MainMemConfig::Cycle {
                timing,
                org,
                extra_latency,
                queue_cap,
            } => MainMemory::Cycle(CycleMemory::new(timing, org, extra_latency, queue_cap)),
        }
    }

    /// Table II parameters: 50 ns latency, 2 GHz × 64-bit bus ⇒ 4 ns per
    /// 64-byte block (the flat seed model).
    pub fn paper() -> Self {
        Self::build(&MainMemConfig::paper_flat())
    }

    /// True for the cycle-level backend.
    pub fn is_cycle(&self) -> bool {
        matches!(self, MainMemory::Cycle(_))
    }

    /// Flat backend: accept a read at `now`, returning the completion.
    ///
    /// # Panics
    /// Panics on the cycle backend — cycle reads go through
    /// [`MainMemory::enqueue_read`].
    pub fn read(&mut self, now: SimTime) -> SimTime {
        match self {
            MainMemory::Flat(m) => m.read(now),
            MainMemory::Cycle(_) => panic!("analytic read() on the cycle-level backend"),
        }
    }

    /// Flat backend: accept a write at `now` (see [`FlatMemory::write`]).
    ///
    /// # Panics
    /// Panics on the cycle backend.
    pub fn write(&mut self, now: SimTime) -> SimTime {
        match self {
            MainMemory::Flat(m) => m.write(now),
            MainMemory::Cycle(_) => panic!("analytic write() on the cycle-level backend"),
        }
    }

    /// Cycle backend: queue a read for `block`; `token` rides back on
    /// the completion.
    ///
    /// # Panics
    /// Panics on the flat backend.
    pub fn enqueue_read(&mut self, token: u64, block: u64, now: SimTime) {
        match self {
            MainMemory::Cycle(m) => m.enqueue(AccessKind::Read, block, Some(token), now),
            MainMemory::Flat(_) => panic!("enqueue_read() on the flat backend"),
        }
    }

    /// Cycle backend: queue a write for `block` (fire-and-forget).
    ///
    /// # Panics
    /// Panics on the flat backend.
    pub fn enqueue_write(&mut self, block: u64, now: SimTime) {
        match self {
            MainMemory::Cycle(m) => m.enqueue(AccessKind::Write, block, None, now),
            MainMemory::Flat(_) => panic!("enqueue_write() on the flat backend"),
        }
    }

    /// Cycle backend: issue everything issuable at `now` (no-op on
    /// flat), appending read completions to `out`.
    pub fn schedule(&mut self, now: SimTime, out: &mut Vec<MemArrival>) {
        if let MainMemory::Cycle(m) = self {
            m.schedule(now, out);
        }
    }

    /// Cycle backend: when the scheduler could next make progress
    /// (`None` on flat or when idle).
    pub fn next_wakeup(&self) -> Option<SimTime> {
        match self {
            MainMemory::Cycle(m) => m.next_wakeup(),
            MainMemory::Flat(_) => None,
        }
    }

    /// Reads served.
    pub fn reads(&self) -> u64 {
        match self {
            MainMemory::Flat(m) => m.reads.get(),
            MainMemory::Cycle(m) => m.reads.get(),
        }
    }

    /// Writes absorbed.
    pub fn writes(&self) -> u64 {
        match self {
            MainMemory::Flat(m) => m.writes.get(),
            MainMemory::Cycle(m) => m.writes.get(),
        }
    }

    /// Total data-bus busy time, for bandwidth-utilisation reporting.
    pub fn busy_time_ps(&self) -> u64 {
        match self {
            MainMemory::Flat(m) => m.busy_ps,
            MainMemory::Cycle(m) => m.busy_ps(),
        }
    }

    /// Statistics snapshot for the run report.
    pub fn stats(&self) -> MainMemStats {
        match self {
            MainMemory::Flat(m) => MainMemStats {
                backend: "flat",
                reads: m.reads.get(),
                writes: m.writes.get(),
                busy_ps: m.busy_ps,
                ..MainMemStats::default()
            },
            MainMemory::Cycle(m) => {
                let mut row_hits = 0;
                let mut row_conflicts = 0;
                let mut turnarounds = 0;
                for c in &m.channels {
                    let s = c.stats();
                    row_hits += s.read_row_hits.get() + s.write_row_hits.get();
                    row_conflicts += s.read_row_conflicts.get() + s.write_row_conflicts.get();
                    turnarounds += c.bus().turnarounds();
                }
                MainMemStats {
                    backend: "cycle",
                    reads: m.reads.get(),
                    writes: m.writes.get(),
                    busy_ps: m.busy_ps(),
                    row_hits,
                    row_conflicts,
                    turnarounds,
                    peak_queue: m.peak_queue,
                    queue_wait_ps: m.queue_wait_ps,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn unloaded_latency_is_54ns() {
        let mut m = MainMemory::paper();
        let done = m.read(t(100));
        assert_eq!(done, t(154)); // 50ns + 4ns bus
    }

    #[test]
    fn bandwidth_serialises_bursts() {
        let mut m = MainMemory::paper();
        let d1 = m.read(t(0));
        let d2 = m.read(t(0));
        let d3 = m.read(t(0));
        assert_eq!(d1, t(54));
        assert_eq!(d2, t(58), "second blocked 4ns behind the first");
        assert_eq!(d3, t(62));
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut m = MainMemory::paper();
        m.read(t(0));
        let d = m.read(t(1000));
        assert_eq!(d, t(1054), "bus long idle: full speed again");
    }

    #[test]
    fn writes_share_the_bus() {
        let mut m = MainMemory::paper();
        m.write(t(0));
        let d = m.read(t(0));
        assert_eq!(d, t(58), "read queues behind write's bus slot");
        assert_eq!(m.reads(), 1);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.busy_time_ps(), 8_000);
    }

    fn cycle() -> MainMemory {
        MainMemory::build(&MainMemConfig::ddr4())
    }

    fn pump(m: &mut MainMemory, now: SimTime) -> Vec<MemArrival> {
        let mut out = Vec::new();
        m.schedule(now, &mut out);
        out
    }

    #[test]
    fn cycle_unloaded_read_pays_act_cas_burst_plus_link() {
        let mut m = cycle();
        m.enqueue_read(7, 0, t(0));
        let got = pump(&mut m, t(0));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, 7);
        // Closed bank: tRCD(14.16) + tCAS(14.16) + tBURST(3.33) + 20ns.
        assert_eq!(got[0].at.ps(), 14_160 + 14_160 + 3_330 + 20_000);
        assert_eq!(m.reads(), 1);
        assert!(m.next_wakeup().is_none(), "queue drained");
    }

    #[test]
    fn cycle_row_hits_beat_conflicts() {
        let mut m = cycle();
        // Same row twice, then a conflicting row on the same bank.
        m.enqueue_read(1, 0, t(0));
        let a = pump(&mut m, t(0))[0].at;
        let MainMemory::Cycle(ref c) = m else {
            unreachable!()
        };
        let free = c.channels[0].bank_busy_until(0);
        m.enqueue_read(2, 1, free); // same 8KB row (blocks 0/1)
        let b = pump(&mut m, free)[0].at;
        let MainMemory::Cycle(ref c) = m else {
            unreachable!()
        };
        let free2 = c.channels[0].bank_busy_until(0);
        // Same bank (frame multiple of 16 banks), next row: a conflict.
        m.enqueue_read(3, 16 * (8192 / 64), free2);
        let conflict = pump(&mut m, free2)[0].at;
        let hit_cost = b.since(free).ps();
        let conflict_cost = conflict.since(free2).ps();
        assert!(
            hit_cost < a.ps() && a.ps() < conflict_cost,
            "hit {hit_cost} < closed {} < conflict {conflict_cost}",
            a.ps()
        );
        let s = m.stats();
        assert_eq!(s.backend, "cycle");
        assert_eq!(s.row_hits, 1);
    }

    #[test]
    fn cycle_busy_bank_defers_until_wakeup() {
        let mut m = cycle();
        m.enqueue_read(1, 0, t(0));
        assert_eq!(pump(&mut m, t(0)).len(), 1);
        // Same bank while busy: nothing issuable, wakeup at bank free.
        m.enqueue_read(2, 2, t(1));
        assert!(pump(&mut m, t(1)).is_empty());
        let wake = m.next_wakeup().expect("queued work");
        assert!(wake > t(1));
        let got = pump(&mut m, wake);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, 2);
    }

    #[test]
    fn cycle_writes_are_fire_and_forget_but_occupy_the_device() {
        let mut m = cycle();
        m.enqueue_write(0, t(0));
        assert!(pump(&mut m, t(0)).is_empty(), "writes complete silently");
        assert_eq!(m.writes(), 1);
        assert!(m.busy_time_ps() > 0);
        // A read behind the write on the same bank waits for it.
        m.enqueue_read(9, 2, t(1));
        assert!(pump(&mut m, t(1)).is_empty());
        assert!(m.next_wakeup().is_some());
    }

    #[test]
    fn cycle_spill_absorbs_overflow_without_loss() {
        let mut m = MainMemory::build(&MainMemConfig::Cycle {
            timing: TimingParams::ddr4_2400(),
            org: Organization::ddr4_main(),
            extra_latency: Duration::from_ns(20),
            queue_cap: 4,
        });
        // 12 reads to one bank: 4 queued, 8 spilled; all must complete.
        for i in 0..12u64 {
            m.enqueue_read(i, i * 2, t(0));
        }
        let mut done = Vec::new();
        let mut now = t(0);
        for _ in 0..200 {
            let mut out = Vec::new();
            m.schedule(now, &mut out);
            done.extend(out);
            match m.next_wakeup() {
                Some(w) => now = w,
                None => break,
            }
        }
        assert_eq!(done.len(), 12, "no access may be dropped");
        let mut tokens: Vec<u64> = done.iter().map(|a| a.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..12).collect::<Vec<u64>>());
        assert_eq!(m.stats().peak_queue, 12);
    }

    #[test]
    fn cycle_mapping_spreads_banks() {
        let MainMemory::Cycle(c) = cycle() else {
            unreachable!()
        };
        let blocks_per_row = 8192 / 64;
        let (_, b0, r0) = c.locate(0);
        let (_, b1, r1) = c.locate(blocks_per_row); // next row frame
        assert_eq!((b0, r0), (0, 0));
        assert_eq!((b1, r1), (1, 0), "adjacent frames hit adjacent banks");
        let (_, b16, r16) = c.locate(blocks_per_row * 16);
        assert_eq!((b16, r16), (0, 1), "wraps to the next row");
    }

    #[test]
    fn xpoint_reads_are_slow_and_writes_hold_the_bank() {
        let mut m = MainMemory::build(&MainMemConfig::xpoint());
        m.enqueue_read(1, 0, t(0));
        let read = pump(&mut m, t(0));
        assert_eq!(read.len(), 1);
        // Closed bank: tRCD(120) + tCAS(14.16) + tBURST(3.33) + 20ns.
        assert_eq!(read[0].at.ps(), 120_000 + 14_160 + 3_330 + 20_000);
        // A write to the same bank, then a conflicting read behind it:
        // the read must wait out the ~400ns write recovery.
        let MainMemory::Cycle(ref c) = m else {
            unreachable!()
        };
        let free = c.channels[0].bank_busy_until(0);
        m.enqueue_write(2, free);
        assert!(pump(&mut m, free).is_empty());
        let blocks_per_row = 8192 / 64;
        m.enqueue_read(9, 16 * blocks_per_row, free);
        assert!(pump(&mut m, free).is_empty(), "bank held by the write");
        // Drain until the read completes: its arrival must sit past the
        // ~400 ns media program time the write holds the bank for.
        let mut done = Vec::new();
        while done.iter().all(|a: &MemArrival| a.token != 9) {
            let now = m.next_wakeup().expect("pending read must wake the device");
            done.extend(pump(&mut m, now));
        }
        let read_done = done.iter().find(|a| a.token == 9).unwrap().at;
        assert!(
            read_done.since(free).ps() > 400_000,
            "write recovery dominates the stall: {} ps",
            read_done.since(free).ps()
        );
    }

    #[test]
    fn bandwidth_divisor_config_slows_bursts() {
        let MainMemConfig::Cycle { timing, .. } = MainMemConfig::ddr4_bandwidth_div(4) else {
            unreachable!()
        };
        assert_eq!(timing.t_burst.ps(), 4 * 3_330);
    }
}
