//! Off-chip main memory: Table II's "Memory latency 50 ns" behind a
//! 2 GHz × 64-bit off-chip bus.
//!
//! The paper's focus is the DRAM-*cache* controller; main memory is the
//! backing store whose latency sets the miss penalty. We model it as a
//! fixed 50 ns access latency plus bus-bandwidth serialisation: a 64-byte
//! block on a 2 GHz × 64-bit bus takes 64 B / 16 GB/s = 4 ns of bus time,
//! so heavily missing phases queue behind the pin bandwidth exactly as
//! they would on the real part.

use dca_sim_core::{Counter, Duration, SimTime};

/// Main-memory model: fixed latency + bus serialisation.
#[derive(Clone, Debug)]
pub struct MainMemory {
    access_latency: Duration,
    bus_time_per_block: Duration,
    bus_free_at: SimTime,
    reads: Counter,
    writes: Counter,
    busy_ps: u64,
}

impl MainMemory {
    /// Construct with explicit latency and per-block bus time.
    pub fn new(access_latency: Duration, bus_time_per_block: Duration) -> Self {
        MainMemory {
            access_latency,
            bus_time_per_block,
            bus_free_at: SimTime::ZERO,
            reads: Counter::default(),
            writes: Counter::default(),
            busy_ps: 0,
        }
    }

    /// Table II parameters: 50 ns latency, 2 GHz × 64-bit bus ⇒ 4 ns per
    /// 64-byte block.
    pub fn paper() -> Self {
        Self::new(Duration::from_ns(50), Duration::from_ns(4))
    }

    /// Accept a read at `now`; returns when the data is available.
    pub fn read(&mut self, now: SimTime) -> SimTime {
        self.reads.inc();
        self.schedule(now)
    }

    /// Accept a write at `now`; returns when the write has drained (used
    /// only for bandwidth accounting — callers fire-and-forget).
    pub fn write(&mut self, now: SimTime) -> SimTime {
        self.writes.inc();
        self.schedule(now)
    }

    fn schedule(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.bus_free_at);
        self.bus_free_at = start + self.bus_time_per_block;
        self.busy_ps += self.bus_time_per_block.ps();
        start + self.access_latency + self.bus_time_per_block
    }

    /// Reads served.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Writes absorbed.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Total bus-busy time, for bandwidth-utilisation reporting.
    pub fn busy_time_ps(&self) -> u64 {
        self.busy_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + Duration::from_ns(ns)
    }

    #[test]
    fn unloaded_latency_is_54ns() {
        let mut m = MainMemory::paper();
        let done = m.read(t(100));
        assert_eq!(done, t(154)); // 50ns + 4ns bus
    }

    #[test]
    fn bandwidth_serialises_bursts() {
        let mut m = MainMemory::paper();
        let d1 = m.read(t(0));
        let d2 = m.read(t(0));
        let d3 = m.read(t(0));
        assert_eq!(d1, t(54));
        assert_eq!(d2, t(58), "second blocked 4ns behind the first");
        assert_eq!(d3, t(62));
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut m = MainMemory::paper();
        m.read(t(0));
        let d = m.read(t(1000));
        assert_eq!(d, t(1054), "bus long idle: full speed again");
    }

    #[test]
    fn writes_share_the_bus() {
        let mut m = MainMemory::paper();
        m.write(t(0));
        let d = m.read(t(0));
        assert_eq!(d, t(58), "read queues behind write's bus slot");
        assert_eq!(m.reads(), 1);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.busy_time_ps(), 8_000);
    }
}
