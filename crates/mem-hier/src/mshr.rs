//! Miss-status holding registers (MSHRs) for the shared L2.
//!
//! MSHRs bound the number of outstanding L2 misses, merge duplicate
//! misses to the same block, and remember who is waiting so responses fan
//! back out. When all registers are in use the L2 stalls the requesting
//! core — the backpressure path from a congested DRAM-cache controller
//! all the way to the ROB.

use dca_sim_core::FastHashMap;

/// Result of trying to allocate an MSHR for a missing block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to this block: a downstream request must be issued.
    New,
    /// An MSHR for the block already exists: the waiter was merged and no
    /// new downstream request is needed.
    Merged,
    /// All MSHRs busy: the requester must retry (stall).
    Full,
}

/// The MSHR file: block → waiting tokens.
#[derive(Clone, Debug)]
pub struct Mshr<T> {
    /// Block → waiters. Fast-hashed: this table is probed on every L2
    /// miss, squarely on the request hot path.
    entries: FastHashMap<u64, Vec<T>>,
    capacity: usize,
    peak: usize,
}

impl<T> Mshr<T> {
    /// An MSHR file with `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Mshr {
            entries: FastHashMap::with_capacity_and_hasher(capacity, Default::default()),
            capacity,
            peak: 0,
        }
    }

    /// Outstanding distinct block misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Whether a miss on `block` is already outstanding.
    pub fn contains(&self, block: u64) -> bool {
        self.entries.contains_key(&block)
    }

    /// Try to register `waiter` for a miss on `block`.
    pub fn allocate(&mut self, block: u64, waiter: T) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&block) {
            waiters.push(waiter);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(block, vec![waiter]);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::New
    }

    /// The miss on `block` resolved: release the register and return all
    /// merged waiters (in registration order).
    pub fn complete(&mut self, block: u64) -> Vec<T> {
        self.entries.remove(&block).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_then_merge_then_complete() {
        let mut m: Mshr<u32> = Mshr::new(4);
        assert_eq!(m.allocate(10, 1), MshrOutcome::New);
        assert_eq!(m.allocate(10, 2), MshrOutcome::Merged);
        assert_eq!(m.allocate(11, 3), MshrOutcome::New);
        assert!(m.contains(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.complete(10), vec![1, 2]);
        assert!(!m.contains(10));
        assert_eq!(m.complete(10), Vec::<u32>::new());
    }

    #[test]
    fn capacity_enforced_per_distinct_block() {
        let mut m: Mshr<u32> = Mshr::new(2);
        assert_eq!(m.allocate(1, 0), MshrOutcome::New);
        assert_eq!(m.allocate(2, 0), MshrOutcome::New);
        assert_eq!(m.allocate(3, 0), MshrOutcome::Full);
        // Merging into existing entries still works at capacity.
        assert_eq!(m.allocate(1, 1), MshrOutcome::Merged);
        m.complete(1);
        assert_eq!(m.allocate(3, 0), MshrOutcome::New);
        assert_eq!(m.peak(), 2);
    }
}
