//! Property-based tests: SRAM cache vs a reference model, MSHR
//! accounting, and main-memory bandwidth conservation.

use dca_mem_hier::{MainMemory, Mshr, MshrOutcome, SramCache};
use dca_sim_core::{Duration, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The SRAM cache never reports a hit for a block the reference model
    /// says is absent, and dirty eviction reporting matches the stores
    /// applied.
    #[test]
    fn sram_cache_matches_reference(
        ops in prop::collection::vec((0u64..256, any::<bool>()), 1..400)
    ) {
        let mut cache = SramCache::new(64 * 64, 4); // 16 sets x 4 ways
        let mut present: HashMap<u64, bool> = HashMap::new(); // block -> dirty
        for (block, is_write) in ops {
            let hit = cache.probe(block, is_write);
            if hit {
                prop_assert!(present.contains_key(&block), "phantom hit {block}");
                if is_write {
                    present.insert(block, true);
                }
            } else {
                if let Some((victim, vdirty)) = cache.allocate(block, is_write) {
                    let expected = present.remove(&victim);
                    prop_assert_eq!(
                        expected, Some(vdirty),
                        "victim {} dirtiness mismatch", victim
                    );
                }
                present.insert(block, is_write);
            }
        }
        // Everything the model says is cached must actually hit (peek).
        for &block in present.keys() {
            prop_assert!(cache.peek(block), "lost block {block}");
        }
    }

    /// MSHR: merged waiters all come back exactly once, in order.
    #[test]
    fn mshr_returns_all_waiters(
        allocs in prop::collection::vec((0u64..16, 0u32..1000), 1..200)
    ) {
        let mut mshr: Mshr<u32> = Mshr::new(64);
        let mut expected: HashMap<u64, Vec<u32>> = HashMap::new();
        for (block, waiter) in allocs {
            match mshr.allocate(block, waiter) {
                MshrOutcome::New | MshrOutcome::Merged => {
                    expected.entry(block).or_default().push(waiter);
                }
                MshrOutcome::Full => {}
            }
        }
        for (block, want) in expected {
            prop_assert_eq!(mshr.complete(block), want);
        }
        prop_assert!(mshr.is_empty());
    }

    /// Main memory: completions are monotone per issue order and respect
    /// the fixed latency floor; total bus busy time equals blocks x 4ns.
    #[test]
    fn memory_bandwidth_conserved(gaps in prop::collection::vec(0u64..100, 1..200)) {
        let mut mem = MainMemory::paper();
        let mut now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        let mut count = 0u64;
        for gap in gaps {
            now += Duration::from_ns(gap);
            let done = mem.read(now);
            count += 1;
            prop_assert!(done >= now + Duration::from_ns(54), "below latency floor");
            prop_assert!(done >= last_done, "completion reordering");
            last_done = done;
        }
        prop_assert_eq!(mem.busy_time_ps(), count * 4_000);
        prop_assert_eq!(mem.reads(), count);
    }

    /// clean() then eviction never reports a dirty writeback.
    #[test]
    fn cleaned_blocks_do_not_write_back(blocks in prop::collection::vec(0u64..64, 1..100)) {
        let mut cache = SramCache::new(16 * 64, 1); // 16 sets, 1 way: churn
        for &b in &blocks {
            if !cache.probe(b, true) {
                cache.allocate(b, true);
            }
            cache.clean(b);
        }
        // Force eviction of everything via conflicting blocks.
        let mut dirty_evictions = 0;
        for &b in &blocks {
            if let Some((_, dirty)) = cache.allocate(b + 4096, false) {
                if dirty {
                    dirty_evictions += 1;
                }
            }
        }
        prop_assert_eq!(dirty_evictions, 0, "cleaned blocks must evict clean");
    }
}
