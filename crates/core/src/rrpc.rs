//! Bank re-reference prediction counters (RRPC, §IV-C).
//!
//! One 3-bit counter per bank across the whole device (64 banks ⇒ 24
//! bytes of state, as the paper highlights). The counters track how
//! recently each bank was touched by a *priority read*: on every PR
//! issue, all counters decay by one (floored at 0) and the accessed
//! bank's counter is set to 7. The Opportunistic Flushing Scheme then
//! treats a bank with RRPC below the flushing factor as "cold" — safe to
//! disturb with a low-priority read even if that read row-conflicts.

/// The per-bank recency counters.
#[derive(Clone, Debug)]
pub struct Rrpc {
    counters: Vec<u8>,
}

/// Counter ceiling (3 bits).
pub const RRPC_MAX: u8 = 7;

impl Rrpc {
    /// Counters for `banks` banks, all initialised to 0 (paper: "initially
    /// the counter is set to 0").
    pub fn new(banks: u32) -> Self {
        Rrpc {
            counters: vec![0; banks as usize],
        }
    }

    /// Number of banks tracked.
    pub fn banks(&self) -> usize {
        self.counters.len()
    }

    /// Current counter for `bank`.
    pub fn get(&self, bank: u32) -> u8 {
        self.counters[bank as usize]
    }

    /// A priority read was issued to `bank`: decay everyone, promote the
    /// touched bank to the maximum.
    pub fn on_priority_read(&mut self, bank: u32) {
        for c in self.counters.iter_mut() {
            *c = c.saturating_sub(1);
        }
        self.counters[bank as usize] = RRPC_MAX;
    }

    /// Whether `bank` is colder than the flushing factor `ff` — the OFS
    /// admission test for a row-conflicting LR.
    pub fn is_cold(&self, bank: u32, ff: u8) -> bool {
        self.get(bank) < ff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_cold() {
        let r = Rrpc::new(64);
        assert_eq!(r.banks(), 64);
        for b in 0..64 {
            assert_eq!(r.get(b), 0);
            assert!(r.is_cold(b, 4));
        }
    }

    #[test]
    fn pr_heats_bank_and_decays_others() {
        let mut r = Rrpc::new(4);
        r.on_priority_read(2);
        assert_eq!(r.get(2), RRPC_MAX);
        r.on_priority_read(1);
        assert_eq!(r.get(1), RRPC_MAX);
        assert_eq!(r.get(2), RRPC_MAX - 1);
        assert_eq!(r.get(0), 0, "decay floors at zero");
    }

    #[test]
    fn bank_cools_after_seven_decays() {
        let mut r = Rrpc::new(2);
        r.on_priority_read(0);
        for _ in 0..4 {
            r.on_priority_read(1);
        }
        // Bank 0 decayed 4 times: 7-4 = 3 < FF-4 → cold again.
        assert_eq!(r.get(0), 3);
        assert!(r.is_cold(0, 4));
        assert!(!r.is_cold(1, 4), "freshly PR'd bank is hot");
    }

    #[test]
    fn ff_boundary_is_strict() {
        let mut r = Rrpc::new(1);
        r.on_priority_read(0);
        for _ in 0..3 {
            r.on_priority_read(0);
        }
        assert_eq!(r.get(0), RRPC_MAX);
        // ff = 8 would admit anything; ff = 0 admits nothing.
        assert!(r.is_cold(0, 8));
        assert!(!r.is_cold(0, 0));
    }
}
